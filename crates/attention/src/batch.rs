//! Batched KV-cache decode with continuous batching: the serving-path
//! engine.
//!
//! Decode-dominated traffic is the mode a deployed attention accelerator
//! lives in: every step is one query per sequence against that sequence's
//! whole KV history, and the PR-2 measurements showed the sweep is
//! **KV-bandwidth-bound** at serving batch sizes — both the batched and
//! per-sequence paths stream the same bytes per step, so the SIMD dot/axpy
//! kernels idle under DRAM. This module attacks the bytes and the
//! scheduling together:
//!
//! * [`KvCache`] — a paged, block-allocated cache: fixed-size blocks
//!   carved from one shared arena, appended per sequence (the
//!   vLLM/paged-attention layout), with two physical layouts
//!   ([`KvLayout`]). The default **head-major** layout stores each head's
//!   rows as a contiguous `block_rows × head_dim` panel inside the block,
//!   so a (sequence, head) decode pass reads one pure contiguous K stream
//!   and one V stream — no per-row head-strided gathers. Retired
//!   sequences' blocks return to a **free list** and are recycled by later
//!   admissions, so arena growth is bounded by *live* tokens, not total
//!   traffic history.
//! * [`DecodeBatch`] — a multi-sequence, multi-head decode engine with
//!   **continuous batching**: [`admit`](DecodeBatch::admit) /
//!   [`admit_all`](DecodeBatch::admit_all) check and cache new prompts
//!   mid-flight (the batched form of `flash_abft::flash2_with_checksum` —
//!   bit-identical per head, property-tested in `flash-abft`), and
//!   [`retire`](DecodeBatch::retire) frees a finished sequence's blocks
//!   without disturbing its neighbours' checksum state. One
//!   [`step_all`](DecodeBatch::step_all) call appends every live
//!   sequence's new K/V, then schedules all `sequences × heads` fused
//!   Alg. 3 passes — online softmax, output lanes **and** the per-head
//!   checksum lane in one sweep over the cache — across the shared rayon
//!   pool in a **single fork**.
//!
//! Per-(sequence, head) arithmetic is identical to
//! [`DecodeSession::step_with_state`](crate::decode::DecodeSession::step_with_state),
//! to `flash_abft::CheckedDecodeSession::step`, and to a one-shot causal
//! [`flash2`](crate::flash2) pass over the same history; cross-head
//! combination runs in a fixed order on the calling thread — so `step_all`
//! is bit-identical to serial per-sequence decode at every thread count,
//! cache layout, block size, and admit/retire schedule (property-tested).

use crate::multihead::MultiHeadConfig;
use fa_numerics::{KahanSum, OnlineSoftmax};
use fa_tensor::{ops, Matrix, Scalar};
use rayon::prelude::*;

/// Physical arrangement of a cache block's `block_rows × width` elements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvLayout {
    /// Token-major (`[token][head][dim]`): position `r` is one contiguous
    /// `width`-wide row. Reading one head's stream walks the arena at
    /// stride `width` — the PR-2 layout, kept as the layout-equivalence
    /// reference and for full-row consumers.
    TokenMajor,
    /// Head-major (`[head][token][dim]`): each head owns a contiguous
    /// `block_rows × head_dim` panel inside the block, so one (sequence,
    /// head) decode pass reads one pure contiguous K stream and one V
    /// stream — the layout the DRAM-bound decode sweep wants.
    HeadMajor,
}

/// One block's view of a single head's cached rows, yielded by
/// [`KvCache::head_stream`]: row `r` of the block lives at
/// `k[r·stride .. r·stride + head_dim]` (same addressing for `v`).
pub struct HeadBlock<'a, T> {
    /// Position of the block's first row within the sequence.
    pub first: usize,
    /// Valid (appended) rows in this block.
    pub rows: usize,
    /// Key view for this head.
    pub k: &'a [T],
    /// Value view for this head.
    pub v: &'a [T],
    /// Distance between consecutive rows in the views: `head_dim` for
    /// head-major blocks (one contiguous span), `width` for token-major.
    pub stride: usize,
}

/// A paged key/value cache: rows of `num_heads · head_dim` elements stored
/// in fixed-size blocks carved out of one shared arena, with an
/// append-only block list per live sequence and a free list recycling the
/// blocks of retired sequences.
///
/// Blocks from different sequences interleave in the arena (whichever
/// sequence appends next claims the next block), so memory grows with
/// *live* tokens, not `sequences × longest` — and, with retirement, not
/// with total traffic history either.
///
/// # Example
///
/// ```
/// use fa_attention::batch::KvCache;
///
/// let mut cache = KvCache::<f64>::new(2, 16);
/// let s = cache.add_sequence();
/// cache.append(s, &[1.0, 2.0], &[3.0, 4.0]);
/// assert_eq!(cache.seq_len(s), 1);
/// assert_eq!(cache.key_row(s, 0), &[1.0, 2.0]);
/// assert_eq!(cache.value_row(s, 0), &[3.0, 4.0]);
/// ```
#[derive(Clone, Debug)]
pub struct KvCache<T> {
    heads: usize,
    head_dim: usize,
    width: usize,
    block_rows: usize,
    layout: KvLayout,
    k_arena: Vec<T>,
    v_arena: Vec<T>,
    seqs: Vec<SeqBlocks>,
    /// Blocks owned by no live sequence, ready for reuse (LIFO).
    free_blocks: Vec<usize>,
    /// Sequence slots whose owner retired, ready for reuse.
    free_seqs: Vec<usize>,
    /// Total block claims served from the free list (observability).
    recycled_blocks: usize,
}

#[derive(Clone, Debug)]
struct SeqBlocks {
    /// Arena block indices owned by this sequence, in position order.
    blocks: Vec<usize>,
    /// Number of appended rows.
    len: usize,
    /// Whether the slot's owner retired (blocks returned to the free
    /// list; the slot awaits reuse by a later `add_sequence`).
    retired: bool,
}

impl<T: Scalar> KvCache<T> {
    /// Creates an empty token-major cache for full rows of `width`
    /// elements (a single "head" of dimension `width`), allocated in
    /// blocks of `block_rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(width: usize, block_rows: usize) -> Self {
        Self::with_layout(1, width, block_rows, KvLayout::TokenMajor)
    }

    /// Creates an empty head-major cache: `num_heads` heads of `head_dim`
    /// elements per row, each head's rows contiguous within a block.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new_head_major(num_heads: usize, head_dim: usize, block_rows: usize) -> Self {
        Self::with_layout(num_heads, head_dim, block_rows, KvLayout::HeadMajor)
    }

    /// Creates an empty cache with an explicit layout.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn with_layout(
        num_heads: usize,
        head_dim: usize,
        block_rows: usize,
        layout: KvLayout,
    ) -> Self {
        assert!(num_heads > 0, "num_heads must be positive");
        assert!(head_dim > 0, "head_dim must be positive");
        assert!(block_rows > 0, "block_rows must be positive");
        KvCache {
            heads: num_heads,
            head_dim,
            width: num_heads * head_dim,
            block_rows,
            layout,
            k_arena: Vec::new(),
            v_arena: Vec::new(),
            seqs: Vec::new(),
            free_blocks: Vec::new(),
            free_seqs: Vec::new(),
            recycled_blocks: 0,
        }
    }

    /// Row width (elements per cached key/value row, all heads).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Per-head row width.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Number of heads the layout splits each row into.
    pub fn num_heads(&self) -> usize {
        self.heads
    }

    /// The physical block layout.
    pub fn layout(&self) -> KvLayout {
        self.layout
    }

    /// Rows per allocation block.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Number of sequence slots ever registered (live + retired).
    pub fn num_sequences(&self) -> usize {
        self.seqs.len()
    }

    /// Number of live (non-retired) sequences.
    pub fn live_sequences(&self) -> usize {
        self.seqs.len() - self.free_seqs.len()
    }

    /// Whether sequence slot `seq` is retired (awaiting reuse).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn is_retired(&self, seq: usize) -> bool {
        self.seqs[seq].retired
    }

    /// Total blocks carved from the arena so far.
    pub fn allocated_blocks(&self) -> usize {
        self.k_arena.len() / (self.block_rows * self.width)
    }

    /// Blocks currently on the free list.
    pub fn free_block_list(&self) -> &[usize] {
        &self.free_blocks
    }

    /// The block indices owned by sequence `seq`, in position order.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn seq_blocks(&self, seq: usize) -> &[usize] {
        &self.seqs[seq].blocks
    }

    /// Total block claims served from the free list instead of growing
    /// the arena — the block-recycling counter serving loops watch.
    pub fn recycled_blocks(&self) -> usize {
        self.recycled_blocks
    }

    /// Registers a new (empty) sequence and returns its id, reusing a
    /// retired slot when one is available.
    pub fn add_sequence(&mut self) -> usize {
        if let Some(seq) = self.free_seqs.pop() {
            self.seqs[seq] = SeqBlocks {
                blocks: Vec::new(),
                len: 0,
                retired: false,
            };
            return seq;
        }
        self.seqs.push(SeqBlocks {
            blocks: Vec::new(),
            len: 0,
            retired: false,
        });
        self.seqs.len() - 1
    }

    /// Retires sequence `seq`: its blocks return to the free list for
    /// reuse by later admissions, and the slot id becomes reusable by
    /// [`add_sequence`](Self::add_sequence). Accessing a retired
    /// sequence's rows panics until the slot is re-registered.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or already retired.
    pub fn retire_sequence(&mut self, seq: usize) {
        let state = &mut self.seqs[seq];
        assert!(!state.retired, "sequence {seq} already retired");
        let blocks = core::mem::take(&mut state.blocks);
        state.len = 0;
        state.retired = true;
        self.free_blocks.extend(blocks);
        self.free_seqs.push(seq);
    }

    /// Reserves arena capacity for at least `additional_rows` more cached
    /// rows (across all sequences), so admission-controlled serving loops
    /// can keep block claims reallocation-free on the decode path.
    ///
    /// Blocks are claimed per sequence, so each live sequence may occupy
    /// one partially-filled block; the reservation accounts for that
    /// worst case (one extra block per live sequence) on top of the raw
    /// row count, minus blocks already waiting on the free list.
    pub fn reserve_rows(&mut self, additional_rows: usize) {
        let blocks = (additional_rows.div_ceil(self.block_rows) + self.live_sequences())
            .saturating_sub(self.free_blocks.len());
        let elems = blocks * self.block_rows * self.width;
        self.k_arena.reserve(elems);
        self.v_arena.reserve(elems);
    }

    fn live(&self, seq: usize) -> &SeqBlocks {
        let state = &self.seqs[seq];
        assert!(!state.retired, "sequence {seq} is retired");
        state
    }

    /// Number of cached positions for sequence `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired.
    pub fn seq_len(&self, seq: usize) -> usize {
        self.live(seq).len
    }

    /// Appends one key/value row to sequence `seq`, claiming a block from
    /// the free list (or a fresh arena block) when the current one is
    /// full.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired, or a slice length
    /// differs from the row width.
    pub fn append(&mut self, seq: usize, k: &[T], v: &[T]) {
        assert_eq!(k.len(), self.width, "key row width mismatch");
        assert_eq!(v.len(), self.width, "value row width mismatch");
        let block_elems = self.block_rows * self.width;
        let state = self.live(seq);
        if state.len == state.blocks.len() * self.block_rows {
            // Current block full (or first append): claim the next block,
            // recycling a retired sequence's block when one is free.
            let block = if let Some(freed) = self.free_blocks.pop() {
                self.recycled_blocks += 1;
                freed
            } else {
                let fresh = self.k_arena.len() / block_elems;
                self.k_arena
                    .resize(self.k_arena.len() + block_elems, T::zero());
                self.v_arena
                    .resize(self.v_arena.len() + block_elems, T::zero());
                fresh
            };
            self.seqs[seq].blocks.push(block);
        }
        let state = &self.seqs[seq];
        let block = state.blocks[state.len / self.block_rows];
        let r = state.len % self.block_rows;
        let base = block * block_elems;
        match self.layout {
            KvLayout::TokenMajor => {
                let slot = base + r * self.width;
                self.k_arena[slot..slot + self.width].copy_from_slice(k);
                self.v_arena[slot..slot + self.width].copy_from_slice(v);
            }
            KvLayout::HeadMajor => {
                // Scatter once on append (cold path: one row per step) so
                // every later read of the head panels streams contiguously
                // (hot path: the whole history per step).
                let d = self.head_dim;
                for h in 0..self.heads {
                    let slot = base + h * self.block_rows * d + r * d;
                    self.k_arena[slot..slot + d].copy_from_slice(&k[h * d..(h + 1) * d]);
                    self.v_arena[slot..slot + d].copy_from_slice(&v[h * d..(h + 1) * d]);
                }
            }
        }
        self.seqs[seq].len += 1;
    }

    /// Element offset of `(seq, position, head)`'s first lane in the
    /// arenas.
    fn head_slot(&self, seq: usize, i: usize, head: usize) -> usize {
        let state = self.live(seq);
        assert!(i < state.len, "position {i} out of {} cached", state.len);
        let block = state.blocks[i / self.block_rows];
        let r = i % self.block_rows;
        let base = block * self.block_rows * self.width;
        match self.layout {
            KvLayout::TokenMajor => base + r * self.width + head * self.head_dim,
            KvLayout::HeadMajor => base + (head * self.block_rows + r) * self.head_dim,
        }
    }

    /// The cached key row at position `i` of sequence `seq`, gathered
    /// across heads (a copy — with the head-major layout a full row is
    /// not contiguous).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired, or `i` is out of range.
    pub fn key_row(&self, seq: usize, i: usize) -> Vec<T> {
        self.gather_row(&self.k_arena, seq, i)
    }

    /// The cached value row at position `i` of sequence `seq` (a copy,
    /// like [`key_row`](Self::key_row)).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired, or `i` is out of range.
    pub fn value_row(&self, seq: usize, i: usize) -> Vec<T> {
        self.gather_row(&self.v_arena, seq, i)
    }

    fn gather_row(&self, arena: &[T], seq: usize, i: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(self.width);
        for h in 0..self.heads {
            let slot = self.head_slot(seq, i, h);
            out.extend_from_slice(&arena[slot..slot + self.head_dim]);
        }
        out
    }

    /// Iterates sequence `seq` block by block as
    /// `(first_position, key_rows, value_rows)` — contiguous row-major
    /// full-width spans of up to [`Self::block_rows`] rows, in position
    /// order. Only meaningful for the token-major layout, where full rows
    /// are contiguous; per-head streaming (either layout) goes through
    /// [`head_stream`](Self::head_stream).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired, or the layout is
    /// head-major.
    pub fn blocks(&self, seq: usize) -> impl Iterator<Item = (usize, &[T], &[T])> + '_ {
        assert_eq!(
            self.layout,
            KvLayout::TokenMajor,
            "blocks() requires the token-major layout"
        );
        let state = self.live(seq);
        let block_elems = self.block_rows * self.width;
        state.blocks.iter().enumerate().map(move |(bi, &block)| {
            let first = bi * self.block_rows;
            let rows = (state.len - first).min(self.block_rows);
            let base = block * block_elems;
            (
                first,
                &self.k_arena[base..base + rows * self.width],
                &self.v_arena[base..base + rows * self.width],
            )
        })
    }

    /// Streams one head of sequence `seq` block by block — the decode
    /// kernels' access path. With the head-major layout every yielded
    /// view is one pure contiguous span (`stride == head_dim`); with
    /// token-major the views stride at `width`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired, or `head` is out of
    /// range.
    pub fn head_stream(&self, seq: usize, head: usize) -> impl Iterator<Item = HeadBlock<'_, T>> {
        assert!(head < self.heads, "head {head} out of {}", self.heads);
        let state = self.live(seq);
        let d = self.head_dim;
        let block_elems = self.block_rows * self.width;
        let (off, stride) = match self.layout {
            KvLayout::TokenMajor => (head * d, self.width),
            KvLayout::HeadMajor => (head * self.block_rows * d, d),
        };
        state.blocks.iter().enumerate().map(move |(bi, &block)| {
            let first = bi * self.block_rows;
            let rows = (state.len - first).min(self.block_rows);
            let base = block * block_elems + off;
            let span = (rows - 1) * stride + d;
            HeadBlock {
                first,
                rows,
                k: &self.k_arena[base..base + span],
                v: &self.v_arena[base..base + span],
                stride,
            }
        })
    }
}

/// One sequence's output from a [`DecodeBatch::step_all`] call.
#[derive(Clone, Debug)]
pub struct DecodeStepOutput {
    /// The normalized attention row for the new token, packed
    /// `num_heads · head_dim` wide (head-major, like the inputs).
    pub output: Vec<f64>,
    /// Predicted checksum: `Σ_h c_h/ℓ_h` over the sequence's heads
    /// (Alg. 3 line 10, summed across heads).
    pub predicted: f64,
    /// Actual checksum: the sum of all produced output lanes.
    pub actual: f64,
}

impl DecodeStepOutput {
    /// `predicted − actual` — tiny in fault-free f64 decode, large when a
    /// datapath fault corrupted this token's computation.
    pub fn residual(&self) -> f64 {
        self.predicted - self.actual
    }
}

/// A checked, admitted prompt: what [`DecodeBatch::admit_all`] returns
/// for each prompt after running it through the batched fused-checksum
/// prefill.
#[derive(Clone, Debug)]
pub struct AdmittedPrompt {
    /// The sequence id the prompt was admitted as (may reuse a retired
    /// slot).
    pub seq: usize,
    /// The prompt's causal self-attention output (`N × model_dim`,
    /// f64 like the decode outputs).
    pub output: Matrix<f64>,
    /// Predicted prompt checksum: per head, the Kahan-accumulated Alg. 3
    /// line 11 sum over the prompt's queries — bit-identical to
    /// `flash_abft::flash2_with_checksum` on that head — summed across
    /// heads in head order.
    pub predicted: f64,
    /// Actual prompt checksum: sum of all produced output elements,
    /// Kahan-accumulated per head in (query, lane) order.
    pub actual: f64,
}

impl AdmittedPrompt {
    /// `predicted − actual` for the prompt pass.
    pub fn residual(&self) -> f64 {
        self.predicted - self.actual
    }
}

/// Unnormalized per-(sequence, head) state produced by one fused pass:
/// `d` output lanes plus the checksum lane, and the softmax terminal.
struct HeadState {
    /// Lanes `0..d` = output accumulator, lane `d` = checksum (only
    /// meaningful on checked passes).
    lanes: Vec<f64>,
    sum_exp: f64,
}

/// A batched, checked, KV-cache-backed decode engine over
/// `num_sequences × num_heads` independent attention streams, with
/// continuous batching: sequences are admitted (checked batched prefill)
/// and retired (block recycling) mid-flight while the rest of the batch
/// keeps decoding.
///
/// # Example
///
/// ```
/// use fa_attention::batch::DecodeBatch;
/// use fa_attention::multihead::MultiHeadConfig;
/// use fa_attention::AttentionConfig;
/// use fa_tensor::Matrix;
///
/// let cfg = MultiHeadConfig::new(2, AttentionConfig::new(2));
/// let mut batch = DecodeBatch::<f64>::new(cfg, 16);
/// let s0 = batch.add_sequence();
/// let q = Matrix::from_rows(&[&[1.0, 0.0, 0.0, 1.0]]);
/// let k = Matrix::from_rows(&[&[0.5, 0.5, 0.5, 0.5]]);
/// let v = Matrix::from_rows(&[&[2.0, 4.0, 6.0, 8.0]]);
/// let out = batch.step_all(&[s0], &q, &k, &v);
/// // First token: softmax weight 1 per head, output == v.
/// assert_eq!(out[0].output, vec![2.0, 4.0, 6.0, 8.0]);
/// assert!(out[0].residual().abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct DecodeBatch<T> {
    cfg: MultiHeadConfig,
    cache: KvCache<T>,
    /// Per sequence: `sumrow_h(v_i)` for every cached position `i` and
    /// head `h`, stored `i·H + h` — the Eq. 4 vector the checksum lane
    /// consumes, computed once per appended token. Cleared on retire and
    /// rebuilt on slot reuse, so recycled blocks never leak a previous
    /// owner's checksum inputs.
    sumrows: Vec<Vec<f64>>,
    /// Per sequence: running (predicted, actual) totals over the admitted
    /// prompt and all checked decoded tokens — the session-level Alg. 3
    /// line 11 state. Survives block recycling (it lives outside the
    /// arena) and is reset when a retired slot is reused.
    totals: Vec<(f64, f64)>,
    /// Per sequence: prompt tokens cached without per-token decode
    /// checking (admitted or prefilled).
    prompt_tokens: Vec<usize>,
    /// Per sequence: tokens decoded through [`step_all`](Self::step_all)
    /// (checksum-covered).
    checked_steps: Vec<usize>,
    /// Per sequence: tokens decoded through
    /// [`step_all_unchecked`](DecodeBatch::step_all_unchecked), which the
    /// session verdict does **not** cover.
    unchecked_steps: Vec<usize>,
}

impl<T: Scalar> DecodeBatch<T> {
    /// Creates an empty engine with the given head layout and KV-cache
    /// block size (rows per block), using the head-major cache layout.
    ///
    /// # Panics
    ///
    /// Panics if `block_rows == 0`.
    pub fn new(cfg: MultiHeadConfig, block_rows: usize) -> Self {
        Self::with_layout(cfg, block_rows, KvLayout::HeadMajor)
    }

    /// Like [`new`](Self::new) but with the token-major cache layout —
    /// the PR-2 arrangement, kept as the layout-equivalence reference.
    ///
    /// # Panics
    ///
    /// Panics if `block_rows == 0`.
    pub fn new_token_major(cfg: MultiHeadConfig, block_rows: usize) -> Self {
        Self::with_layout(cfg, block_rows, KvLayout::TokenMajor)
    }

    /// Creates an empty engine with an explicit cache layout.
    ///
    /// # Panics
    ///
    /// Panics if `block_rows == 0`.
    pub fn with_layout(cfg: MultiHeadConfig, block_rows: usize, layout: KvLayout) -> Self {
        DecodeBatch {
            cfg,
            cache: KvCache::with_layout(cfg.num_heads, cfg.head.head_dim(), block_rows, layout),
            sumrows: Vec::new(),
            totals: Vec::new(),
            prompt_tokens: Vec::new(),
            checked_steps: Vec::new(),
            unchecked_steps: Vec::new(),
        }
    }

    /// The head layout.
    pub fn config(&self) -> &MultiHeadConfig {
        &self.cfg
    }

    /// Read-only view of the paged cache (serving metrics: arena size,
    /// free list, recycled-block counter).
    pub fn cache(&self) -> &KvCache<T> {
        &self.cache
    }

    /// Number of sequence slots ever registered (live + retired).
    pub fn num_sequences(&self) -> usize {
        self.cache.num_sequences()
    }

    /// Number of live (non-retired) sequences.
    pub fn live_sequences(&self) -> usize {
        self.cache.live_sequences()
    }

    /// Whether sequence slot `seq` is retired.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn is_retired(&self, seq: usize) -> bool {
        self.cache.is_retired(seq)
    }

    /// Number of cached positions for sequence `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired.
    pub fn seq_len(&self, seq: usize) -> usize {
        self.cache.seq_len(seq)
    }

    /// Registers a new (empty) sequence and returns its id, reusing a
    /// retired slot (and, transitively, its freed cache blocks) when one
    /// is available. Per-sequence checksum state for the slot is reset.
    pub fn add_sequence(&mut self) -> usize {
        let seq = self.cache.add_sequence();
        if seq == self.sumrows.len() {
            self.sumrows.push(Vec::new());
            self.totals.push((0.0, 0.0));
            self.prompt_tokens.push(0);
            self.checked_steps.push(0);
            self.unchecked_steps.push(0);
        } else {
            self.sumrows[seq].clear();
            self.totals[seq] = (0.0, 0.0);
            self.prompt_tokens[seq] = 0;
            self.checked_steps[seq] = 0;
            self.unchecked_steps[seq] = 0;
        }
        seq
    }

    /// Retires sequence `seq`: its cache blocks return to the free list
    /// for later admissions, its sumrow staging is dropped, and the slot
    /// becomes reusable. The running totals stay readable (for a final
    /// verdict) until the slot is reused by
    /// [`add_sequence`](Self::add_sequence) /
    /// [`admit`](Self::admit).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or already retired.
    pub fn retire(&mut self, seq: usize) {
        self.cache.retire_sequence(seq);
        self.sumrows[seq] = Vec::new();
    }

    /// Pre-fills sequence `seq` from prompt K/V matrices
    /// (`N × model_dim`) **without computing attention** — for prompts
    /// whose pass was checked elsewhere. [`admit`](Self::admit) is the
    /// checked admission path.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or out-of-range/retired `seq`.
    pub fn prefill(&mut self, seq: usize, k: &Matrix<T>, v: &Matrix<T>) {
        assert_eq!(k.cols(), self.cfg.model_dim(), "K width mismatch");
        assert_eq!(v.cols(), self.cfg.model_dim(), "V width mismatch");
        assert_eq!(k.rows(), v.rows(), "K/V row count mismatch");
        for i in 0..k.rows() {
            self.append_token(seq, k.row(i), v.row(i));
        }
        self.prompt_tokens[seq] += k.rows();
    }

    /// Reserves KV-cache capacity for at least `additional_rows` more
    /// cached rows across all sequences (see [`KvCache::reserve_rows`]).
    pub fn reserve_rows(&mut self, additional_rows: usize) {
        self.cache.reserve_rows(additional_rows);
    }

    /// Running `Σ predicted − Σ actual` over the admitted prompt and
    /// every token decoded for `seq` through [`step_all`](Self::step_all)
    /// — the sequence-level ABFT verdict. Tokens decoded through
    /// [`step_all_unchecked`](Self::step_all_unchecked) are **not**
    /// covered; check [`unchecked_len`](Self::unchecked_len) before
    /// reading a zero residual as "every token verified".
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn global_residual(&self, seq: usize) -> f64 {
        let (predicted, actual) = self.totals[seq];
        predicted - actual
    }

    /// Prompt tokens cached for `seq` (admitted or prefilled).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn prompt_len(&self, seq: usize) -> usize {
        self.prompt_tokens[seq]
    }

    /// Tokens of `seq` decoded with checksum coverage (via
    /// [`step_all`](Self::step_all)).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn checked_len(&self, seq: usize) -> usize {
        self.checked_steps[seq]
    }

    /// Number of tokens of `seq` decoded without checksum coverage (via
    /// [`step_all_unchecked`](Self::step_all_unchecked)). Zero means the
    /// [`global_residual`](Self::global_residual) verdict covers the
    /// whole decoded history.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn unchecked_len(&self, seq: usize) -> usize {
        self.unchecked_steps[seq]
    }

    /// Tokens decoded for `seq` through either decode path. For a live
    /// sequence, `prompt_len + decoded_len == seq_len` — the accounting
    /// invariant the coverage tests pin.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn decoded_len(&self, seq: usize) -> usize {
        self.checked_steps[seq] + self.unchecked_steps[seq]
    }

    fn append_token(&mut self, seq: usize, k: &[T], v: &[T]) {
        let d = self.cfg.head.head_dim();
        self.cache.append(seq, k, v);
        for h in 0..self.cfg.num_heads {
            let sumrow: f64 = v[h * d..(h + 1) * d].iter().map(|x| x.to_f64()).sum();
            self.sumrows[seq].push(sumrow);
        }
    }

    /// Admits one prompt: registers a sequence (reusing retired slots and
    /// their blocks), caches the prompt K/V, and computes the prompt's
    /// checked causal self-attention. See [`admit_all`](Self::admit_all).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn admit(&mut self, q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> AdmittedPrompt {
        self.admit_all(&[(q, k, v)])
            .pop()
            .expect("one prompt admitted")
    }

    /// Admits a batch of prompts under the fused checksum: every prompt's
    /// K/V rows are cached, then **all** `prompts × heads` checked causal
    /// prefill passes are scheduled across the rayon pool in one fork, so
    /// admission cost amortizes across the batch instead of serializing
    /// per sequence.
    ///
    /// Per (prompt, head) the pass is the batched form of
    /// `flash_abft::flash2_with_checksum` on that head's `N × d` slices
    /// with a causal mask: same score/axpy kernels, same per-query merged
    /// accumulator recurrence, same Kahan finalization order — so each
    /// head's output rows and (predicted, actual) checksums are
    /// bit-identical to the standalone kernel (property-tested in
    /// `flash-abft`). The per-sequence totals absorb the prompt checksums,
    /// extending [`global_residual`](Self::global_residual) coverage to
    /// every prefill token.
    ///
    /// Outputs are returned in prompt order.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch (each prompt's Q/K/V must be
    /// `N × model_dim` with one shared `N`).
    pub fn admit_all(
        &mut self,
        prompts: &[(&Matrix<T>, &Matrix<T>, &Matrix<T>)],
    ) -> Vec<AdmittedPrompt> {
        let dim = self.cfg.model_dim();
        let h = self.cfg.num_heads;
        let d = self.cfg.head.head_dim();

        // Validate every prompt before mutating anything, so a malformed
        // prompt cannot leave earlier prompts half-admitted (same
        // validate-before-mutate contract as `step_all`).
        for &(q, k, v) in prompts {
            assert_eq!(q.cols(), dim, "prompt Q width mismatch");
            assert_eq!(k.cols(), dim, "prompt K width mismatch");
            assert_eq!(v.cols(), dim, "prompt V width mismatch");
            assert_eq!(q.rows(), k.rows(), "prompt Q/K row count mismatch");
            assert_eq!(k.rows(), v.rows(), "prompt K/V row count mismatch");
        }

        // Phase 1 (serial, cheap): register sequences and cache every
        // prompt token.
        let mut seqs = Vec::with_capacity(prompts.len());
        for &(_, k, v) in prompts {
            let seq = self.add_sequence();
            for i in 0..k.rows() {
                self.append_token(seq, k.row(i), v.row(i));
            }
            self.prompt_tokens[seq] = k.rows();
            seqs.push(seq);
        }

        // Phase 2: one fork over all prompt×head checked prefill passes.
        let pairs: Vec<(usize, usize)> = (0..prompts.len())
            .flat_map(|pi| (0..h).map(move |hi| (pi, hi)))
            .collect();
        let max_len = prompts.iter().map(|p| p.0.rows()).max().unwrap_or(0);
        let pass = |(pi, hi): (usize, usize)| {
            let (q, _, _) = prompts[pi];
            let seq = seqs[pi];
            let cols = self.cfg.head_cols(hi);
            let mut scores = Vec::new();
            (0..q.rows())
                .map(|p| self.fused_pass(seq, hi, &q.row(p)[cols.clone()], p, true, &mut scores))
                .collect::<Vec<HeadState>>()
        };
        // Few-but-huge work units: each pair is an O(N²·d) prefill pass,
        // so even a 2-way fork pays — the decode-tuned rows≥16 floor of
        // `worth_parallelizing` would serialize small batches of long
        // prompts.
        let per_pair_elems = max_len.saturating_mul(max_len) / 2 * d;
        let states: Vec<Vec<HeadState>> =
            if crate::par::worth_parallelizing_units(pairs.len(), per_pair_elems) {
                pairs.into_par_iter().map(pass).collect()
            } else {
                pairs.into_iter().map(pass).collect()
            };

        // Phase 3: finalize per prompt in (head, query) order on this
        // thread — the same Kahan order as flash2_with_checksum per head.
        let mut outs = Vec::with_capacity(prompts.len());
        for (pi, &(q, _, _)) in prompts.iter().enumerate() {
            let n = q.rows();
            let seq = seqs[pi];
            let mut output = Matrix::<f64>::zeros(n, dim);
            let mut predicted = 0.0f64;
            let mut actual = 0.0f64;
            for hi in 0..h {
                let mut pred = KahanSum::new();
                let mut act = KahanSum::new();
                for (p, state) in states[pi * h + hi].iter().enumerate() {
                    for (c, &lane) in state.lanes[..d].iter().enumerate() {
                        let val = lane / state.sum_exp;
                        output[(p, hi * d + c)] = val;
                        act.add(val);
                    }
                    pred.add(state.lanes[d] / state.sum_exp);
                }
                predicted += pred.value();
                actual += act.value();
            }
            let totals = &mut self.totals[seq];
            totals.0 += predicted;
            totals.1 += actual;
            outs.push(AdmittedPrompt {
                seq,
                output,
                predicted,
                actual,
            });
        }
        outs
    }

    /// Decodes one token for every listed sequence, with the fused online
    /// checksum riding each head's pass.
    ///
    /// Row `i` of `qs`/`ks`/`vs` (each `batch × model_dim`) is the new
    /// token of `seq_ids[i]`. All K/V rows are appended first, then every
    /// `sequence × head` pass is scheduled across the shared rayon pool
    /// in one fork; per-head states are combined in input order on the
    /// calling thread, so the result is bit-identical at every thread
    /// count and to serial per-sequence decode.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, out-of-range, retired, or duplicate
    /// sequence ids.
    pub fn step_all(
        &mut self,
        seq_ids: &[usize],
        qs: &Matrix<T>,
        ks: &Matrix<T>,
        vs: &Matrix<T>,
    ) -> Vec<DecodeStepOutput> {
        let states = self.run_passes(seq_ids, qs, ks, vs, true);
        let h = self.cfg.num_heads;
        let d = self.cfg.head.head_dim();
        // Finalize in input order on this thread (Alg. 3 lines 9–11).
        let mut outputs = Vec::with_capacity(seq_ids.len());
        for (i, &seq) in seq_ids.iter().enumerate() {
            let mut output = vec![0.0f64; self.cfg.model_dim()];
            let mut predicted = 0.0f64;
            let mut actual = 0.0f64;
            for (hi, state) in states[i * h..(i + 1) * h].iter().enumerate() {
                for (c, &lane) in state.lanes[..d].iter().enumerate() {
                    let val = lane / state.sum_exp;
                    output[hi * d + c] = val;
                    actual += val;
                }
                predicted += state.lanes[d] / state.sum_exp;
            }
            let totals = &mut self.totals[seq];
            totals.0 += predicted;
            totals.1 += actual;
            self.checked_steps[seq] += 1;
            outputs.push(DecodeStepOutput {
                output,
                predicted,
                actual,
            });
        }
        outputs
    }

    /// [`step_all`](Self::step_all) without the checksum lane — the
    /// unchecked baseline the overhead benchmark compares against.
    /// Returns only the normalized output rows. Tokens decoded this way
    /// still advance the cache but are **excluded** from the
    /// [`global_residual`](Self::global_residual) session verdict; the
    /// per-sequence [`unchecked_len`](Self::unchecked_len) counter
    /// records the coverage gap.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, out-of-range, retired, or duplicate
    /// sequence ids.
    pub fn step_all_unchecked(
        &mut self,
        seq_ids: &[usize],
        qs: &Matrix<T>,
        ks: &Matrix<T>,
        vs: &Matrix<T>,
    ) -> Vec<Vec<f64>> {
        let states = self.run_passes(seq_ids, qs, ks, vs, false);
        for &seq in seq_ids {
            self.unchecked_steps[seq] += 1;
        }
        let h = self.cfg.num_heads;
        let d = self.cfg.head.head_dim();
        seq_ids
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let mut output = vec![0.0f64; self.cfg.model_dim()];
                for (hi, state) in states[i * h..(i + 1) * h].iter().enumerate() {
                    for (c, &lane) in state.lanes[..d].iter().enumerate() {
                        output[hi * d + c] = lane / state.sum_exp;
                    }
                }
                output
            })
            .collect()
    }

    /// Appends every input token, then runs all `batch × heads` fused
    /// passes in a single fork.
    fn run_passes(
        &mut self,
        seq_ids: &[usize],
        qs: &Matrix<T>,
        ks: &Matrix<T>,
        vs: &Matrix<T>,
        checked: bool,
    ) -> Vec<HeadState> {
        let model_dim = self.cfg.model_dim();
        assert_eq!(qs.cols(), model_dim, "Q width mismatch");
        assert_eq!(ks.cols(), model_dim, "K width mismatch");
        assert_eq!(vs.cols(), model_dim, "V width mismatch");
        let batch = seq_ids.len();
        assert_eq!(qs.rows(), batch, "one Q row per sequence id");
        assert_eq!(ks.rows(), batch, "one K row per sequence id");
        assert_eq!(vs.rows(), batch, "one V row per sequence id");
        for (i, &s) in seq_ids.iter().enumerate() {
            assert!(s < self.num_sequences(), "unknown sequence id {s}");
            assert!(!self.cache.is_retired(s), "sequence {s} is retired");
            assert!(
                !seq_ids[..i].contains(&s),
                "duplicate sequence id {s} in one step"
            );
        }

        // Phase 1 (serial, cheap): append every new token.
        for (i, &seq) in seq_ids.iter().enumerate() {
            self.append_token(seq, ks.row(i), vs.row(i));
        }

        // Phase 2: one fork over all sequence×head passes.
        let h = self.cfg.num_heads;
        let work = batch * h;
        let max_len = seq_ids
            .iter()
            .map(|&s| self.cache.seq_len(s))
            .max()
            .unwrap_or(0);
        let pass = |flat: usize| {
            let (i, hi) = (flat / h, flat % h);
            let seq = seq_ids[i];
            let cols = self.cfg.head_cols(hi);
            let mut scores = Vec::new();
            self.fused_pass(
                seq,
                hi,
                &qs.row(i)[cols],
                self.cache.seq_len(seq) - 1,
                checked,
                &mut scores,
            )
        };
        if crate::par::worth_parallelizing(work, max_len, self.cfg.head.head_dim()) {
            (0..work).into_par_iter().map(pass).collect()
        } else {
            (0..work).map(pass).collect()
        }
    }

    /// The fused Alg. 3 loop for one (sequence, head) query at position
    /// `last_pos`: one sweep over the sequence's cached blocks up to (and
    /// including) `last_pos`, computing scores, online-softmax state,
    /// output lanes and (when `checked`) the checksum lane.
    ///
    /// Each block is scored first through the contiguous-stream
    /// [`ops::dot_then_scale_rows`] kernel (with the head-major layout
    /// the K panel is one pure contiguous span), then its scores and V
    /// rows fold through the online recurrence — two tight streams per
    /// block. Decode passes use `last_pos == seq_len − 1`; admitted
    /// prompt queries use their own position, which also applies the
    /// causal mask. Sliding-window masking is relative to `last_pos`,
    /// matching `DecodeSession::step_with_state`. `scores` is caller
    /// scratch, reused across blocks and queries.
    fn fused_pass(
        &self,
        seq: usize,
        head: usize,
        q_sub: &[T],
        last_pos: usize,
        checked: bool,
        scores: &mut Vec<f64>,
    ) -> HeadState {
        let d = self.cfg.head.head_dim();
        let h = self.cfg.num_heads;
        let scale = self.cfg.head.scale();
        let sumrows = &self.sumrows[seq];

        // Visible positions: the causal-window interval ending at
        // `last_pos`.
        let lo = match self.cfg.head.sliding_window() {
            Some(w) => (last_pos + 1).saturating_sub(w),
            None => 0,
        };

        let mut os = OnlineSoftmax::new();
        let mut lanes = vec![0.0f64; d + 1];
        for blk in self.cache.head_stream(seq, head) {
            if blk.first > last_pos {
                break;
            }
            let r1 = (last_pos + 1 - blk.first).min(blk.rows);
            let r0 = lo.saturating_sub(blk.first).min(r1);
            if r0 == r1 {
                continue;
            }
            ops::dot_then_scale_rows(
                q_sub,
                &blk.k[r0 * blk.stride..],
                blk.stride,
                r1 - r0,
                scale,
                scores,
            );
            for (j, &s) in scores.iter().enumerate() {
                let r = r0 + j;
                let step = os.push(s);
                let vo = r * blk.stride;
                ops::axpy_f64(
                    &mut lanes[..d],
                    &blk.v[vo..vo + d],
                    step.scale_old,
                    step.weight_new,
                );
                if checked {
                    let pos = blk.first + r;
                    lanes[d] =
                        lanes[d] * step.scale_old + sumrows[pos * h + head] * step.weight_new;
                }
            }
        }
        HeadState {
            lanes,
            sum_exp: os.sum_exp(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::DecodeSession;
    use crate::AttentionConfig;
    use fa_tensor::random::ElementDist;

    fn rand(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        Matrix::random_seeded(rows, cols, ElementDist::default(), seed)
    }

    #[test]
    fn cache_blocks_are_contiguous_and_ordered() {
        let mut cache = KvCache::<f64>::new(2, 3);
        let s0 = cache.add_sequence();
        let s1 = cache.add_sequence();
        // Interleave appends so the two sequences' blocks interleave in
        // the arena.
        for i in 0..7 {
            cache.append(s0, &[i as f64, 0.0], &[10.0 + i as f64, 0.0]);
            if i < 4 {
                cache.append(s1, &[100.0 + i as f64, 0.0], &[0.0, i as f64]);
            }
        }
        assert_eq!(cache.seq_len(s0), 7);
        assert_eq!(cache.seq_len(s1), 4);
        let mut pos = 0;
        for (first, k_rows, v_rows) in cache.blocks(s0) {
            assert_eq!(first, pos);
            let rows = k_rows.len() / 2;
            for r in 0..rows {
                assert_eq!(k_rows[r * 2], (first + r) as f64);
                assert_eq!(v_rows[r * 2], 10.0 + (first + r) as f64);
            }
            pos += rows;
        }
        assert_eq!(pos, 7);
        assert_eq!(cache.key_row(s1, 3)[0], 103.0);
    }

    #[test]
    fn head_major_blocks_are_contiguous_per_head() {
        // 2 heads × dim 2, 3-row blocks: each head's panel must stream
        // contiguously (stride == head_dim) and reproduce the appended
        // rows in position order.
        let mut cache = KvCache::<f64>::new_head_major(2, 2, 3);
        let s = cache.add_sequence();
        for i in 0..7 {
            let i = i as f64;
            cache.append(
                s,
                &[i, 10.0 + i, 20.0 + i, 30.0 + i],
                &[40.0 + i, 50.0 + i, 60.0 + i, 70.0 + i],
            );
        }
        for head in 0..2 {
            let mut pos = 0;
            for blk in cache.head_stream(s, head) {
                assert_eq!(blk.stride, 2, "head-major panels are contiguous");
                assert_eq!(blk.first, pos);
                for r in 0..blk.rows {
                    let i = (blk.first + r) as f64;
                    assert_eq!(blk.k[r * 2], 20.0 * head as f64 + i);
                    assert_eq!(blk.k[r * 2 + 1], 20.0 * head as f64 + 10.0 + i);
                    assert_eq!(blk.v[r * 2], 20.0 * head as f64 + 40.0 + i);
                }
                pos += blk.rows;
            }
            assert_eq!(pos, 7);
        }
        // Gathered full rows agree with the appended ones.
        assert_eq!(cache.key_row(s, 4), vec![4.0, 14.0, 24.0, 34.0]);
        assert_eq!(cache.value_row(s, 6), vec![46.0, 56.0, 66.0, 76.0]);
    }

    #[test]
    fn retired_blocks_are_recycled_not_leaked() {
        let mut cache = KvCache::<f64>::new_head_major(1, 2, 2);
        let s0 = cache.add_sequence();
        for i in 0..6 {
            cache.append(s0, &[i as f64, 0.0], &[0.0, 0.0]);
        }
        assert_eq!(cache.allocated_blocks(), 3);
        cache.retire_sequence(s0);
        assert_eq!(cache.free_block_list().len(), 3);
        assert_eq!(cache.live_sequences(), 0);

        // A new sequence reuses the slot id and the freed blocks — the
        // arena must not grow.
        let s1 = cache.add_sequence();
        assert_eq!(s1, s0, "retired slot is reused");
        for i in 0..6 {
            cache.append(s1, &[100.0 + i as f64, 0.0], &[0.0, 0.0]);
        }
        assert_eq!(cache.allocated_blocks(), 3, "no new arena growth");
        assert_eq!(cache.recycled_blocks(), 3);
        assert!(cache.free_block_list().is_empty());
        assert_eq!(cache.key_row(s1, 5)[0], 105.0);
    }

    #[test]
    #[should_panic(expected = "is retired")]
    fn retired_sequence_access_panics() {
        let mut cache = KvCache::<f64>::new(2, 2);
        let s = cache.add_sequence();
        cache.append(s, &[1.0, 2.0], &[3.0, 4.0]);
        cache.retire_sequence(s);
        let _ = cache.seq_len(s);
    }

    #[test]
    fn batched_decode_matches_serial_sessions_bitwise() {
        // The load-bearing equivalence: DecodeBatch over S sequences and
        // H heads must equal one DecodeSession per (sequence, head), bit
        // for bit, for any cache block size and either layout.
        let cfg = MultiHeadConfig::new(3, AttentionConfig::new(4));
        let (s, steps) = (4, 6);
        for layout in [KvLayout::HeadMajor, KvLayout::TokenMajor] {
            for block_rows in [1, 2, 16] {
                let mut batch = DecodeBatch::<f64>::with_layout(cfg, block_rows, layout);
                let ids: Vec<usize> = (0..s).map(|_| batch.add_sequence()).collect();
                let mut sessions: Vec<Vec<DecodeSession<f64>>> = (0..s)
                    .map(|_| (0..3).map(|_| DecodeSession::new(cfg.head)).collect())
                    .collect();
                for t in 0..steps {
                    let seed = 9000 + t as u64;
                    let qs = rand(s, cfg.model_dim(), seed);
                    let ks = rand(s, cfg.model_dim(), seed + 100);
                    let vs = rand(s, cfg.model_dim(), seed + 200);
                    let outs = batch.step_all(&ids, &qs, &ks, &vs);
                    for (i, out) in outs.iter().enumerate() {
                        for (h, session) in sessions[i].iter_mut().enumerate() {
                            let slice = |m: &Matrix<f64>| m.row(i)[h * 4..(h + 1) * 4].to_vec();
                            let reference = session.step(&slice(&qs), &slice(&ks), &slice(&vs));
                            for (c, r) in reference.iter().enumerate() {
                                assert_eq!(
                                    out.output[h * 4 + c].to_bits(),
                                    r.to_bits(),
                                    "{layout:?} block_rows {block_rows} step {t} seq {i} \
                                     head {h} lane {c}"
                                );
                            }
                        }
                        assert!(out.residual().abs() < 1e-12, "checksum holds");
                    }
                }
                for &id in &ids {
                    assert!(batch.global_residual(id).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn step_all_parallel_bit_identical_any_thread_count() {
        let cfg = MultiHeadConfig::new(4, AttentionConfig::new(8));
        let run = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| {
                    let mut batch = DecodeBatch::<f64>::new(cfg, 8);
                    let ids: Vec<usize> = (0..6).map(|_| batch.add_sequence()).collect();
                    for &id in &ids {
                        batch.prefill(
                            id,
                            &rand(40, cfg.model_dim(), 70 + id as u64),
                            &rand(40, cfg.model_dim(), 80 + id as u64),
                        );
                    }
                    let qs = rand(6, cfg.model_dim(), 1);
                    let ks = rand(6, cfg.model_dim(), 2);
                    let vs = rand(6, cfg.model_dim(), 3);
                    batch.step_all(&ids, &qs, &ks, &vs)
                })
        };
        let serial = run(1);
        for threads in [2, 3, 8] {
            let parallel = run(threads);
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.predicted.to_bits(), b.predicted.to_bits());
                assert_eq!(a.actual.to_bits(), b.actual.to_bits());
                for (x, y) in a.output.iter().zip(&b.output) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{threads} threads");
                }
            }
        }
    }

    #[test]
    fn admit_matches_prefill_then_decode_bitwise() {
        // A sequence admitted under the fused checksum must decode
        // exactly like one prefilled without checking: admission only
        // adds the prompt verification, never changes the cached state.
        let cfg = MultiHeadConfig::new(2, AttentionConfig::new(4));
        let dim = cfg.model_dim();
        let (pq, pk, pv) = (rand(9, dim, 40), rand(9, dim, 41), rand(9, dim, 42));

        let mut admitted = DecodeBatch::<f64>::new(cfg, 4);
        let prompt = admitted.admit(&pq, &pk, &pv);
        assert!(prompt.residual().abs() < 1e-10, "prompt check holds");
        assert_eq!(prompt.output.rows(), 9);
        assert_eq!(admitted.prompt_len(prompt.seq), 9);

        let mut prefilled = DecodeBatch::<f64>::new(cfg, 4);
        let seq = prefilled.add_sequence();
        prefilled.prefill(seq, &pk, &pv);

        for t in 0..3 {
            let qs = rand(1, dim, 60 + t);
            let ks = rand(1, dim, 70 + t);
            let vs = rand(1, dim, 80 + t);
            let a = admitted.step_all(&[prompt.seq], &qs, &ks, &vs);
            let b = prefilled.step_all(&[seq], &qs, &ks, &vs);
            assert_eq!(a[0].output, b[0].output, "step {t}");
            assert_eq!(a[0].predicted.to_bits(), b[0].predicted.to_bits());
        }
        assert!(admitted.global_residual(prompt.seq).abs() < 1e-9);
    }

    #[test]
    fn admit_all_parallel_bit_identical_any_thread_count() {
        let cfg = MultiHeadConfig::new(4, AttentionConfig::new(8));
        let dim = cfg.model_dim();
        let prompts: Vec<(Matrix<f64>, Matrix<f64>, Matrix<f64>)> = (0..5)
            .map(|i| {
                let n = 20 + 5 * i;
                (
                    rand(n, dim, 500 + i as u64),
                    rand(n, dim, 600 + i as u64),
                    rand(n, dim, 700 + i as u64),
                )
            })
            .collect();
        let refs: Vec<(&Matrix<f64>, &Matrix<f64>, &Matrix<f64>)> =
            prompts.iter().map(|(q, k, v)| (q, k, v)).collect();
        let run = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| {
                    let mut batch = DecodeBatch::<f64>::new(cfg, 8);
                    batch.admit_all(&refs)
                })
        };
        let serial = run(1);
        for threads in [2, 5] {
            let parallel = run(threads);
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.output, b.output, "{threads} threads");
                assert_eq!(a.predicted.to_bits(), b.predicted.to_bits());
                assert_eq!(a.actual.to_bits(), b.actual.to_bits());
            }
        }
    }

    #[test]
    fn admit_all_validates_every_prompt_before_mutating() {
        // A malformed prompt anywhere in the batch must fail the whole
        // call *before* any prompt is admitted — no half-mutated engine.
        let cfg = MultiHeadConfig::new(2, AttentionConfig::new(4));
        let dim = cfg.model_dim();
        let mut batch = DecodeBatch::<f64>::new(cfg, 4);
        let (gq, gk, gv) = (rand(3, dim, 1), rand(3, dim, 2), rand(3, dim, 3));
        let bad_q = rand(3, dim - 1, 4); // wrong width
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            batch.admit_all(&[(&gq, &gk, &gv), (&bad_q, &gk, &gv)])
        }));
        assert!(result.is_err(), "malformed prompt must panic");
        assert_eq!(batch.num_sequences(), 0, "nothing was half-admitted");
    }

    #[test]
    fn retire_and_readmit_preserves_neighbour_state() {
        // Retiring a sequence mid-flight must not disturb the survivors'
        // outputs or checksum state, and the replacement must behave like
        // a fresh engine's sequence despite running on recycled blocks.
        let cfg = MultiHeadConfig::new(2, AttentionConfig::new(4));
        let dim = cfg.model_dim();
        let mut engine = DecodeBatch::<f64>::new(cfg, 2);
        let mut lone = DecodeBatch::<f64>::new(cfg, 2);

        let (q0, k0, v0) = (rand(6, dim, 1), rand(6, dim, 2), rand(6, dim, 3));
        let (q1, k1, v1) = (rand(4, dim, 4), rand(4, dim, 5), rand(4, dim, 6));
        let a = engine.admit(&q0, &k0, &v0);
        let b = engine.admit(&q1, &k1, &v1);
        let lone_a = lone.admit(&q0, &k0, &v0);
        assert_eq!(a.output, lone_a.output, "co-admission changes nothing");

        // Decode both, retire b, decode a alone (mirrored on `lone`).
        let step = |e: &mut DecodeBatch<f64>, ids: &[usize], t: u64, width: usize| {
            let qs = rand(width, dim, 900 + t);
            let ks = rand(width, dim, 910 + t);
            let vs = rand(width, dim, 920 + t);
            e.step_all(ids, &qs, &ks, &vs)
        };
        let both = step(&mut engine, &[a.seq, b.seq], 0, 2);
        let solo = {
            let qs = rand(2, dim, 900);
            let ks = rand(2, dim, 910);
            let vs = rand(2, dim, 920);
            let sliced = |m: &Matrix<f64>| Matrix::from_fn(1, dim, |_, c| m[(0, c)]);
            lone.step_all(&[lone_a.seq], &sliced(&qs), &sliced(&ks), &sliced(&vs))
        };
        assert_eq!(both[0].output, solo[0].output);

        engine.retire(b.seq);
        assert!(engine.is_retired(b.seq));
        assert_eq!(engine.live_sequences(), 1);

        // Readmit onto the recycled blocks; survivor keeps decoding
        // bit-identically to its lone twin.
        let (q2, k2, v2) = (rand(5, dim, 7), rand(5, dim, 8), rand(5, dim, 9));
        let c = engine.admit(&q2, &k2, &v2);
        assert_eq!(c.seq, b.seq, "slot reuse");
        assert!(engine.cache().recycled_blocks() > 0, "blocks recycled");
        for t in 1..4 {
            let outs = step(&mut engine, &[a.seq, c.seq], t, 2);
            let qs = rand(2, dim, 900 + t);
            let ks = rand(2, dim, 910 + t);
            let vs = rand(2, dim, 920 + t);
            let sliced = |m: &Matrix<f64>| Matrix::from_fn(1, dim, |_, c| m[(0, c)]);
            let solo = lone.step_all(&[lone_a.seq], &sliced(&qs), &sliced(&ks), &sliced(&vs));
            assert_eq!(outs[0].output, solo[0].output, "step {t}");
            assert!(outs[1].residual().abs() < 1e-10, "readmitted seq checks");
        }
        assert!(engine.global_residual(a.seq).abs() < 1e-9);
        assert!(engine.global_residual(c.seq).abs() < 1e-9);
    }

    #[test]
    fn unchecked_matches_checked_outputs() {
        let cfg = MultiHeadConfig::new(2, AttentionConfig::new(4));
        let mut checked = DecodeBatch::<f64>::new(cfg, 4);
        let mut unchecked = DecodeBatch::<f64>::new(cfg, 4);
        let ids = vec![checked.add_sequence()];
        let _ = unchecked.add_sequence();
        for t in 0..5 {
            let qs = rand(1, 8, 300 + t);
            let ks = rand(1, 8, 400 + t);
            let vs = rand(1, 8, 500 + t);
            let a = checked.step_all(&ids, &qs, &ks, &vs);
            let b = unchecked.step_all_unchecked(&ids, &qs, &ks, &vs);
            assert_eq!(a[0].output, b[0], "step {t}");
        }
        // The session verdict covers all of `checked`'s tokens and none
        // of `unchecked`'s — and says so.
        assert_eq!(checked.unchecked_len(ids[0]), 0);
        assert_eq!(checked.checked_len(ids[0]), 5);
        assert_eq!(unchecked.unchecked_len(ids[0]), 5);
        assert_eq!(unchecked.checked_len(ids[0]), 0);
        // Both paths report the same total decoded-token count, and the
        // cache length decomposes into prompt + decoded.
        assert_eq!(checked.decoded_len(ids[0]), unchecked.decoded_len(ids[0]));
        assert_eq!(
            checked.seq_len(ids[0]),
            checked.prompt_len(ids[0]) + checked.decoded_len(ids[0])
        );
    }

    #[test]
    fn sliding_window_matches_decode_session() {
        let head = AttentionConfig::new(2).with_sliding_window(3);
        let cfg = MultiHeadConfig::new(1, head);
        let mut batch = DecodeBatch::<f64>::new(cfg, 2);
        let ids = vec![batch.add_sequence()];
        let mut session = DecodeSession::new(head);
        for t in 0..8 {
            let qs = rand(1, 2, 600 + t);
            let ks = rand(1, 2, 700 + t);
            let vs = rand(1, 2, 800 + t);
            let out = batch.step_all(&ids, &qs, &ks, &vs);
            let reference = session.step(qs.row(0), ks.row(0), vs.row(0));
            for (a, b) in out[0].output.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "step {t}");
            }
        }
    }

    #[test]
    fn corrupted_totals_are_visible() {
        let cfg = MultiHeadConfig::new(2, AttentionConfig::new(4));
        let mut batch = DecodeBatch::<f64>::new(cfg, 4);
        let ids = vec![batch.add_sequence()];
        for t in 0..4 {
            let _ = batch.step_all(
                &ids,
                &rand(1, 8, t),
                &rand(1, 8, 50 + t),
                &rand(1, 8, 90 + t),
            );
        }
        assert!(batch.global_residual(ids[0]).abs() < 1e-10);
        batch.totals[ids[0]].0 += 0.5; // simulated fault on the predicted side
        assert!(batch.global_residual(ids[0]).abs() > 0.4);
    }

    #[test]
    #[should_panic(expected = "duplicate sequence id")]
    fn duplicate_ids_panic() {
        let cfg = MultiHeadConfig::new(1, AttentionConfig::new(2));
        let mut batch = DecodeBatch::<f64>::new(cfg, 4);
        let s = batch.add_sequence();
        let m = rand(2, 2, 1);
        let _ = batch.step_all(&[s, s], &m, &m, &m);
    }

    #[test]
    #[should_panic(expected = "unknown sequence id")]
    fn unknown_id_panics() {
        let cfg = MultiHeadConfig::new(1, AttentionConfig::new(2));
        let mut batch = DecodeBatch::<f64>::new(cfg, 4);
        let m = rand(1, 2, 1);
        let _ = batch.step_all(&[0], &m, &m, &m);
    }

    #[test]
    #[should_panic(expected = "is retired")]
    fn stepping_retired_sequence_panics() {
        let cfg = MultiHeadConfig::new(1, AttentionConfig::new(2));
        let mut batch = DecodeBatch::<f64>::new(cfg, 4);
        let s = batch.add_sequence();
        let m = rand(1, 2, 1);
        let _ = batch.step_all(&[s], &m, &m, &m);
        batch.retire(s);
        let _ = batch.step_all(&[s], &m, &m, &m);
    }
}
