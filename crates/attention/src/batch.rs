//! Batched KV-cache decode with continuous batching: the serving-path
//! engine.
//!
//! Decode-dominated traffic is the mode a deployed attention accelerator
//! lives in: every step is one query per sequence against that sequence's
//! whole KV history, and the PR-2 measurements showed the sweep is
//! **KV-bandwidth-bound** at serving batch sizes — both the batched and
//! per-sequence paths stream the same bytes per step, so the SIMD dot/axpy
//! kernels idle under DRAM. This module attacks the bytes and the
//! scheduling together:
//!
//! * [`KvCache`] — a paged, block-allocated cache: fixed-size blocks
//!   carved from one shared arena, appended per sequence (the
//!   vLLM/paged-attention layout), with two physical layouts
//!   ([`KvLayout`]). The default **head-major** layout stores each head's
//!   rows as a contiguous `block_rows × head_dim` panel inside the block,
//!   so a (sequence, head) decode pass reads one pure contiguous K stream
//!   and one V stream — no per-row head-strided gathers. Retired
//!   sequences' blocks return to a **free list** and are recycled by later
//!   admissions, so arena growth is bounded by *live* tokens, not total
//!   traffic history.
//! * [`DecodeBatch`] — a multi-sequence, multi-head decode engine with
//!   **continuous batching**: [`admit`](DecodeBatch::admit) /
//!   [`admit_all`](DecodeBatch::admit_all) check and cache new prompts
//!   mid-flight (the batched form of `flash_abft::flash2_with_checksum` —
//!   bit-identical per head, property-tested in `flash-abft`), and
//!   [`retire`](DecodeBatch::retire) frees a finished sequence's blocks
//!   without disturbing its neighbours' checksum state. One
//!   [`step_all`](DecodeBatch::step_all) call appends every live
//!   sequence's new K/V, then schedules all `sequences × kv_heads` fused
//!   Alg. 3 group passes — online softmax, output lanes **and** the
//!   per-query-head checksum lane in one sweep over the cache — across
//!   the shared rayon pool in a **single fork**.
//!
//! The whole engine is **GQA-native**: head counts arrive as a
//! [`HeadTopology`] (`query_heads` query heads sharing `kv_heads` cached
//! K/V streams; plain multi-head attention is the degenerate
//! `kv_heads == query_heads` point, and
//! [`MultiHeadConfig`](crate::multihead::MultiHeadConfig)/
//! [`GqaConfig`](crate::gqa::GqaConfig) convert implicitly). The cache
//! stores **one K/V stream per kv head**,
//! so grouped models stream `group_size×` fewer bytes per decode step —
//! the dominant lever on KV-bandwidth-bound serving sweeps — and each
//! scheduled `(sequence, kv_head)` pass walks its contiguous K/V panels
//! once while feeding all `group_size` query-head states, including the
//! per-group `sumrow(V)` checksum input the group shares for free
//! (per-query-head verdicts stay exact).
//!
//! Per-(sequence, query-head) arithmetic is identical to
//! [`DecodeSession::step_with_state`](crate::decode::DecodeSession::step_with_state)
//! against that head's group K/V, to `flash_abft::CheckedDecodeSession::step`,
//! and to a one-shot causal [`flash2`](crate::flash2) pass over the same
//! history; cross-head combination runs in a fixed order on the calling
//! thread — so `step_all` is bit-identical to serial per-sequence decode
//! at every thread count, topology, cache layout, block size, and
//! admit/retire schedule (property-tested).

use crate::topology::HeadTopology;
use fa_numerics::{KahanSum, OnlineSoftmax, BF16};
use fa_tensor::{ops, Matrix, Scalar};
use rayon::prelude::*;

/// Element-format policy for cache blocks — the "mixed-format KV" lever.
///
/// `F64` keeps every block in the engine's native element format (the
/// PR-3 behaviour and the bit-pinned golden path). `Bf16` rounds every
/// appended row to BF16 on the way in, quartering the bytes every decode
/// pass streams. `Mixed` keeps a recent *burst* of blocks native — so
/// chunked prompt admission and fresh-token scoring run on full-precision
/// rows through the f64 dot kernels — and demotes blocks that age out of
/// the burst to BF16 in place (their native storage returns to the free
/// list), so steady-state decode streams BF16 bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvFormat {
    /// All blocks stay in the native element format.
    F64,
    /// Rows are rounded to BF16 (RNE, via [`round_bf16`]) on append.
    Bf16,
    /// The newest `burst_blocks` **full** blocks (plus the block currently
    /// being filled) stay native; older full blocks are demoted to BF16
    /// when a new block is claimed.
    Mixed {
        /// Full native blocks retained per sequence before demotion.
        burst_blocks: usize,
    },
}

impl KvFormat {
    /// Whether appended rows are stored rounded to BF16 immediately.
    #[inline]
    fn appends_bf16(self) -> bool {
        matches!(self, KvFormat::Bf16)
    }
}

/// Block-retention policy — the "eviction beyond `retire`" lever.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Blocks live until the sequence retires (the PR-3 behaviour).
    RetainAll,
    /// Blocks that fall entirely below the sliding attention window
    /// return to the free list mid-sequence, bounding per-sequence cache
    /// memory at `window_blocks + 1` blocks. The effective attention
    /// window is `window_blocks · block_rows` tokens; the engine masks it
    /// through [`crate::AttentionConfig::visible_range`] exactly like a
    /// configured sliding window, so outputs are bit-identical to a
    /// retain-all engine whose head config carries that window.
    SlidingWindow {
        /// Whole blocks retained behind the newest position.
        window_blocks: usize,
    },
}

impl EvictionPolicy {
    /// The eviction window in tokens, if bounded.
    #[inline]
    pub fn window_tokens(self, block_rows: usize) -> Option<usize> {
        match self {
            EvictionPolicy::RetainAll => None,
            EvictionPolicy::SlidingWindow { window_blocks } => Some(window_blocks * block_rows),
        }
    }
}

/// Background-scrub policy: how many retained blocks the engine's
/// round-robin scrub cursor audits per [`DecodeBatch::scrub_step`] call.
///
/// The online checksum lane is blind to residual-coherent (key-side)
/// storage corruption by construction; a full
/// [`audit_all`](DecodeBatch::audit_all) sees it but costs a whole
/// structure walk. The scrubber amortizes that walk: each serving step
/// spends `blocks_per_step` block audits, so **any** storage flip in a
/// retained block is caught within
/// `ceil(live_blocks / blocks_per_step)` scrub steps of landing —
/// a bounded detection latency dial (bandwidth ↔ latency), measured as
/// the `scrub` tradeoff curve in `BENCH_faults.json`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScrubPolicy {
    /// Retained blocks audited per [`DecodeBatch::scrub_step`] call
    /// (each block is checked across all kv heads, key and value side,
    /// plus its positions' `sumrow` inputs).
    pub blocks_per_step: usize,
}

impl ScrubPolicy {
    /// The cheapest policy whose analytical detection-latency bound
    /// `ceil(live_blocks / blocks_per_step)` meets `slo_steps`: inverting
    /// the bound gives `blocks_per_step = ceil(live_blocks / slo_steps)`
    /// (at least 1 so the cursor always advances). The bound holds by
    /// construction — `ceil(live / ceil(live / slo)) <= slo` for all
    /// positive `live`, `slo` — so a frontend that re-tunes with the
    /// current [`live_blocks`](DecodeBatch::live_blocks) every step keeps
    /// worst-case detection latency inside the SLO at every load point
    /// while never scrubbing more blocks than that requires.
    ///
    /// # Panics
    ///
    /// Panics if `slo_steps` is zero (no finite bandwidth meets it).
    pub fn for_target_latency(slo_steps: usize, live_blocks: usize) -> ScrubPolicy {
        assert!(slo_steps > 0, "detection-latency SLO must be positive");
        ScrubPolicy {
            blocks_per_step: live_blocks.div_ceil(slo_steps).max(1),
        }
    }
}

/// What [`DecodeBatch::quarantine`] did with the damaged sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuarantineReport {
    /// Cache blocks returned to the free lists.
    pub blocks_freed: usize,
    /// Recovery-log rows discarded (0 when the log instead seeded the
    /// automatic requeue).
    pub log_rows_dropped: usize,
    /// Rows requeued for recompute through the chunked-prefill admission
    /// path — the sequence's full K/V history when the recovery log
    /// still covered position 0 upward, else 0 and the caller must
    /// [`resubmit`](DecodeBatch::resubmit) the history itself.
    pub requeued_rows: usize,
}

/// Why [`DecodeBatch::resubmit`] rejected a history.
///
/// A serving frontend races its own bookkeeping against the engine's:
/// between deciding to requeue a victim and delivering its history,
/// another actor may have retired the slot, refilled it, or resubmitted
/// first. Each race is a recoverable error here — the frontend drops or
/// retries one request instead of aborting the whole batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResubmitError {
    /// K or V column count differs from the engine's `kv_dim`.
    WidthMismatch {
        /// The engine's packed K/V width (`kv_heads · head_dim`).
        expected: usize,
        /// Columns of the submitted K matrix.
        k_cols: usize,
        /// Columns of the submitted V matrix.
        v_cols: usize,
    },
    /// K and V disagree on the number of history rows.
    RowMismatch {
        /// Rows of the submitted K matrix.
        k_rows: usize,
        /// Rows of the submitted V matrix.
        v_rows: usize,
    },
    /// The history has no rows — nothing to recompute.
    EmptyHistory,
    /// The sequence slot was retired (lost a quarantine/retire race).
    Retired {
        /// The rejected sequence id.
        seq: usize,
    },
    /// The sequence still holds cached rows — it was never quarantined,
    /// or another actor already refilled it.
    NotEmpty {
        /// The rejected sequence id.
        seq: usize,
        /// Rows currently cached for it.
        cached_rows: usize,
    },
    /// The sequence already has a pending prompt (double resubmit, or a
    /// concurrent re-enqueue won the race).
    AlreadyPending {
        /// The rejected sequence id.
        seq: usize,
    },
}

impl core::fmt::Display for ResubmitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            ResubmitError::WidthMismatch {
                expected,
                k_cols,
                v_cols,
            } => write!(
                f,
                "history width mismatch: engine kv_dim is {expected}, \
                 got K {k_cols} / V {v_cols} columns"
            ),
            ResubmitError::RowMismatch { k_rows, v_rows } => write!(
                f,
                "history row mismatch: K has {k_rows} rows, V has {v_rows}"
            ),
            ResubmitError::EmptyHistory => {
                write!(f, "resubmit needs at least one history row")
            }
            ResubmitError::Retired { seq } => {
                write!(f, "sequence {seq} is retired")
            }
            ResubmitError::NotEmpty { seq, cached_rows } => write!(
                f,
                "sequence {seq} still caches {cached_rows} rows; \
                 resubmit requires an empty (quarantined) sequence"
            ),
            ResubmitError::AlreadyPending { seq } => {
                write!(f, "sequence {seq} already has a pending prompt")
            }
        }
    }
}

impl std::error::Error for ResubmitError {}

/// The cache's **single** BF16 rounding helper:
/// [`fa_numerics::BF16::from_f64`], i.e. round-to-nearest-even staged
/// through `f32` (f64→f32 RNE, then f32→BF16 RNE — the same widening
/// hardware pipeline every conversion in this workspace models; for f64
/// inputs within 2⁻²⁵ of a BF16 tie this double rounding can differ from
/// a single direct f64→BF16 RNE, exactly as documented on the helper).
/// Every path that narrows a cached element — direct BF16 appends under
/// [`KvFormat::Bf16`] and in-place block demotion under
/// [`KvFormat::Mixed`] — goes through this one function, so the two
/// paths can never disagree on rounding again (one previously rounded
/// RNE while the other truncated mantissa bits; the regression tests pin
/// tie cases that distinguish the two).
#[inline]
pub fn round_bf16<T: Scalar>(x: T) -> BF16 {
    BF16::from_f64(x.to_f64())
}

/// Default bound on prompt tokens processed per pending prompt per
/// [`DecodeBatch::prefill_step`]: large enough to amortize the fork, small
/// enough that a decode step never waits on more than a block or two of
/// prefill work per admission.
pub const DEFAULT_PREFILL_CHUNK: usize = 32;

/// A sequence's handle to one arena block: which arena (native or BF16)
/// and the block index within it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockRef {
    /// Block index within its arena.
    pub index: usize,
    /// `true` when the block lives in the BF16 arena (demoted or
    /// direct-appended BF16 rows).
    pub bf16: bool,
}

/// Per-(block, kv head) reference checksums of a block's **stored**
/// rows — the localization structure the fault-tolerance layer walks
/// (see [`guard`]).
///
/// `ksum[g]` / `vsum[g]` fold each row's lane-order f64 key/value sums
/// in row-append order, which is exactly the order the audit recompute
/// folds them — so on a clean block the stored reference and a fresh
/// recomputation agree **bitwise**, and any storage bit flip (either
/// arena, either side) surfaces as a reference/recompute mismatch
/// pinned to this (block, kv head) without any tolerance question.
/// References are updated incrementally on append, rebuilt on demotion
/// (the stored rows changed format), and dropped with their block on
/// eviction or retirement.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockCheck {
    /// Per-kv-head lane-order sums of the block's stored key rows.
    pub ksum: Vec<f64>,
    /// Per-kv-head lane-order sums of the block's stored value rows.
    pub vsum: Vec<f64>,
}

impl BlockCheck {
    fn zeroed(heads: usize) -> Self {
        BlockCheck {
            ksum: vec![0.0; heads],
            vsum: vec![0.0; heads],
        }
    }
}

/// What one append did beyond storing the row: which logical position
/// ranges were demoted to BF16 (the engine recomputes those rows'
/// checksum inputs from the rounded values).
#[derive(Clone, Debug, Default)]
pub struct AppendOutcome {
    /// Logical position ranges whose rows were demoted by this append
    /// (empty on most appends; at most one block's worth per claim).
    pub demoted: Vec<core::ops::Range<usize>>,
}

/// Physical arrangement of a cache block's `block_rows × width` elements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvLayout {
    /// Token-major (`[token][head][dim]`): position `r` is one contiguous
    /// `width`-wide row. Reading one head's stream walks the arena at
    /// stride `width` — the PR-2 layout, kept as the layout-equivalence
    /// reference and for full-row consumers.
    TokenMajor,
    /// Head-major (`[head][token][dim]`): each head owns a contiguous
    /// `block_rows × head_dim` panel inside the block, so one (sequence,
    /// head) decode pass reads one pure contiguous K stream and one V
    /// stream — the layout the DRAM-bound decode sweep wants.
    HeadMajor,
}

/// One block's key/value views for a single head, tagged with the block's
/// storage format — the scoring kernels pick the matching dot path per
/// block (native [`ops::dot_then_scale_rows`] vs the mixed-operand
/// [`ops::dot_then_scale_rows_bf16`]).
pub enum HeadBlockData<'a, T> {
    /// The block stores the cache's native element format.
    Native {
        /// Key view for this head.
        k: &'a [T],
        /// Value view for this head.
        v: &'a [T],
    },
    /// The block was demoted to (or appended as) BF16.
    Demoted {
        /// Key view for this head, BF16-rounded.
        k: &'a [BF16],
        /// Value view for this head, BF16-rounded.
        v: &'a [BF16],
    },
}

/// One block's view of a single head's cached rows, yielded by
/// [`KvCache::head_stream`]: row `r` of the block lives at
/// `k[r·stride .. r·stride + head_dim]` (same addressing for `v`).
pub struct HeadBlock<'a, T> {
    /// Position of the block's first row within the sequence.
    pub first: usize,
    /// Valid (appended) rows in this block.
    pub rows: usize,
    /// Distance between consecutive rows in the views: `head_dim` for
    /// head-major blocks (one contiguous span), `width` for token-major.
    pub stride: usize,
    /// Format-tagged key/value views.
    pub data: HeadBlockData<'a, T>,
}

/// A paged key/value cache: rows of `num_heads · head_dim` elements stored
/// in fixed-size blocks carved out of one shared arena, with an
/// append-only block list per live sequence and a free list recycling the
/// blocks of retired sequences.
///
/// The cache's heads are **kv heads**: under a grouped topology
/// ([`HeadTopology`]) the engine constructs the cache with `kv_heads`
/// streams, so blocks are allocated, demoted, and evicted per kv head and
/// the per-sequence arena bound is proportional to `kv_heads` (not
/// `query_heads`) — query-head grouping lives entirely above the cache.
///
/// Blocks from different sequences interleave in the arena (whichever
/// sequence appends next claims the next block), so memory grows with
/// *live* tokens, not `sequences × longest` — and, with retirement, not
/// with total traffic history either.
///
/// # Example
///
/// ```
/// use fa_attention::batch::KvCache;
///
/// let mut cache = KvCache::<f64>::new(2, 16);
/// let s = cache.add_sequence();
/// cache.append(s, &[1.0, 2.0], &[3.0, 4.0]);
/// assert_eq!(cache.seq_len(s), 1);
/// assert_eq!(cache.key_row(s, 0), &[1.0, 2.0]);
/// assert_eq!(cache.value_row(s, 0), &[3.0, 4.0]);
/// ```
#[derive(Clone, Debug)]
pub struct KvCache<T> {
    heads: usize,
    head_dim: usize,
    width: usize,
    block_rows: usize,
    layout: KvLayout,
    format: KvFormat,
    eviction: EvictionPolicy,
    k_arena: Vec<T>,
    v_arena: Vec<T>,
    /// BF16 side arenas holding demoted (or direct-appended BF16) blocks;
    /// same block geometry as the native arenas.
    k_arena16: Vec<BF16>,
    v_arena16: Vec<BF16>,
    seqs: Vec<SeqBlocks>,
    /// Native-arena blocks owned by no live sequence, ready for reuse
    /// (LIFO).
    free_blocks: Vec<usize>,
    /// BF16-arena blocks ready for reuse.
    free_blocks16: Vec<usize>,
    /// Per-block reference counts for the native arena, index-parallel
    /// to its blocks. A block is owned by every live sequence listing it
    /// plus (for registered shared prefixes) the prefix registry; it
    /// returns to the free list only when the count reaches zero.
    /// Free-listed blocks sit at zero; unshared blocks at one.
    ref_counts: Vec<u32>,
    /// Per-block reference counts for the BF16 arena.
    ref_counts16: Vec<u32>,
    /// Sequence slots whose owner retired, ready for reuse.
    free_seqs: Vec<usize>,
    /// Total block claims served from either free list (observability).
    recycled_blocks: usize,
    /// Shared blocks copied before a divergent write (copy-on-write
    /// appends into a shared tail block; observability).
    cow_copies: usize,
    /// While a speculative window is open, blocks whose last reference
    /// dropped are parked here instead of the free lists, so their
    /// stored lanes survive for an exact rollback (a freed block on the
    /// free list could be re-claimed and overwritten mid-window). The
    /// window's resolve flushes still-unowned entries back to the free
    /// lists.
    deferred_frees: Vec<BlockRef>,
    /// Whether frees are currently deferred (a speculative window is
    /// open).
    defer_frees: bool,
}

#[derive(Clone, Debug)]
struct SeqBlocks {
    /// Retained arena blocks owned by this sequence, in position order.
    blocks: Vec<BlockRef>,
    /// Reference checksums parallel to `blocks` (one [`BlockCheck`] per
    /// retained block), maintained bitwise-consistent with the stored
    /// rows at every claim/append/demote/evict.
    checks: Vec<BlockCheck>,
    /// Logical position of `blocks[0]`'s first row — a multiple of
    /// `block_rows`, advanced past evicted leading blocks (0 under
    /// [`EvictionPolicy::RetainAll`]).
    start: usize,
    /// Logical sequence length, **including** the evicted prefix.
    len: usize,
    /// Rows demoted to BF16 so far (observability).
    demoted_rows: usize,
    /// Whether the slot's owner retired (blocks returned to the free
    /// lists; the slot awaits reuse by a later `add_sequence`).
    retired: bool,
}

impl<T: Scalar> KvCache<T> {
    /// Creates an empty token-major cache for full rows of `width`
    /// elements (a single "head" of dimension `width`), allocated in
    /// blocks of `block_rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(width: usize, block_rows: usize) -> Self {
        Self::with_layout(1, width, block_rows, KvLayout::TokenMajor)
    }

    /// Creates an empty head-major cache: `num_heads` heads of `head_dim`
    /// elements per row, each head's rows contiguous within a block.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new_head_major(num_heads: usize, head_dim: usize, block_rows: usize) -> Self {
        Self::with_layout(num_heads, head_dim, block_rows, KvLayout::HeadMajor)
    }

    /// Creates an empty cache with an explicit layout and the default
    /// policy (native format, retain-all).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn with_layout(
        num_heads: usize,
        head_dim: usize,
        block_rows: usize,
        layout: KvLayout,
    ) -> Self {
        Self::with_policy(
            num_heads,
            head_dim,
            block_rows,
            layout,
            KvFormat::F64,
            EvictionPolicy::RetainAll,
        )
    }

    /// Creates an empty cache with explicit format and eviction policies
    /// — the full policy-layer constructor.
    ///
    /// # Panics
    ///
    /// Panics if any geometry parameter is zero, or if a sliding-window
    /// eviction policy has `window_blocks == 0` (the block being filled
    /// must always be retained).
    pub fn with_policy(
        num_heads: usize,
        head_dim: usize,
        block_rows: usize,
        layout: KvLayout,
        format: KvFormat,
        eviction: EvictionPolicy,
    ) -> Self {
        assert!(num_heads > 0, "num_heads must be positive");
        assert!(head_dim > 0, "head_dim must be positive");
        assert!(block_rows > 0, "block_rows must be positive");
        if let EvictionPolicy::SlidingWindow { window_blocks } = eviction {
            assert!(window_blocks > 0, "window_blocks must be positive");
        }
        KvCache {
            heads: num_heads,
            head_dim,
            width: num_heads * head_dim,
            block_rows,
            layout,
            format,
            eviction,
            k_arena: Vec::new(),
            v_arena: Vec::new(),
            k_arena16: Vec::new(),
            v_arena16: Vec::new(),
            seqs: Vec::new(),
            free_blocks: Vec::new(),
            free_blocks16: Vec::new(),
            ref_counts: Vec::new(),
            ref_counts16: Vec::new(),
            free_seqs: Vec::new(),
            recycled_blocks: 0,
            cow_copies: 0,
            deferred_frees: Vec::new(),
            defer_frees: false,
        }
    }

    /// The block element-format policy.
    pub fn format(&self) -> KvFormat {
        self.format
    }

    /// The block retention policy.
    pub fn eviction(&self) -> EvictionPolicy {
        self.eviction
    }

    /// The eviction window in tokens, if bounded.
    pub fn eviction_window_tokens(&self) -> Option<usize> {
        self.eviction.window_tokens(self.block_rows)
    }

    /// Row width (elements per cached key/value row, all heads).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Per-head row width.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Number of (kv) heads the layout splits each row into.
    pub fn num_heads(&self) -> usize {
        self.heads
    }

    /// The physical block layout.
    pub fn layout(&self) -> KvLayout {
        self.layout
    }

    /// Rows per allocation block.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Number of sequence slots ever registered (live + retired).
    pub fn num_sequences(&self) -> usize {
        self.seqs.len()
    }

    /// Number of live (non-retired) sequences.
    pub fn live_sequences(&self) -> usize {
        self.seqs.len() - self.free_seqs.len()
    }

    /// Whether sequence slot `seq` is retired (awaiting reuse).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn is_retired(&self, seq: usize) -> bool {
        self.seqs[seq].retired
    }

    /// Total blocks carved from the **native** arena so far.
    pub fn allocated_blocks(&self) -> usize {
        self.k_arena.len() / (self.block_rows * self.width)
    }

    /// Total blocks carved from the **BF16** arena so far.
    pub fn allocated_blocks16(&self) -> usize {
        self.k_arena16.len() / (self.block_rows * self.width)
    }

    /// Native-arena blocks currently on the free list.
    pub fn free_block_list(&self) -> &[usize] {
        &self.free_blocks
    }

    /// BF16-arena blocks currently on the free list.
    pub fn free_block_list16(&self) -> &[usize] {
        &self.free_blocks16
    }

    /// The arena blocks retained by sequence `seq`, in position order
    /// (evicted leading blocks are gone; see
    /// [`first_retained`](Self::first_retained)).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn seq_blocks(&self, seq: usize) -> &[BlockRef] {
        &self.seqs[seq].blocks
    }

    /// Logical position of the oldest retained row of sequence `seq` —
    /// equivalently, the number of evicted leading rows (0 under
    /// [`EvictionPolicy::RetainAll`]).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired.
    pub fn first_retained(&self, seq: usize) -> usize {
        self.live(seq).start
    }

    /// Rows of sequence `seq` demoted to BF16 so far.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired.
    pub fn demoted_rows(&self, seq: usize) -> usize {
        self.live(seq).demoted_rows
    }

    /// Total block claims served from the free list instead of growing
    /// the arena — the block-recycling counter serving loops watch.
    pub fn recycled_blocks(&self) -> usize {
        self.recycled_blocks
    }

    /// Bytes of K/V storage held by owned arena blocks — native blocks
    /// at `size_of::<T>()` per lane, demoted/direct-BF16 blocks at
    /// `size_of::<BF16>()`, K and V both counted. This is the
    /// arena-pressure signal a serving frontend throttles against:
    /// demoting a victim halves its share (native f64 → BF16) without
    /// freeing blocks, and quarantine/retirement drops it to zero.
    /// Accounting is **physical**: a prefix block shared by `k` readers
    /// (plus the prefix registry) costs its bytes once, which is the
    /// memory win sharing exists for.
    pub fn live_kv_bytes(&self) -> usize {
        let block_lanes = self.block_rows * self.width;
        let native = self.allocated_blocks() - self.free_blocks.len();
        let bf16 = self.allocated_blocks16() - self.free_blocks16.len();
        2 * block_lanes * (native * core::mem::size_of::<T>() + bf16 * core::mem::size_of::<BF16>())
    }

    /// Registers a new (empty) sequence and returns its id, reusing a
    /// retired slot when one is available.
    pub fn add_sequence(&mut self) -> usize {
        let fresh = SeqBlocks {
            blocks: Vec::new(),
            checks: Vec::new(),
            start: 0,
            len: 0,
            demoted_rows: 0,
            retired: false,
        };
        if let Some(seq) = self.free_seqs.pop() {
            self.seqs[seq] = fresh;
            return seq;
        }
        self.seqs.push(fresh);
        self.seqs.len() - 1
    }

    /// Retires sequence `seq`: its blocks return to their arenas' free
    /// lists for reuse by later admissions, and the slot id becomes
    /// reusable by [`add_sequence`](Self::add_sequence). Accessing a
    /// retired sequence's rows panics until the slot is re-registered.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or already retired.
    pub fn retire_sequence(&mut self, seq: usize) {
        let state = &mut self.seqs[seq];
        assert!(!state.retired, "sequence {seq} already retired");
        let blocks = core::mem::take(&mut state.blocks);
        state.checks = Vec::new();
        state.start = 0;
        state.len = 0;
        state.retired = true;
        for blk in blocks {
            self.release_block(blk);
        }
        self.free_seqs.push(seq);
    }

    /// Returns every block of **live** sequence `seq` to the free lists
    /// and resets its cached history to empty, keeping the slot live (id,
    /// per-sequence engine state and ordering intact) — the cache half of
    /// [`DecodeBatch::quarantine`]: the damaged rows stop occupying
    /// arena space immediately, and the slot is ready to re-admit the
    /// same logical sequence through the chunked-prefill path. Returns
    /// the number of block references released (each block returns to
    /// its free list once its last owner — another reader of a shared
    /// prefix, or the prefix registry — also lets go).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired.
    pub fn release_blocks(&mut self, seq: usize) -> usize {
        let state = &mut self.seqs[seq];
        assert!(!state.retired, "sequence {seq} is retired");
        let blocks = core::mem::take(&mut state.blocks);
        state.checks = Vec::new();
        state.start = 0;
        state.len = 0;
        state.demoted_rows = 0;
        let freed = blocks.len();
        for blk in blocks {
            self.release_block(blk);
        }
        freed
    }

    /// Detaches live sequence `seq`'s blocks **without releasing their
    /// references** and retires the slot — the handoff that turns a
    /// freshly-prefilled sequence into a registry-owned shared prefix.
    /// Returns the block refs, their reference checksums, and the
    /// first-retained position (non-zero when a sliding window evicted
    /// leading prefix blocks during registration).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired.
    pub(crate) fn detach_into_registry(
        &mut self,
        seq: usize,
    ) -> (Vec<BlockRef>, Vec<BlockCheck>, usize) {
        let state = &mut self.seqs[seq];
        assert!(!state.retired, "sequence {seq} is retired");
        let blocks = core::mem::take(&mut state.blocks);
        let checks = core::mem::take(&mut state.checks);
        let start = state.start;
        state.start = 0;
        state.len = 0;
        state.demoted_rows = 0;
        state.retired = true;
        self.free_seqs.push(seq);
        (blocks, checks, start)
    }

    /// Attaches a registry-held shared prefix to **empty** live sequence
    /// `seq`: the sequence adopts the block refs (taking one new
    /// reference on each) and bitwise copies of their reference
    /// checksums, and its logical length jumps to `rows`. Appends past
    /// the prefix claim private blocks as usual; an append landing in
    /// the prefix's partially-filled tail block copies it first
    /// (copy-on-write in [`append_anchored`](Self::append_anchored)).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range, retired, or non-empty.
    pub(crate) fn attach_shared(
        &mut self,
        seq: usize,
        blocks: &[BlockRef],
        checks: &[BlockCheck],
        start: usize,
        rows: usize,
    ) {
        let state = self.live(seq);
        assert!(
            state.len == 0 && state.blocks.is_empty(),
            "sequence {seq} must be empty to attach a shared prefix"
        );
        for &blk in blocks {
            self.retain_block(blk);
        }
        let state = &mut self.seqs[seq];
        state.blocks = blocks.to_vec();
        state.checks = checks.to_vec();
        state.start = start;
        state.len = rows;
    }

    /// Reserves arena capacity for at least `additional_rows` more cached
    /// rows (across all sequences), so admission-controlled serving loops
    /// can keep block claims reallocation-free on the decode path.
    ///
    /// Blocks are claimed per sequence, so each live sequence may occupy
    /// one partially-filled block; the reservation accounts for that
    /// worst case (one extra block per live sequence) on top of the raw
    /// row count, minus blocks already waiting on the free list.
    pub fn reserve_rows(&mut self, additional_rows: usize) {
        // Appends land in the BF16 arena under the direct-BF16 format and
        // in the native arena otherwise (Mixed appends native, then
        // migrates — its BF16 demand is bounded by the same row count).
        let appends_bf16 = self.format.appends_bf16();
        let free_len = if appends_bf16 {
            self.free_blocks16.len()
        } else {
            self.free_blocks.len()
        };
        let blocks = (additional_rows.div_ceil(self.block_rows) + self.live_sequences())
            .saturating_sub(free_len);
        let elems = blocks * self.block_rows * self.width;
        if appends_bf16 {
            self.k_arena16.reserve(elems);
            self.v_arena16.reserve(elems);
        } else {
            self.k_arena.reserve(elems);
            self.v_arena.reserve(elems);
        }
    }

    fn live(&self, seq: usize) -> &SeqBlocks {
        let state = &self.seqs[seq];
        assert!(!state.retired, "sequence {seq} is retired");
        state
    }

    /// Number of cached positions for sequence `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired.
    pub fn seq_len(&self, seq: usize) -> usize {
        self.live(seq).len
    }

    /// Claims a block in the requested arena — from its free list when
    /// possible, growing the arena otherwise. The claimed block starts
    /// with a reference count of one (sole owner).
    fn claim_block(&mut self, bf16: bool) -> usize {
        let block_elems = self.block_rows * self.width;
        if bf16 {
            if let Some(freed) = self.free_blocks16.pop() {
                self.recycled_blocks += 1;
                debug_assert_eq!(self.ref_counts16[freed], 0, "free-listed block had owners");
                self.ref_counts16[freed] = 1;
                return freed;
            }
            let fresh = self.k_arena16.len() / block_elems;
            self.k_arena16
                .resize(self.k_arena16.len() + block_elems, BF16::ZERO);
            self.v_arena16
                .resize(self.v_arena16.len() + block_elems, BF16::ZERO);
            self.ref_counts16.push(1);
            fresh
        } else {
            if let Some(freed) = self.free_blocks.pop() {
                self.recycled_blocks += 1;
                debug_assert_eq!(self.ref_counts[freed], 0, "free-listed block had owners");
                self.ref_counts[freed] = 1;
                return freed;
            }
            let fresh = self.k_arena.len() / block_elems;
            self.k_arena
                .resize(self.k_arena.len() + block_elems, T::zero());
            self.v_arena
                .resize(self.v_arena.len() + block_elems, T::zero());
            self.ref_counts.push(1);
            fresh
        }
    }

    /// Drops one reference to `blk`, returning it to its arena's free
    /// list when the last owner lets go. Returns whether the block was
    /// actually freed (refcount reached zero).
    ///
    /// # Panics
    ///
    /// Panics if the block has no outstanding references (double free).
    pub(crate) fn release_block(&mut self, blk: BlockRef) -> bool {
        let rc = if blk.bf16 {
            &mut self.ref_counts16[blk.index]
        } else {
            &mut self.ref_counts[blk.index]
        };
        assert!(
            *rc > 0,
            "double free of {} block {}",
            if blk.bf16 { "bf16" } else { "native" },
            blk.index
        );
        *rc -= 1;
        if *rc > 0 {
            return false;
        }
        if self.defer_frees {
            // Speculative window open: keep the lanes intact for
            // rollback. The block is unreachable for claims (absent
            // from the free lists) until the window's resolve flushes.
            self.deferred_frees.push(blk);
        } else if blk.bf16 {
            self.free_blocks16.push(blk.index);
        } else {
            self.free_blocks.push(blk.index);
        }
        true
    }

    /// Starts deferring frees for an opening speculative window.
    pub(crate) fn begin_deferred_frees(&mut self) {
        debug_assert!(
            !self.defer_frees && self.deferred_frees.is_empty(),
            "speculative windows cannot nest"
        );
        self.defer_frees = true;
    }

    /// Re-takes a reference on `blk` during speculative rollback —
    /// unlike [`retain_block`](Self::retain_block) the count may be
    /// zero: a block demoted, evicted or CoW-replaced mid-window sits in
    /// `deferred_frees` with intact lanes, and restoring the snapshot
    /// resurrects the owner's reference.
    pub(crate) fn resurrect_block(&mut self, blk: BlockRef) {
        let rc = if blk.bf16 {
            &mut self.ref_counts16[blk.index]
        } else {
            &mut self.ref_counts[blk.index]
        };
        *rc += 1;
    }

    /// Ends the deferred-frees window: entries whose reference count is
    /// still zero (not resurrected by a rollback) return to their free
    /// lists.
    pub(crate) fn flush_deferred_frees(&mut self) {
        debug_assert!(self.defer_frees, "no deferred-frees window is open");
        self.defer_frees = false;
        let deferred = core::mem::take(&mut self.deferred_frees);
        for blk in deferred {
            let rc = if blk.bf16 {
                self.ref_counts16[blk.index]
            } else {
                self.ref_counts[blk.index]
            };
            if rc > 0 {
                continue;
            }
            if blk.bf16 {
                self.free_blocks16.push(blk.index);
            } else {
                self.free_blocks.push(blk.index);
            }
        }
    }

    /// Takes one additional reference on `blk` (a live owner is handing
    /// a copy of the handle to another owner).
    pub(crate) fn retain_block(&mut self, blk: BlockRef) {
        let rc = if blk.bf16 {
            &mut self.ref_counts16[blk.index]
        } else {
            &mut self.ref_counts[blk.index]
        };
        assert!(*rc > 0, "retaining a free block");
        *rc += 1;
    }

    /// Outstanding references on `blk` — zero for free-listed blocks,
    /// one for privately-owned blocks, more when a registered prefix (or
    /// several sequences sharing one) holds it.
    pub fn block_ref_count(&self, blk: BlockRef) -> u32 {
        if blk.bf16 {
            self.ref_counts16[blk.index]
        } else {
            self.ref_counts[blk.index]
        }
    }

    /// Shared blocks copied before a divergent write so far (the
    /// copy-on-write counter; see
    /// [`append_anchored`](Self::append_anchored)).
    pub fn cow_copies(&self) -> usize {
        self.cow_copies
    }

    /// Physical blocks currently owned by at least one live holder,
    /// across both arenas — with prefix sharing this counts each shared
    /// block **once**, which is exactly the arena-footprint win the
    /// sharing bench reports.
    pub fn live_unique_blocks(&self) -> usize {
        self.allocated_blocks() - self.free_blocks.len() + self.allocated_blocks16()
            - self.free_blocks16.len()
    }

    /// Demotes sequence `seq`'s full native blocks beyond the newest
    /// `burst` to BF16 **in place via the free-list arena**: each demoted
    /// block's rows are rounded (RNE, [`round_bf16`]) into a claimed BF16
    /// block, its native storage returns to the native free list for
    /// later admissions, and its [`BlockRef`] flips arenas. Returns the
    /// demoted logical position ranges so the engine can recompute those
    /// rows' checksum inputs from the rounded values.
    fn demote_beyond_burst(&mut self, seq: usize, burst: usize) -> Vec<core::ops::Range<usize>> {
        // The newest block is the freshly-claimed empty one; everything
        // before it is full.
        let full_blocks = self.seqs[seq].blocks.len() - 1;
        self.demote_blocks(seq, full_blocks.saturating_sub(burst))
    }

    /// Voluntary demotion under arena pressure — the soft tier of the
    /// serving frontend's preemption ladder: rounds `seq`'s
    /// completely-filled native blocks beyond the newest `burst` down to
    /// BF16 regardless of [`KvFormat`], through the same block-swap (and
    /// checksum rebuild) the `Mixed` append path uses. Safe at any point
    /// between steps: later passes simply read the rounded rows. Returns
    /// the demoted logical ranges so the engine can refresh those rows'
    /// `sumrow` inputs.
    pub(crate) fn demote_full_blocks(
        &mut self,
        seq: usize,
        burst: usize,
    ) -> Vec<core::ops::Range<usize>> {
        let state = self.live(seq);
        // Unlike the append path, the newest block may be partially
        // filled or exactly full; count only completely-filled blocks.
        let full_blocks = (state.len - state.start) / self.block_rows;
        self.demote_blocks(seq, full_blocks.saturating_sub(burst))
    }

    /// Demotes `seq`'s first `demote_until` retained blocks (those not
    /// already BF16) to the BF16 arena, returning the demoted ranges.
    fn demote_blocks(&mut self, seq: usize, demote_until: usize) -> Vec<core::ops::Range<usize>> {
        let block_elems = self.block_rows * self.width;
        let mut demoted = Vec::new();
        for i in 0..demote_until {
            if self.seqs[seq].blocks[i].bf16 {
                continue;
            }
            let native = self.seqs[seq].blocks[i].index;
            let b16 = self.claim_block(true);
            let (src, dst) = (native * block_elems, b16 * block_elems);
            for e in 0..block_elems {
                self.k_arena16[dst + e] = round_bf16(self.k_arena[src + e]);
                self.v_arena16[dst + e] = round_bf16(self.v_arena[src + e]);
            }
            // Demotion of a *shared* block is copy-on-write by
            // construction: this sequence walks away with a private
            // rounded copy while the native block stays alive for its
            // other readers (freed only when the last one lets go).
            self.release_block(BlockRef {
                index: native,
                bf16: false,
            });
            let demoted_ref = BlockRef {
                index: b16,
                bf16: true,
            };
            self.seqs[seq].blocks[i] = demoted_ref;
            // The stored rows changed format: rebuild the block's
            // reference checksum from the rounded storage.
            self.seqs[seq].checks[i] = self.recompute_block_check(demoted_ref, self.block_rows);
            let state = &mut self.seqs[seq];
            state.demoted_rows += self.block_rows;
            let first = state.start + i * self.block_rows;
            demoted.push(first..first + self.block_rows);
        }
        demoted
    }

    /// Returns leading blocks that fell entirely below `anchor`'s sliding
    /// window to their free lists. `anchor` is the oldest position whose
    /// attention pass may still run — the newest row during decode, the
    /// first query of an in-flight prefill chunk during chunked admission
    /// (later appends in a chunk must not evict rows the chunk's earlier
    /// queries still attend to). The block holding `anchor` is never
    /// evictable (`window_blocks ≥ 1`).
    fn evict_below_anchor(&mut self, seq: usize, anchor: usize) {
        let Some(window) = self.eviction.window_tokens(self.block_rows) else {
            return;
        };
        let lo = (anchor + 1).saturating_sub(window);
        while !self.seqs[seq].blocks.is_empty() && self.seqs[seq].start + self.block_rows <= lo {
            let blk = self.seqs[seq].blocks.remove(0);
            self.seqs[seq].checks.remove(0);
            self.seqs[seq].start += self.block_rows;
            self.release_block(blk);
        }
    }

    /// Catches eviction up to the newest position — called after a
    /// prefill chunk's passes complete, releasing rows the chunk's
    /// anchored appends had to retain.
    pub fn evict_to_newest(&mut self, seq: usize) {
        let len = self.live(seq).len;
        if len > 0 {
            self.evict_below_anchor(seq, len - 1);
        }
    }

    /// Appends one key/value row to sequence `seq`, claiming a block from
    /// the free list (or a fresh arena block) when the current one is
    /// full, then runs the policy maintenance the claim triggered:
    /// burst-exceeding blocks demote to BF16 ([`KvFormat::Mixed`]) and
    /// out-of-window leading blocks evict
    /// ([`EvictionPolicy::SlidingWindow`]).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired, or a slice length
    /// differs from the row width.
    pub fn append(&mut self, seq: usize, k: &[T], v: &[T]) -> AppendOutcome {
        let anchor = self.live(seq).len; // the new row's position
        self.append_anchored(seq, k, v, anchor)
    }

    /// [`append`](Self::append) with an explicit eviction anchor: the
    /// oldest position whose attention pass is still outstanding. Chunked
    /// prefill appends a whole chunk of rows before any of the chunk's
    /// queries score, so it anchors eviction at the chunk's first query —
    /// otherwise a window narrower than the chunk would evict rows those
    /// queries still attend to. Follow with
    /// [`evict_to_newest`](Self::evict_to_newest) once the passes ran.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired, or a slice length
    /// differs from the row width.
    pub fn append_anchored(
        &mut self,
        seq: usize,
        k: &[T],
        v: &[T],
        anchor: usize,
    ) -> AppendOutcome {
        assert_eq!(k.len(), self.width, "key row width mismatch");
        assert_eq!(v.len(), self.width, "value row width mismatch");
        let block_elems = self.block_rows * self.width;
        let state = self.live(seq);
        let local = state.len - state.start;
        let mut outcome = AppendOutcome::default();
        if local == state.blocks.len() * self.block_rows {
            // Current block full (or first append): claim the next block,
            // recycling a retired block when one is free.
            let bf16 = self.format.appends_bf16();
            let block = self.claim_block(bf16);
            let heads = self.heads;
            let state = &mut self.seqs[seq];
            state.blocks.push(BlockRef { index: block, bf16 });
            state.checks.push(BlockCheck::zeroed(heads));
            if let KvFormat::Mixed { burst_blocks } = self.format {
                outcome.demoted = self.demote_beyond_burst(seq, burst_blocks);
            }
        }
        // Copy-on-write: appending must not mutate a block other owners
        // (co-readers of a shared prefix, or the prefix registry) still
        // read. Claim a private block in the same arena, copy the stored
        // lanes bitwise — the block's reference checksum stays valid
        // because the bits are identical — and drop one reference on the
        // shared original.
        {
            let state = self.live(seq);
            let bi = (state.len - state.start) / self.block_rows;
            let target = state.blocks[bi];
            if self.block_ref_count(target) > 1 {
                let fresh = self.claim_block(target.bf16);
                let (src, dst) = (target.index * block_elems, fresh * block_elems);
                if target.bf16 {
                    self.k_arena16.copy_within(src..src + block_elems, dst);
                    self.v_arena16.copy_within(src..src + block_elems, dst);
                } else {
                    self.k_arena.copy_within(src..src + block_elems, dst);
                    self.v_arena.copy_within(src..src + block_elems, dst);
                }
                self.release_block(target);
                self.seqs[seq].blocks[bi] = BlockRef {
                    index: fresh,
                    bf16: target.bf16,
                };
                self.cow_copies += 1;
            }
        }
        let state = &self.seqs[seq];
        let local = state.len - state.start;
        let blk = state.blocks[local / self.block_rows];
        let r = local % self.block_rows;
        let base = blk.index * block_elems;
        let d = self.head_dim;
        // Lane offsets by layout: token-major rows are contiguous; the
        // head-major scatter happens once on append (cold path: one row
        // per step) so every later read of the head panels streams
        // contiguously (hot path: the whole history per step).
        let mut write_head = |h: usize, slot: usize| {
            if blk.bf16 {
                for (e, (&kx, &vx)) in k[h * d..(h + 1) * d]
                    .iter()
                    .zip(&v[h * d..(h + 1) * d])
                    .enumerate()
                {
                    self.k_arena16[slot + e] = round_bf16(kx);
                    self.v_arena16[slot + e] = round_bf16(vx);
                }
            } else {
                self.k_arena[slot..slot + d].copy_from_slice(&k[h * d..(h + 1) * d]);
                self.v_arena[slot..slot + d].copy_from_slice(&v[h * d..(h + 1) * d]);
            }
        };
        match self.layout {
            KvLayout::TokenMajor => {
                for h in 0..self.heads {
                    write_head(h, base + r * self.width + h * d);
                }
            }
            KvLayout::HeadMajor => {
                for h in 0..self.heads {
                    write_head(h, base + (h * self.block_rows + r) * d);
                }
            }
        }
        // Fold the stored row (post-rounding, for BF16 blocks) into the
        // block's reference checksum — per head, rows accumulate in
        // append order, matching `recompute_block_check`'s fold bitwise.
        let bi = local / self.block_rows;
        for h in 0..self.heads {
            let (ks, vs) = self.stored_lane_sums(blk, r, h);
            let check = &mut self.seqs[seq].checks[bi];
            check.ksum[h] += ks;
            check.vsum[h] += vs;
        }
        self.seqs[seq].len += 1;
        self.evict_below_anchor(seq, anchor);
        outcome
    }

    /// The block (and row-within-block) holding logical position `i` of
    /// sequence `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is beyond the cached length or below the retained
    /// window (evicted).
    fn block_of(&self, seq: usize, i: usize) -> (BlockRef, usize) {
        let state = self.live(seq);
        assert!(i < state.len, "position {i} out of {} cached", state.len);
        assert!(
            i >= state.start,
            "position {i} evicted (first retained: {})",
            state.start
        );
        let local = i - state.start;
        (
            state.blocks[local / self.block_rows],
            local % self.block_rows,
        )
    }

    /// Element offset of row `r`, head `head` within a block.
    #[inline]
    fn lane_offset(&self, r: usize, head: usize) -> usize {
        match self.layout {
            KvLayout::TokenMajor => r * self.width + head * self.head_dim,
            KvLayout::HeadMajor => (head * self.block_rows + r) * self.head_dim,
        }
    }

    /// The cached key row at position `i` of sequence `seq`, gathered
    /// across heads (a copy — with the head-major layout a full row is
    /// not contiguous). Demoted rows widen their BF16 values back into
    /// `T` (exact: BF16 ⊂ every wider format here).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired, or `i` is out of range
    /// or evicted.
    pub fn key_row(&self, seq: usize, i: usize) -> Vec<T> {
        self.gather_row(true, seq, i)
    }

    /// The cached value row at position `i` of sequence `seq` (a copy,
    /// like [`key_row`](Self::key_row)).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired, or `i` is out of range
    /// or evicted.
    pub fn value_row(&self, seq: usize, i: usize) -> Vec<T> {
        self.gather_row(false, seq, i)
    }

    fn gather_row(&self, keys: bool, seq: usize, i: usize) -> Vec<T> {
        let (blk, r) = self.block_of(seq, i);
        let base = blk.index * self.block_rows * self.width;
        let d = self.head_dim;
        let mut out = Vec::with_capacity(self.width);
        for h in 0..self.heads {
            let slot = base + self.lane_offset(r, h);
            if blk.bf16 {
                let arena = if keys {
                    &self.k_arena16
                } else {
                    &self.v_arena16
                };
                out.extend(
                    arena[slot..slot + d]
                        .iter()
                        .map(|x| T::from_f64(x.to_f64())),
                );
            } else {
                let arena = if keys { &self.k_arena } else { &self.v_arena };
                out.extend_from_slice(&arena[slot..slot + d]);
            }
        }
        out
    }

    /// The sum of the stored value lanes of `(seq, position, head)`,
    /// widened to f64 in lane order — the Eq. 4 `sumrow` input of the
    /// checksum lane, computed from **what the cache actually holds** so
    /// demoted/BF16-stored rows contribute their rounded values and the
    /// per-token verdict stays exact across format boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired, or `i` is out of range
    /// or evicted, or `head` is out of range.
    pub fn value_head_sum(&self, seq: usize, i: usize, head: usize) -> f64 {
        assert!(head < self.heads, "head {head} out of {}", self.heads);
        let (blk, r) = self.block_of(seq, i);
        self.stored_lane_sums(blk, r, head).1
    }

    /// Lane-order f64 sums of the **stored** key and value lanes of one
    /// (block, row, head) slot — the increment both the incremental
    /// reference-checksum update and the audit recompute fold, so the
    /// two can never disagree on summation order.
    fn stored_lane_sums(&self, blk: BlockRef, r: usize, head: usize) -> (f64, f64) {
        let slot = blk.index * self.block_rows * self.width + self.lane_offset(r, head);
        let d = self.head_dim;
        if blk.bf16 {
            (
                self.k_arena16[slot..slot + d]
                    .iter()
                    .map(|x| x.to_f64())
                    .sum(),
                self.v_arena16[slot..slot + d]
                    .iter()
                    .map(|x| x.to_f64())
                    .sum(),
            )
        } else {
            (
                self.k_arena[slot..slot + d]
                    .iter()
                    .map(|x| x.to_f64())
                    .sum(),
                self.v_arena[slot..slot + d]
                    .iter()
                    .map(|x| x.to_f64())
                    .sum(),
            )
        }
    }

    /// Recomputes one block's [`BlockCheck`] from its stored rows: per
    /// head, the first `rows` rows' lane sums fold in row order — the
    /// same order the incremental append-path update used, so a clean
    /// block's recomputation equals its stored reference **bitwise**.
    fn recompute_block_check(&self, blk: BlockRef, rows: usize) -> BlockCheck {
        let mut check = BlockCheck::zeroed(self.heads);
        for h in 0..self.heads {
            for r in 0..rows {
                let (ks, vs) = self.stored_lane_sums(blk, r, h);
                check.ksum[h] += ks;
                check.vsum[h] += vs;
            }
        }
        check
    }

    /// The reference checksums of sequence `seq`'s retained blocks,
    /// parallel to [`seq_blocks`](Self::seq_blocks).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired.
    pub fn block_checks(&self, seq: usize) -> &[BlockCheck] {
        &self.live(seq).checks
    }

    /// Iterates sequence `seq` block by block as
    /// `(first_position, key_rows, value_rows)` — contiguous row-major
    /// full-width spans of up to [`Self::block_rows`] rows, in position
    /// order. Only meaningful for the token-major layout, where full rows
    /// are contiguous; per-head streaming (either layout) goes through
    /// [`head_stream`](Self::head_stream).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired, or the layout is
    /// head-major.
    pub fn blocks(&self, seq: usize) -> impl Iterator<Item = (usize, &[T], &[T])> + '_ {
        assert_eq!(
            self.layout,
            KvLayout::TokenMajor,
            "blocks() requires the token-major layout"
        );
        let state = self.live(seq);
        let block_elems = self.block_rows * self.width;
        state.blocks.iter().enumerate().map(move |(bi, &blk)| {
            assert!(
                !blk.bf16,
                "blocks() requires native blocks; mixed-format caches stream \
                 through head_stream"
            );
            let first = state.start + bi * self.block_rows;
            let rows = (state.len - first).min(self.block_rows);
            let base = blk.index * block_elems;
            (
                first,
                &self.k_arena[base..base + rows * self.width],
                &self.v_arena[base..base + rows * self.width],
            )
        })
    }

    /// Streams one head of sequence `seq` block by block — the decode
    /// kernels' access path. With the head-major layout every yielded
    /// view is one pure contiguous span (`stride == head_dim`); with
    /// token-major the views stride at `width`. Each block carries its
    /// storage format ([`HeadBlockData`]); evicted leading blocks are
    /// simply absent (`first` starts at
    /// [`first_retained`](Self::first_retained)).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired, or `head` is out of
    /// range.
    pub fn head_stream(&self, seq: usize, head: usize) -> impl Iterator<Item = HeadBlock<'_, T>> {
        assert!(head < self.heads, "head {head} out of {}", self.heads);
        let state = self.live(seq);
        let d = self.head_dim;
        let block_elems = self.block_rows * self.width;
        let (off, stride) = match self.layout {
            KvLayout::TokenMajor => (head * d, self.width),
            KvLayout::HeadMajor => (head * self.block_rows * d, d),
        };
        state.blocks.iter().enumerate().map(move |(bi, &blk)| {
            let first = state.start + bi * self.block_rows;
            let rows = (state.len - first).min(self.block_rows);
            let base = blk.index * block_elems + off;
            let span = (rows - 1) * stride + d;
            let data = if blk.bf16 {
                HeadBlockData::Demoted {
                    k: &self.k_arena16[base..base + span],
                    v: &self.v_arena16[base..base + span],
                }
            } else {
                HeadBlockData::Native {
                    k: &self.k_arena[base..base + span],
                    v: &self.v_arena[base..base + span],
                }
            };
            HeadBlock {
                first,
                rows,
                stride,
                data,
            }
        })
    }

    /// One element of [`head_stream`](Self::head_stream) by retained
    /// block index — the shared-block score builder's random-access view
    /// (identical slicing, so scoring through it is scoring the same
    /// lanes).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired, or `bi`/`head` is out
    /// of range.
    pub(crate) fn head_block(&self, seq: usize, bi: usize, head: usize) -> HeadBlock<'_, T> {
        assert!(head < self.heads, "head {head} out of {}", self.heads);
        let state = self.live(seq);
        let d = self.head_dim;
        let block_elems = self.block_rows * self.width;
        let (off, stride) = match self.layout {
            KvLayout::TokenMajor => (head * d, self.width),
            KvLayout::HeadMajor => (head * self.block_rows * d, d),
        };
        let blk = state.blocks[bi];
        let first = state.start + bi * self.block_rows;
        let rows = (state.len - first).min(self.block_rows);
        let base = blk.index * block_elems + off;
        let span = (rows - 1) * stride + d;
        let data = if blk.bf16 {
            HeadBlockData::Demoted {
                k: &self.k_arena16[base..base + span],
                v: &self.v_arena16[base..base + span],
            }
        } else {
            HeadBlockData::Native {
                k: &self.k_arena[base..base + span],
                v: &self.v_arena[base..base + span],
            }
        };
        HeadBlock {
            first,
            rows,
            stride,
            data,
        }
    }
}

/// One sequence's output from a [`DecodeBatch::step_all`] call.
#[derive(Clone, Debug)]
pub struct DecodeStepOutput {
    /// The normalized attention row for the new token, packed
    /// `query_heads · head_dim` wide (head-major, like the inputs).
    pub output: Vec<f64>,
    /// Predicted checksum: `Σ_h c_h/ℓ_h` over the sequence's **query**
    /// heads (Alg. 3 line 10, summed across heads; grouped heads share
    /// their kv head's `sumrow` inputs but keep per-head verdict terms).
    pub predicted: f64,
    /// Actual checksum: the sum of all produced output lanes.
    pub actual: f64,
}

impl DecodeStepOutput {
    /// `predicted − actual` — tiny in fault-free f64 decode, large when a
    /// datapath fault corrupted this token's computation.
    pub fn residual(&self) -> f64 {
        self.predicted - self.actual
    }
}

/// A checked, admitted prompt: what [`DecodeBatch::admit_all`] returns
/// for each prompt after running it through the batched fused-checksum
/// prefill.
#[derive(Clone, Debug)]
pub struct AdmittedPrompt {
    /// The sequence id the prompt was admitted as (may reuse a retired
    /// slot).
    pub seq: usize,
    /// The prompt's causal self-attention output (`N × q_dim`,
    /// f64 like the decode outputs).
    pub output: Matrix<f64>,
    /// Predicted prompt checksum: per head, the Kahan-accumulated Alg. 3
    /// line 11 sum over the prompt's queries — bit-identical to
    /// `flash_abft::flash2_with_checksum` on that head — summed across
    /// heads in head order.
    pub predicted: f64,
    /// Actual prompt checksum: sum of all produced output elements,
    /// Kahan-accumulated per head in (query, lane) order.
    pub actual: f64,
}

impl AdmittedPrompt {
    /// `predicted − actual` for the prompt pass.
    pub fn residual(&self) -> f64 {
        self.predicted - self.actual
    }
}

/// Unnormalized per-(sequence, head) state produced by one fused pass:
/// `d` output lanes plus the checksum lane, and the softmax terminal.
struct HeadState {
    /// Lanes `0..d` = output accumulator, lane `d` = checksum (only
    /// meaningful on checked passes).
    lanes: Vec<f64>,
    sum_exp: f64,
}

/// A batched, checked, KV-cache-backed decode engine over
/// `num_sequences × num_heads` independent attention streams, with
/// continuous batching: sequences are admitted (checked batched prefill)
/// and retired (block recycling) mid-flight while the rest of the batch
/// keeps decoding.
///
/// # Example
///
/// ```
/// use fa_attention::batch::DecodeBatch;
/// use fa_attention::multihead::MultiHeadConfig;
/// use fa_attention::AttentionConfig;
/// use fa_tensor::Matrix;
///
/// let cfg = MultiHeadConfig::new(2, AttentionConfig::new(2));
/// let mut batch = DecodeBatch::<f64>::new(cfg, 16);
/// let s0 = batch.add_sequence();
/// let q = Matrix::from_rows(&[&[1.0, 0.0, 0.0, 1.0]]);
/// let k = Matrix::from_rows(&[&[0.5, 0.5, 0.5, 0.5]]);
/// let v = Matrix::from_rows(&[&[2.0, 4.0, 6.0, 8.0]]);
/// let out = batch.step_all(&[s0], &q, &k, &v);
/// // First token: softmax weight 1 per head, output == v.
/// assert_eq!(out[0].output, vec![2.0, 4.0, 6.0, 8.0]);
/// assert!(out[0].residual().abs() < 1e-12);
/// ```
/// A prompt enqueued for chunked admission: the staged Q/K/V, the chunk
/// cursor, and the output/checksum state accumulated chunk by chunk.
#[derive(Clone, Debug)]
struct PendingPrompt<T: Scalar> {
    q: Matrix<T>,
    k: Matrix<T>,
    v: Matrix<T>,
    /// Next prompt row to cache and score (rows `0..next` are done).
    next: usize,
    /// Prompt output rows, filled as chunks complete.
    output: Matrix<f64>,
    /// Running prompt checksum totals (per-chunk Kahan folds).
    predicted: f64,
    actual: f64,
    /// A quarantine requeue: re-cache the K/V history chunk by chunk
    /// (appends, checksums, demotion/eviction maintenance) but skip the
    /// scoring passes — the outputs were already delivered before the
    /// damage, only the cache state needs recomputing. `q` and `output`
    /// are empty and no [`AdmittedPrompt`] is parked on completion.
    cache_only: bool,
    /// Absolute position of prompt row 0 — non-zero only for suffixes
    /// enqueued behind a shared prefix
    /// ([`DecodeBatch::enqueue_shared`]), whose cached history already
    /// holds `base` prefix rows when the first chunk runs.
    base: usize,
}

/// Everything the engine tracks for one sequence slot beyond the cache
/// blocks themselves: checksum inputs and totals, coverage counters, and
/// the chunked-admission queue. One `SequenceState` per slot replaces the
/// PR-3 parallel vectors, so policy state (pending prompts, demotion
/// bookkeeping) has one home.
#[derive(Clone, Debug)]
struct SequenceState<T: Scalar> {
    /// `sumrow_g(v_i)` for every cached position `i` and **kv head** `g`,
    /// stored `i·kv_heads + g` — the Eq. 4 vector the checksum lane
    /// consumes, shared by every query head of group `g` (the per-group
    /// `sumrow(V)` saving GQA gets for free), computed
    /// from the **stored** row (so BF16-rounded rows contribute their
    /// rounded values) and recomputed for demoted ranges. Entries for
    /// evicted positions are retained but never read again (masked).
    /// Cleared on retire and rebuilt on slot reuse, so recycled blocks
    /// never leak a previous owner's checksum inputs.
    sumrows: Vec<f64>,
    /// Running (predicted, actual) totals over the admitted prompt and
    /// all checked decoded tokens — the session-level Alg. 3 line 11
    /// state. Survives block recycling (it lives outside the arena) and
    /// is reset when a retired slot is reused.
    totals: (f64, f64),
    /// Prompt tokens cached so far (admitted, enqueued-and-chunk-
    /// processed, or prefilled).
    prompt_tokens: usize,
    /// Tokens decoded through [`DecodeBatch::step_all`]
    /// (checksum-covered).
    checked_steps: usize,
    /// Tokens decoded through [`DecodeBatch::step_all_unchecked`], which
    /// the session verdict does **not** cover.
    unchecked_steps: usize,
    /// Prompt chunks still waiting for prefill passes.
    pending: Option<PendingPrompt<T>>,
    /// The completed admission, parked until
    /// [`DecodeBatch::take_admitted`] collects it.
    ready: Option<AdmittedPrompt>,
    /// Original (pre-rounding) K/V rows per cached position, flattened
    /// `kv_dim` wide — the block-granular recovery source (see
    /// [`guard`]). Empty unless the engine's recovery log is enabled;
    /// row `i` of the log holds absolute position `log_start + i`
    /// (truncation under a [`recovery_log_budget`](DecodeBatch::set_recovery_log_budget)
    /// drops leading rows once scrub-verified or evicted). Cleared on
    /// retire so recycled slots never replay a previous owner's rows.
    log_k: Vec<T>,
    log_v: Vec<T>,
    /// Absolute position of the log's first retained row (0 until budget
    /// truncation drops leading rows).
    log_start: usize,
    /// Positions `< log_clean_until` passed a bitwise scrub/audit verdict
    /// at some point after their last append — their log rows are safe to
    /// drop under the budget (the stored blocks were proven faithful, so
    /// the log is no longer their only witness).
    log_clean_until: usize,
}

impl<T: Scalar> SequenceState<T> {
    fn fresh() -> Self {
        SequenceState {
            sumrows: Vec::new(),
            totals: (0.0, 0.0),
            prompt_tokens: 0,
            checked_steps: 0,
            unchecked_steps: 0,
            pending: None,
            ready: None,
            log_k: Vec::new(),
            log_v: Vec::new(),
            log_start: 0,
            log_clean_until: 0,
        }
    }
}

/// A registered shared prefix: one prefilled copy of a common prompt
/// prefix (a system prompt) whose cache blocks, reference checksums,
/// `sumrow(V)` inputs, scored outputs and prompt-checksum totals serve
/// **every** sequence enqueued behind it — the registry holds one block
/// reference per block so the storage outlives any individual reader.
#[derive(Clone, Debug)]
struct SharedPrefix<T: Scalar> {
    /// The prefix's cache blocks (registry-owned references).
    blocks: Vec<BlockRef>,
    /// Reference checksums parallel to `blocks`; readers adopt bitwise
    /// copies on attach.
    checks: Vec<BlockCheck>,
    /// First retained position (non-zero when a sliding window evicted
    /// leading prefix blocks during registration).
    start: usize,
    /// Prefix length in tokens.
    rows: usize,
    /// Per-(position, kv head) `sumrow(V)` inputs for positions
    /// `0..rows` — computed once at registration, cloned to every
    /// reader: one `sumrow(V)` serves all of them.
    sumrows: Vec<f64>,
    /// Original (pre-rounding) prefix K/V rows — the recovery-log seed
    /// for readers with logging enabled.
    k: Matrix<T>,
    v: Matrix<T>,
    /// The prefix prompt's scored outputs (`rows × q_dim`).
    output: Matrix<f64>,
    /// Prompt checksum totals over the prefix (per-chunk Kahan folds) —
    /// seeded into every reader's running totals.
    predicted: f64,
    actual: f64,
    /// FNV-1a hash of the prefix K/V token bits (registry lookup key).
    token_hash: u64,
    /// Sequences admitted behind this prefix so far (observability).
    readers: usize,
}

/// Sort key of one tile candidate: `(physical block index, stored as
/// BF16, first visible row, one-past-last visible row)`. Two readers
/// with equal keys score the identical K rows, so their entries fuse
/// into one tile.
type TileKey = (usize, bool, usize, usize);

/// One (sequence, kv head) pass's view of the step's shared scores:
/// its `index` row (per retained block `(r0, r1, offset)`) plus the
/// score arena the offsets point into.
type SharedTiles<'a> = (&'a [(usize, usize, usize)], &'a [f64]);

/// The decode step's shared-block score table plus every buffer needed
/// to build it. Filled by [`DecodeBatch::build_shared_scores`] before
/// the pass fork; the fused pass consumes the slices instead of
/// re-sweeping the K panel once per reader. The struct lives on the
/// engine so capacities persist across steps — the table is rebuilt
/// every decode step, and per-step allocation (score arena, index rows)
/// plus per-entry hashing measurably outweighed the batched sweep's
/// bandwidth win before this was amortized. Lookups on both sides are
/// plain array indexing. Contents are only meaningful for the step that
/// built them (`active`).
struct SharedScratch<T> {
    /// One entry per (reader, shared block): key
    /// `(block index, bf16, r0, r1)` identifies the physical block and
    /// visible row range, payload is `(batch slot, retained-block
    /// index)`. Sorted, so runs of equal key are tiles.
    entries: Vec<(TileKey, u32, u32)>,
    /// Row `batch_slot · kv_heads + kv_head`, indexed by retained-block
    /// index `bi`: `(r0, r1, offset)` gives the visible row range scored
    /// and the start of `group_size · (r1 − r0)` member-major score
    /// entries in `scores`. Offset [`SHARED_NONE`] (or a row too short
    /// to contain `bi`) means the block has no tile and keeps the GEMV
    /// path.
    index: Vec<Vec<(usize, usize, usize)>>,
    /// Tile arena: `used` marks this step's live prefix; the tail is
    /// stale capacity from earlier (larger) steps, never referenced
    /// because offsets in `index` stay below `used`.
    scores: Vec<f64>,
    used: usize,
    /// Batched K-panel sweeps this step (one per shared tile).
    tiles: u64,
    /// Whether this step produced any tiles.
    active: bool,
    /// Per-kv-head packed query panels, valid for `packed_readers` when
    /// the matching `_ok` flag is set. In the hot case every tile shares
    /// one reader set — all of a shared prefix's blocks — so packing
    /// happens once per step per head, not once per block.
    packed: Vec<Vec<T>>,
    packed_wide: Vec<Vec<f64>>,
    packed_ok: Vec<bool>,
    packed_wide_ok: Vec<bool>,
    packed_readers: Vec<u32>,
}

impl<T> Default for SharedScratch<T> {
    fn default() -> Self {
        Self {
            entries: Vec::new(),
            index: Vec::new(),
            scores: Vec::new(),
            used: 0,
            tiles: 0,
            active: false,
            packed: Vec::new(),
            packed_wide: Vec::new(),
            packed_ok: Vec::new(),
            packed_wide_ok: Vec::new(),
            packed_readers: Vec::new(),
        }
    }
}

/// Cloning an engine (the golden-twin pattern) starts the twin with
/// cold scratch instead of duplicating up to a megabyte of step-local
/// buffers that the next decode step would overwrite anyway.
impl<T> Clone for SharedScratch<T> {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl<T> std::fmt::Debug for SharedScratch<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedScratch")
            .field("tiles", &self.tiles)
            .field("active", &self.active)
            .finish_non_exhaustive()
    }
}

/// Sentinel offset marking "no shared tile for this block" in
/// [`SharedScratch::index`].
const SHARED_NONE: usize = usize::MAX;

#[derive(Clone, Debug)]
pub struct DecodeBatch<T: Scalar> {
    cfg: HeadTopology,
    cache: KvCache<T>,
    /// One state record per sequence slot (live or retired).
    seqs: Vec<SequenceState<T>>,
    /// Maximum prompt tokens processed per pending prompt per
    /// [`prefill_step`](Self::prefill_step) (and hence per
    /// [`step_all`](Self::step_all)).
    prefill_chunk: usize,
    /// The effective sliding mask in tokens: the tighter of the head
    /// config's window and the eviction policy's window. `None` = full
    /// causal history.
    mask_window: Option<usize>,
    /// Whether appends retain each sequence's original rows for
    /// block-granular recovery (see [`guard`]). Off by default: serving
    /// without a recovery contract should not pay the log's memory.
    recovery_log: bool,
    /// Per-sequence recovery-log row budget: after truncation
    /// opportunities (scrub verdicts, eviction) the log retains at most
    /// this many rows beyond any still-unverified suffix. `None` =
    /// unbounded (the PR-6 behaviour).
    log_budget: Option<usize>,
    /// Background scrub policy; `None` disables
    /// [`scrub_step`](Self::scrub_step).
    scrub: Option<ScrubPolicy>,
    /// Round-robin scrub cursor: next sequence slot to audit.
    scrub_seq: usize,
    /// Round-robin scrub cursor: next retained block index within
    /// `scrub_seq`.
    scrub_block: usize,
    /// Total blocks audited by the scrubber (bandwidth accounting).
    scrubbed_blocks: u64,
    /// Registered shared prefixes by id (`None` = released).
    prefixes: Vec<Option<SharedPrefix<T>>>,
    /// Shared-block score tiles computed across all decode steps: each
    /// tile is one K-panel sweep that served ≥ 2 readers
    /// (observability; the k-GEMV path it replaces would have swept
    /// once per reader).
    shared_tiles: u64,
    /// Whether decode steps batch the scoring of blocks shared by
    /// several stepping sequences (one K-panel sweep for all readers).
    /// On by default; the bench toggles it off to measure the k-GEMV
    /// baseline. Off or on, outputs are bit-identical — the per-(query,
    /// row) dot kernel is the same.
    shared_scoring: bool,
    /// Step-local shared-score table and its persistent build buffers
    /// (see [`SharedScratch`]).
    shared_scratch: SharedScratch<T>,
    /// The open speculative decode window, if any (see [`spec`]): the
    /// per-sequence rollback snapshots plus the window's scored-token
    /// checksums, parked between [`speculate`](Self::speculate) and
    /// [`resolve_speculation`](Self::resolve_speculation). At most one
    /// window is open at a time, and every other mutating entry point
    /// asserts it is closed.
    spec_window: Option<spec::SpecWindow<T>>,
}

impl<T: Scalar> DecodeBatch<T> {
    /// Creates an empty engine with the given head topology and KV-cache
    /// block size (rows per block), using the head-major cache layout.
    /// Accepts anything convertible into a [`HeadTopology`] — a topology
    /// itself, a [`MultiHeadConfig`](crate::multihead::MultiHeadConfig)
    /// (the `kv_heads == query_heads` point), or a
    /// [`GqaConfig`](crate::gqa::GqaConfig).
    ///
    /// # Panics
    ///
    /// Panics if `block_rows == 0`.
    pub fn new(cfg: impl Into<HeadTopology>, block_rows: usize) -> Self {
        Self::with_layout(cfg, block_rows, KvLayout::HeadMajor)
    }

    /// Like [`new`](Self::new) but with the token-major cache layout —
    /// the PR-2 arrangement, kept as the layout-equivalence reference.
    ///
    /// # Panics
    ///
    /// Panics if `block_rows == 0`.
    pub fn new_token_major(cfg: impl Into<HeadTopology>, block_rows: usize) -> Self {
        Self::with_layout(cfg, block_rows, KvLayout::TokenMajor)
    }

    /// Creates an empty engine with an explicit cache layout and the
    /// default policy (native format, retain-all) — the PR-3 golden path.
    ///
    /// # Panics
    ///
    /// Panics if `block_rows == 0`.
    pub fn with_layout(cfg: impl Into<HeadTopology>, block_rows: usize, layout: KvLayout) -> Self {
        Self::with_policy(
            cfg,
            block_rows,
            layout,
            KvFormat::F64,
            EvictionPolicy::RetainAll,
        )
    }

    /// Creates an empty engine with explicit cache format and eviction
    /// policies — the full policy-layer constructor. With
    /// `KvFormat::F64` + `EvictionPolicy::RetainAll` the engine is
    /// bit-identical to the PR-3 golden path at every layout and block
    /// size (property-tested), and with `kv_heads == query_heads` it is
    /// bit-identical to the PR-4 per-query-head engine across **all**
    /// policy combinations.
    ///
    /// The cache is allocated per **kv head**: each block holds
    /// `kv_heads` contiguous panels, so a grouped topology's arena bound
    /// (and its streamed bytes per decode step) is proportional to
    /// `kv_heads`, not `query_heads`.
    ///
    /// # Panics
    ///
    /// Panics if `block_rows == 0`, or a sliding-window eviction policy
    /// has `window_blocks == 0`.
    pub fn with_policy(
        cfg: impl Into<HeadTopology>,
        block_rows: usize,
        layout: KvLayout,
        format: KvFormat,
        eviction: EvictionPolicy,
    ) -> Self {
        let cfg = cfg.into();
        // Fold the eviction window into the head mask: evicted positions
        // must be exactly the ones `visible_range` already excludes.
        let mask_window = match eviction.window_tokens(block_rows) {
            Some(w) => cfg.head.with_window_at_most(w).sliding_window(),
            None => cfg.head.sliding_window(),
        };
        DecodeBatch {
            cfg,
            cache: KvCache::with_policy(
                cfg.kv_heads,
                cfg.head.head_dim(),
                block_rows,
                layout,
                format,
                eviction,
            ),
            seqs: Vec::new(),
            prefill_chunk: DEFAULT_PREFILL_CHUNK,
            mask_window,
            recovery_log: false,
            log_budget: None,
            scrub: None,
            scrub_seq: 0,
            scrub_block: 0,
            scrubbed_blocks: 0,
            prefixes: Vec::new(),
            shared_scoring: true,
            shared_tiles: 0,
            shared_scratch: SharedScratch::default(),
            spec_window: None,
        }
    }

    /// Panics unless no speculative window is open — every mutating
    /// entry point other than the speculative pair calls this, so a
    /// window can only be closed by
    /// [`resolve_speculation`](Self::resolve_speculation) and the
    /// rollback invariants cannot be invalidated mid-window.
    fn assert_no_window(&self) {
        assert!(
            self.spec_window.is_none(),
            "a speculative window is open; resolve_speculation must run first"
        );
    }

    /// The head topology (query/kv head counts and the per-head kernel
    /// config).
    pub fn config(&self) -> &HeadTopology {
        &self.cfg
    }

    /// Maximum prompt tokens each pending prompt advances per
    /// [`prefill_step`](Self::prefill_step).
    pub fn prefill_chunk(&self) -> usize {
        self.prefill_chunk
    }

    /// Overrides the prefill chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `tokens == 0`.
    pub fn set_prefill_chunk(&mut self, tokens: usize) {
        assert!(tokens > 0, "prefill chunk must be positive");
        self.prefill_chunk = tokens;
    }

    /// Whether decode steps score blocks shared by several stepping
    /// sequences through one batched K-panel sweep.
    pub fn shared_scoring(&self) -> bool {
        self.shared_scoring
    }

    /// Toggles the shared-block batched scoring path. Outputs are
    /// bit-identical either way (same per-(query, row) dot kernel);
    /// turning it off forces the k-GEMV baseline the sharing bench
    /// compares against.
    pub fn set_shared_scoring(&mut self, on: bool) {
        self.shared_scoring = on;
    }

    /// Shared-block score tiles computed so far: each tile is one
    /// batched K-panel sweep that served at least two readers in the
    /// same decode step (the k-GEMV path would have swept the panel
    /// once per reader). Zero means the fast path never engaged.
    pub fn shared_score_tiles(&self) -> u64 {
        self.shared_tiles
    }

    /// Read-only view of the paged cache (serving metrics: arena size,
    /// free list, recycled-block counter).
    pub fn cache(&self) -> &KvCache<T> {
        &self.cache
    }

    /// Number of sequence slots ever registered (live + retired).
    pub fn num_sequences(&self) -> usize {
        self.cache.num_sequences()
    }

    /// Number of live (non-retired) sequences.
    pub fn live_sequences(&self) -> usize {
        self.cache.live_sequences()
    }

    /// Whether sequence slot `seq` is retired.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn is_retired(&self, seq: usize) -> bool {
        self.cache.is_retired(seq)
    }

    /// Number of cached positions for sequence `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired.
    pub fn seq_len(&self, seq: usize) -> usize {
        self.cache.seq_len(seq)
    }

    /// Registers a new (empty) sequence and returns its id, reusing a
    /// retired slot (and, transitively, its freed cache blocks) when one
    /// is available. The slot's [`SequenceState`] is reset.
    pub fn add_sequence(&mut self) -> usize {
        let seq = self.cache.add_sequence();
        if seq == self.seqs.len() {
            self.seqs.push(SequenceState::fresh());
        } else {
            self.seqs[seq] = SequenceState::fresh();
        }
        seq
    }

    /// Retires sequence `seq`: its cache blocks return to the free lists
    /// for later admissions, its sumrow staging and any pending prompt
    /// chunks are dropped, and the slot becomes reusable. The running
    /// totals stay readable (for a final verdict) until the slot is
    /// reused by [`add_sequence`](Self::add_sequence) /
    /// [`admit`](Self::admit) / [`enqueue`](Self::enqueue).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or already retired.
    pub fn retire(&mut self, seq: usize) {
        self.assert_no_window();
        self.cache.retire_sequence(seq);
        let state = &mut self.seqs[seq];
        state.sumrows = Vec::new();
        state.pending = None;
        state.ready = None;
        state.log_k = Vec::new();
        state.log_v = Vec::new();
        state.log_start = 0;
        state.log_clean_until = 0;
    }

    /// Pre-fills sequence `seq` from prompt K/V matrices
    /// (`N × kv_dim`) **without computing attention** — for prompts
    /// whose pass was checked elsewhere. [`admit`](Self::admit) is the
    /// checked admission path.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or out-of-range/retired `seq`.
    pub fn prefill(&mut self, seq: usize, k: &Matrix<T>, v: &Matrix<T>) {
        self.assert_no_window();
        assert_eq!(k.cols(), self.cfg.kv_dim(), "K width mismatch");
        assert_eq!(v.cols(), self.cfg.kv_dim(), "V width mismatch");
        assert_eq!(k.rows(), v.rows(), "K/V row count mismatch");
        for i in 0..k.rows() {
            self.append_token(seq, k.row(i), v.row(i));
        }
        self.seqs[seq].prompt_tokens += k.rows();
    }

    /// Reserves KV-cache capacity for at least `additional_rows` more
    /// cached rows across all sequences (see [`KvCache::reserve_rows`]).
    pub fn reserve_rows(&mut self, additional_rows: usize) {
        self.cache.reserve_rows(additional_rows);
    }

    /// Running `Σ predicted − Σ actual` over the admitted prompt and
    /// every token decoded for `seq` through [`step_all`](Self::step_all)
    /// — the sequence-level ABFT verdict. Tokens decoded through
    /// [`step_all_unchecked`](Self::step_all_unchecked) are **not**
    /// covered; check [`unchecked_len`](Self::unchecked_len) before
    /// reading a zero residual as "every token verified".
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn global_residual(&self, seq: usize) -> f64 {
        let (predicted, actual) = self.seqs[seq].totals;
        predicted - actual
    }

    /// Prompt tokens cached for `seq` (admitted, chunk-processed, or
    /// prefilled).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn prompt_len(&self, seq: usize) -> usize {
        self.seqs[seq].prompt_tokens
    }

    /// Tokens of `seq` decoded with checksum coverage (via
    /// [`step_all`](Self::step_all)).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn checked_len(&self, seq: usize) -> usize {
        self.seqs[seq].checked_steps
    }

    /// Number of tokens of `seq` decoded without checksum coverage (via
    /// [`step_all_unchecked`](Self::step_all_unchecked)). Zero means the
    /// [`global_residual`](Self::global_residual) verdict covers the
    /// whole decoded history. Demotion and eviction do **not** count
    /// here: every per-token check completed exactly against the history
    /// as it stood; the policy boundaries those tokens' inputs have since
    /// crossed are reported explicitly by
    /// [`demoted_len`](Self::demoted_len) /
    /// [`evicted_len`](Self::evicted_len).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn unchecked_len(&self, seq: usize) -> usize {
        self.seqs[seq].unchecked_steps
    }

    /// Tokens decoded for `seq` through either decode path. For a live
    /// sequence, `prompt_len + decoded_len == seq_len` — the accounting
    /// invariant the coverage tests pin.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn decoded_len(&self, seq: usize) -> usize {
        self.seqs[seq].checked_steps + self.seqs[seq].unchecked_steps
    }

    /// Rows of `seq` demoted to BF16 — rows that left the full-precision
    /// checked window explicitly; their checksum inputs were recomputed
    /// from the rounded values, so later per-token verdicts stay exact.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired.
    pub fn demoted_len(&self, seq: usize) -> usize {
        self.cache.demoted_rows(seq)
    }

    /// Rows of `seq` evicted below the sliding window — rows that left
    /// the attention (and checked) window entirely; the mask guarantees
    /// no later pass reads them.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired.
    pub fn evicted_len(&self, seq: usize) -> usize {
        self.cache.first_retained(seq)
    }

    /// Caps the recovery log at `rows` retained rows per sequence.
    /// Leading rows beyond the budget are dropped at the next truncation
    /// opportunity **only once they stop being the sole witness**: their
    /// block passed a bitwise scrub/audit verdict
    /// ([`scrub_step`](Self::scrub_step) /
    /// [`checkpoint_recovery_log`](Self::checkpoint_recovery_log)) or was
    /// evicted below the sliding window. An unverified suffix is never
    /// dropped, so the log can transiently exceed the budget by exactly
    /// the rows the scrubber has not reached yet (debug-asserted).
    /// `None` restores the unbounded PR-6 behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `rows == Some(0)` (the newest row is always retained).
    pub fn set_recovery_log_budget(&mut self, rows: Option<usize>) {
        assert!(rows != Some(0), "recovery log budget must be positive");
        self.log_budget = rows;
    }

    /// The configured per-sequence recovery-log row budget.
    pub fn recovery_log_budget(&self) -> Option<usize> {
        self.log_budget
    }

    /// Recovery-log rows retained for sequence `seq` (0 when the log is
    /// disabled; excludes budget-truncated leading rows).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn seq_log_rows(&self, seq: usize) -> usize {
        self.seqs[seq].log_k.len() / self.cache.width
    }

    /// Total recovery-log rows retained across all sequence slots — the
    /// bound [`set_recovery_log_budget`](Self::set_recovery_log_budget)
    /// makes testable (without a budget this grows with every appended
    /// row, forever).
    pub fn recovery_log_rows(&self) -> usize {
        self.seqs
            .iter()
            .map(|s| s.log_k.len() / self.cache.width)
            .sum()
    }

    /// Total heap bytes the recovery log's retained K and V rows occupy.
    pub fn recovery_log_bytes(&self) -> usize {
        self.seqs
            .iter()
            .map(|s| (s.log_k.len() + s.log_v.len()) * core::mem::size_of::<T>())
            .sum()
    }

    /// Drops leading log rows past the budget whose positions are
    /// scrub-verified or evicted — called after every append, scrub
    /// verdict, and checkpoint. A no-op without a budget.
    fn truncate_log(&mut self, seq: usize) {
        let Some(budget) = self.log_budget else {
            return;
        };
        if !self.recovery_log || self.cache.is_retired(seq) {
            return;
        }
        // Mid-window, truncation is deferred: dropping *leading* log
        // rows is not reversible by rolling back the tail, and the
        // window's own appends could push the length past the budget
        // before the rollback shrinks it again. The accepted prefix's
        // replay re-runs truncation on the exact non-speculative
        // schedule.
        if self.spec_window.is_some() {
            return;
        }
        let len = self.cache.seq_len(seq);
        let droppable = self.seqs[seq]
            .log_clean_until
            .max(self.cache.first_retained(seq));
        let width = self.cache.width;
        let state = &mut self.seqs[seq];
        let new_start = len.saturating_sub(budget).min(droppable);
        if new_start > state.log_start {
            let drop = (new_start - state.log_start) * width;
            state.log_k.drain(..drop);
            state.log_v.drain(..drop);
            state.log_start = new_start;
        }
        // The budget is never exceeded after truncation — except by the
        // still-unverified suffix, whose rows the log must keep (they are
        // the only recovery witness until a scrub verdict covers them).
        debug_assert!(
            len - state.log_start <= budget || state.log_start == droppable,
            "log rows exceed the budget beyond the unverified suffix"
        );
    }

    /// Installs (or clears) the background scrub policy consumed by
    /// [`scrub_step`](Self::scrub_step). The round-robin cursor persists
    /// across policy changes.
    ///
    /// # Panics
    ///
    /// Panics if `blocks_per_step == 0` (a scrubber that never scrubs has
    /// no latency bound; use `None` to disable).
    pub fn set_scrub_policy(&mut self, policy: Option<ScrubPolicy>) {
        if let Some(p) = policy {
            assert!(p.blocks_per_step > 0, "blocks_per_step must be positive");
        }
        self.scrub = policy;
    }

    /// The installed background scrub policy.
    pub fn scrub_policy(&self) -> Option<ScrubPolicy> {
        self.scrub
    }

    /// Total blocks the background scrubber has audited — the bandwidth
    /// side of the scrub tradeoff curve.
    pub fn scrubbed_blocks(&self) -> u64 {
        self.scrubbed_blocks
    }

    /// Retained blocks across all live sequences — one full scrub cycle
    /// covers exactly this many block audits, so a storage flip is
    /// detected within `ceil(live_blocks / blocks_per_step)` scrub steps.
    pub fn live_blocks(&self) -> usize {
        (0..self.cache.num_sequences())
            .filter(|&s| !self.cache.is_retired(s))
            .map(|s| self.cache.seqs[s].blocks.len())
            .sum()
    }

    /// Voluntarily demotes sequence `seq`'s completely-filled native
    /// blocks beyond the newest `burst_blocks` to BF16 — the **soft
    /// tier** of the serving frontend's preemption ladder under arena
    /// pressure (the hard tier is [`quarantine`](Self::quarantine) +
    /// [`resubmit`](Self::resubmit), i.e. evict-and-requeue with
    /// recompute-on-resume, which rebuilds the history at full precision
    /// and erases the demotion). Works under any [`KvFormat`], reusing
    /// the `Mixed` path's in-place block swap: each demoted block's rows
    /// round RNE into a BF16 arena block, the native block returns to
    /// the free list, the block's reference checksums rebuild from the
    /// rounded storage, and the demoted rows' `sumrow` checksum inputs
    /// refresh — so audits stay clean and the online verdict keeps
    /// predicting exactly what the output lanes consume. Returns the
    /// number of rows demoted (0 when nothing native qualifies; the
    /// call is idempotent at a given length and burst).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired.
    pub fn demote(&mut self, seq: usize, burst_blocks: usize) -> usize {
        self.assert_no_window();
        let kv = self.cfg.kv_heads;
        let demoted = self.cache.demote_full_blocks(seq, burst_blocks);
        let first_retained = self.cache.first_retained(seq);
        let mut rows = 0;
        for range in demoted {
            for p in range {
                if p < first_retained {
                    continue;
                }
                for g in 0..kv {
                    self.seqs[seq].sumrows[p * kv + g] = self.cache.value_head_sum(seq, p, g);
                }
                rows += 1;
            }
        }
        rows
    }

    /// Gracefully degrades sequence `seq` after unrecoverable damage
    /// (evidence evicted, log truncated past the poisoned block, or
    /// checksum-absorbed corruption): every cache block returns to the
    /// free lists, checksum state and verdict totals reset, and — when
    /// the recovery log still covers the full history — the sequence is
    /// automatically requeued for recompute through the **existing
    /// chunked-prefill admission path** ([`prefill_step`](Self::prefill_step)
    /// advances it while the rest of the batch keeps decoding). The
    /// damage costs one sequence's latency, not the batch's verdict.
    ///
    /// When the log was truncated (or disabled) the caller must
    /// [`resubmit`](Self::resubmit) the K/V history itself
    /// ([`QuarantineReport::requeued_rows`] is 0).
    ///
    /// Once re-admitted, decode resumes **bit-identical** to an
    /// undamaged replay of the same history, and batch peers are
    /// bit-identical throughout (property-tested across format ×
    /// eviction × GQA group).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or retired.
    pub fn quarantine(&mut self, seq: usize) -> QuarantineReport {
        self.assert_no_window();
        assert!(!self.cache.is_retired(seq), "sequence {seq} is retired");
        let len = self.cache.seq_len(seq);
        let width = self.cache.width;
        let state = &mut self.seqs[seq];
        state.pending = None;
        state.ready = None;
        state.sumrows = Vec::new();
        state.totals = (0.0, 0.0);
        state.prompt_tokens = 0;
        state.checked_steps = 0;
        state.unchecked_steps = 0;
        let full_log = self.recovery_log
            && state.log_start == 0
            && state.log_k.len() == len * width
            && len > 0;
        let history = if full_log {
            Some((
                Matrix::from_vec(len, width, core::mem::take(&mut state.log_k)),
                Matrix::from_vec(len, width, core::mem::take(&mut state.log_v)),
            ))
        } else {
            None
        };
        let log_rows_dropped = state.log_k.len() / width;
        state.log_k = Vec::new();
        state.log_v = Vec::new();
        state.log_start = 0;
        state.log_clean_until = 0;
        let blocks_freed = self.cache.release_blocks(seq);
        let requeued_rows = match history {
            Some((k, v)) => {
                self.resubmit(seq, &k, &v)
                    .expect("quarantine leaves the slot empty and unpending");
                len
            }
            None => 0,
        };
        QuarantineReport {
            blocks_freed,
            log_rows_dropped,
            requeued_rows,
        }
    }

    /// Requeues a quarantined sequence's full K/V history for
    /// recompute-on-resume: the rows re-cache chunk by chunk through the
    /// chunked-prefill admission machinery (appends, checksum rebuild,
    /// demotion/eviction maintenance — every policy replays on the
    /// append schedule, so the rebuilt cache state is bit-identical to an
    /// engine that never lost it), but no attention is scored — the
    /// sequence's outputs were already delivered before the damage. The
    /// sequence stays [`is_pending`](Self::is_pending) until its last
    /// chunk lands, then decodes normally; no [`AdmittedPrompt`] is
    /// parked.
    ///
    /// # Errors
    ///
    /// Returns a [`ResubmitError`] on shape mismatch, an empty history,
    /// or when `seq` lost a race (retired, still caching rows, or
    /// already pending) — the batch keeps serving either way.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range (an id the engine never issued is
    /// a caller bug, not a race).
    pub fn resubmit(
        &mut self,
        seq: usize,
        k: &Matrix<T>,
        v: &Matrix<T>,
    ) -> Result<(), ResubmitError> {
        if k.cols() != self.cfg.kv_dim() || v.cols() != self.cfg.kv_dim() {
            return Err(ResubmitError::WidthMismatch {
                expected: self.cfg.kv_dim(),
                k_cols: k.cols(),
                v_cols: v.cols(),
            });
        }
        if k.rows() != v.rows() {
            return Err(ResubmitError::RowMismatch {
                k_rows: k.rows(),
                v_rows: v.rows(),
            });
        }
        if k.rows() == 0 {
            return Err(ResubmitError::EmptyHistory);
        }
        if self.cache.is_retired(seq) {
            return Err(ResubmitError::Retired { seq });
        }
        let cached_rows = self.cache.seq_len(seq);
        if cached_rows != 0 {
            return Err(ResubmitError::NotEmpty { seq, cached_rows });
        }
        if self.seqs[seq].pending.is_some() {
            return Err(ResubmitError::AlreadyPending { seq });
        }
        self.seqs[seq].pending = Some(PendingPrompt {
            q: Matrix::zeros(0, 0),
            k: k.clone(),
            v: v.clone(),
            next: 0,
            output: Matrix::zeros(0, 0),
            predicted: 0.0,
            actual: 0.0,
            cache_only: true,
            base: 0,
        });
        Ok(())
    }

    fn append_token(&mut self, seq: usize, k: &[T], v: &[T]) {
        let anchor = self.cache.seq_len(seq);
        self.append_token_anchored(seq, k, v, anchor);
    }

    fn append_token_anchored(&mut self, seq: usize, k: &[T], v: &[T], anchor: usize) {
        let kv = self.cfg.kv_heads;
        if self.recovery_log {
            self.seqs[seq].log_k.extend_from_slice(k);
            self.seqs[seq].log_v.extend_from_slice(v);
        }
        let outcome = self.cache.append_anchored(seq, k, v, anchor);
        let pos = self.cache.seq_len(seq) - 1;
        // Checksum inputs come from the *stored* row: identical to the
        // input row for native storage (same values, same lane order),
        // RNE-rounded for BF16 storage — so the checksum lane always
        // predicts what the output lanes will actually consume. One
        // sumrow per **kv head**: every query head of a group reads the
        // same entry — the shared-`sumrow(V)` saving the paper notes GQA
        // inherits for free.
        for g in 0..kv {
            let sumrow = self.cache.value_head_sum(seq, pos, g);
            self.seqs[seq].sumrows.push(sumrow);
        }
        // Demoted rows changed value mid-sequence: refresh their sumrows
        // from the rounded storage. (A range can straddle eviction when
        // both policies fire on one claim; evicted positions are masked
        // forever, so skip them.)
        let first_retained = self.cache.first_retained(seq);
        for range in outcome.demoted {
            for p in range {
                if p < first_retained {
                    continue;
                }
                for g in 0..kv {
                    self.seqs[seq].sumrows[p * kv + g] = self.cache.value_head_sum(seq, p, g);
                }
            }
        }
        // Eviction below the window may have freed leading log rows; the
        // budget truncation runs opportunistically on the append path.
        self.truncate_log(seq);
    }

    /// Admits one prompt synchronously: registers a sequence (reusing
    /// retired slots and their blocks), caches the prompt K/V, and
    /// computes the prompt's checked causal self-attention in one
    /// unbounded chunk. See [`admit_all`](Self::admit_all);
    /// [`enqueue`](Self::enqueue) is the chunked form.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn admit(&mut self, q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> AdmittedPrompt {
        self.admit_all(&[(q, k, v)])
            .pop()
            .expect("one prompt admitted")
    }

    /// Enqueues one prompt for **chunked** admission: the sequence id is
    /// assigned immediately (reusing retired slots), but no prompt token
    /// is cached or scored yet. Each [`prefill_step`](Self::prefill_step)
    /// — which [`step_all`](Self::step_all) runs automatically before
    /// decoding — advances every pending prompt by at most
    /// [`prefill_chunk`](Self::prefill_chunk) tokens through the batched
    /// checked prefill, so a long prompt admits across several steps
    /// instead of stalling the decode batch. Under [`KvFormat::F64`] (and
    /// any schedule in which no demotion fires mid-prompt) per-query
    /// outputs are bit-identical to a synchronous [`admit`](Self::admit);
    /// under [`KvFormat::Mixed`] the chunk boundaries are *part of the
    /// semantics* — demotion follows the append schedule, so a chunk's
    /// queries score the burst's recent rows at full precision where a
    /// synchronous admit (one giant chunk, all rows appended first)
    /// would already have demoted them. That is the intended "f64
    /// prefill burst": the policy proptests replay demotion at the exact
    /// chunk boundaries. The prompt checksums fold per chunk (same
    /// coverage, chunk-order Kahan rounding) either way. Collect the
    /// finished admission with [`take_admitted`](Self::take_admitted).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn enqueue(&mut self, q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> usize {
        assert_eq!(q.cols(), self.cfg.q_dim(), "prompt Q width mismatch");
        assert_eq!(k.cols(), self.cfg.kv_dim(), "prompt K width mismatch");
        assert_eq!(v.cols(), self.cfg.kv_dim(), "prompt V width mismatch");
        assert_eq!(q.rows(), k.rows(), "prompt Q/K row count mismatch");
        assert_eq!(k.rows(), v.rows(), "prompt K/V row count mismatch");
        self.enqueue_validated(q, k, v)
    }

    fn enqueue_validated(&mut self, q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> usize {
        let q_dim = self.cfg.q_dim();
        let seq = self.add_sequence();
        // The pending queue owns its staging (chunks outlive the caller's
        // borrow). The synchronous admit path pays these clones too —
        // accepted: one memcpy per prompt matrix is noise next to the
        // O(N²·d) prefill passes that follow.
        self.seqs[seq].pending = Some(PendingPrompt {
            q: q.clone(),
            k: k.clone(),
            v: v.clone(),
            next: 0,
            output: Matrix::zeros(q.rows(), q_dim),
            predicted: 0.0,
            actual: 0.0,
            cache_only: false,
            base: 0,
        });
        seq
    }

    /// FNV-1a hash of a prompt prefix's K/V token bits (shape included)
    /// — the content key [`find_prefix`](Self::find_prefix) matches
    /// registered prefixes by.
    pub fn prefix_token_hash(k: &Matrix<T>, v: &Matrix<T>) -> u64 {
        fn fold(h: &mut u64, x: u64) {
            for b in x.to_le_bytes() {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        fold(&mut h, k.rows() as u64);
        fold(&mut h, k.cols() as u64);
        for m in [k, v] {
            for i in 0..m.rows() {
                for x in m.row(i) {
                    fold(&mut h, x.to_f64().to_bits());
                }
            }
        }
        h
    }

    /// The registered, unreleased prefix whose token hash equals `hash`,
    /// if any (first match in registration order).
    pub fn find_prefix(&self, hash: u64) -> Option<usize> {
        self.prefixes
            .iter()
            .position(|p| p.as_ref().is_some_and(|p| p.token_hash == hash))
    }

    /// Registers a shared prompt prefix: the prefix is prefilled **once**
    /// through the normal chunked-admission machinery (checked passes,
    /// checksum folds, demotion/eviction maintenance — so the cached
    /// bits are exactly what an unshared admission of the same rows
    /// would produce at the same chunk schedule), then its blocks,
    /// reference checksums, `sumrow(V)` inputs, outputs and checksum
    /// totals move into the prefix registry. Returns the prefix id for
    /// [`enqueue_shared`](Self::enqueue_shared).
    ///
    /// The registry owns one reference per block; sequences admitted
    /// behind the prefix take additional references, and the blocks
    /// return to the free lists only when the registry
    /// ([`release_prefix`](Self::release_prefix)) **and** every reader
    /// have let go.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or an empty prefix.
    pub fn register_prefix(&mut self, q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> usize {
        self.assert_no_window();
        assert!(k.rows() > 0, "empty prefix");
        let seq = self.enqueue(q, k, v);
        while self.is_pending(seq) {
            self.advance_pending(self.prefill_chunk, Some(&[seq]));
        }
        let adm = self
            .take_admitted(seq)
            .expect("registration drains the prefix prompt");
        let sumrows = core::mem::take(&mut self.seqs[seq].sumrows);
        let (blocks, checks, start) = self.cache.detach_into_registry(seq);
        self.seqs[seq] = SequenceState::fresh();
        self.prefixes.push(Some(SharedPrefix {
            blocks,
            checks,
            start,
            rows: k.rows(),
            sumrows,
            k: k.clone(),
            v: v.clone(),
            output: adm.output,
            predicted: adm.predicted,
            actual: adm.actual,
            token_hash: Self::prefix_token_hash(k, v),
            readers: 0,
        }));
        self.prefixes.len() - 1
    }

    /// Releases the registry's references on prefix `id`. Live readers
    /// keep theirs — each block returns to its free list when its last
    /// reader evicts, quarantines or retires. The id becomes invalid.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or already released.
    pub fn release_prefix(&mut self, id: usize) {
        self.assert_no_window();
        let p = self.prefixes[id].take().expect("prefix already released");
        for &blk in &p.blocks {
            self.cache.release_block(blk);
        }
    }

    /// Registered prefix `id`'s length in tokens.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or released.
    pub fn prefix_rows(&self, id: usize) -> usize {
        self.prefixes[id].as_ref().expect("released prefix").rows
    }

    /// Registered prefix `id`'s scored prompt outputs (`rows × q_dim`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or released.
    pub fn prefix_output(&self, id: usize) -> &Matrix<f64> {
        &self.prefixes[id].as_ref().expect("released prefix").output
    }

    /// Registered prefix `id`'s cache blocks (registry-owned refs).
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or released.
    pub fn prefix_blocks(&self, id: usize) -> &[BlockRef] {
        &self.prefixes[id].as_ref().expect("released prefix").blocks
    }

    /// Sequences admitted behind prefix `id` so far.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or released.
    pub fn prefix_readers(&self, id: usize) -> usize {
        self.prefixes[id].as_ref().expect("released prefix").readers
    }

    /// Ids of all registered, unreleased prefixes.
    pub fn prefix_ids(&self) -> Vec<usize> {
        (0..self.prefixes.len())
            .filter(|&i| self.prefixes[i].is_some())
            .collect()
    }

    /// Enqueues a prompt **behind a registered shared prefix**: the new
    /// sequence adopts the prefix's cache blocks (one new reference
    /// each; zero K/V bytes copied), its reference checksums, `sumrow`
    /// inputs and checksum totals, then stages only the `suffix` rows
    /// for chunked prefill — so admitting `k` sequences with an
    /// `L`-token common prefix costs O(L + k·suffix) prefill work and
    /// blocks, not O(k·L).
    ///
    /// Everything downstream is bit-identical to an unshared
    /// [`enqueue`](Self::enqueue) of `prefix ‖ suffix` whose chunk
    /// schedule aligns a boundary at the prefix end (the prefix was
    /// prefilled on exactly that schedule at registration): the adopted
    /// blocks hold the same bits, appends past the prefix go to private
    /// blocks (copy-on-write if the prefix ends mid-block), and the
    /// suffix chunks score against the same history through the same
    /// kernels. The parked [`AdmittedPrompt`] covers the **suffix**
    /// rows; its checksum totals cover prefix + suffix. The prefix's
    /// own outputs are at [`prefix_output`](Self::prefix_output).
    ///
    /// With the recovery log enabled the reader's log is seeded with the
    /// prefix rows, so quarantine rebuilds the full history privately
    /// (sharing is lost, bits are not).
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or released, or on suffix shape
    /// mismatch (an empty suffix — zero rows — is allowed and admits
    /// immediately).
    pub fn enqueue_shared(
        &mut self,
        id: usize,
        q: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
    ) -> usize {
        assert_eq!(q.rows(), k.rows(), "suffix Q/K row count mismatch");
        assert_eq!(k.rows(), v.rows(), "suffix K/V row count mismatch");
        if q.rows() > 0 {
            assert_eq!(q.cols(), self.cfg.q_dim(), "suffix Q width mismatch");
            assert_eq!(k.cols(), self.cfg.kv_dim(), "suffix K width mismatch");
            assert_eq!(v.cols(), self.cfg.kv_dim(), "suffix V width mismatch");
        }
        let q_dim = self.cfg.q_dim();
        let p = self.prefixes[id].as_ref().expect("released prefix");
        let (blocks, checks, start, rows) = (p.blocks.clone(), p.checks.clone(), p.start, p.rows);
        let sumrows = p.sumrows.clone();
        let (predicted, actual) = (p.predicted, p.actual);
        let (log_k, log_v) = if self.recovery_log {
            let width = self.cfg.kv_dim();
            let mut lk = Vec::with_capacity(rows * width);
            let mut lv = Vec::with_capacity(rows * width);
            for i in 0..rows {
                lk.extend_from_slice(p.k.row(i));
                lv.extend_from_slice(p.v.row(i));
            }
            (lk, lv)
        } else {
            (Vec::new(), Vec::new())
        };
        let seq = self.add_sequence();
        self.cache.attach_shared(seq, &blocks, &checks, start, rows);
        let state = &mut self.seqs[seq];
        state.sumrows = sumrows;
        state.totals = (predicted, actual);
        state.prompt_tokens = rows;
        state.log_k = log_k;
        state.log_v = log_v;
        if q.rows() == 0 {
            state.ready = Some(AdmittedPrompt {
                seq,
                output: Matrix::zeros(0, q_dim),
                predicted,
                actual,
            });
        } else {
            state.pending = Some(PendingPrompt {
                q: q.clone(),
                k: k.clone(),
                v: v.clone(),
                next: 0,
                output: Matrix::zeros(q.rows(), q_dim),
                predicted,
                actual,
                cache_only: false,
                base: rows,
            });
        }
        self.prefixes[id].as_mut().expect("checked above").readers += 1;
        seq
    }

    /// Whether sequence `seq` still has prompt chunks waiting for
    /// prefill passes (such a sequence cannot decode yet).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn is_pending(&self, seq: usize) -> bool {
        self.seqs[seq].pending.is_some()
    }

    /// Prompt tokens of `seq` not yet cached/scored (0 once admission
    /// completed).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn pending_len(&self, seq: usize) -> usize {
        self.seqs[seq]
            .pending
            .as_ref()
            .map_or(0, |p| p.k.rows() - p.next)
    }

    /// Collects the completed admission of an [`enqueue`](Self::enqueue)d
    /// prompt: `Some` exactly once, after its last chunk was processed.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range.
    pub fn take_admitted(&mut self, seq: usize) -> Option<AdmittedPrompt> {
        self.seqs[seq].ready.take()
    }

    /// Advances every pending prompt by one bounded chunk (at most
    /// [`prefill_chunk`](Self::prefill_chunk) tokens each) through the
    /// batched checked prefill — all pending `prompts × heads` passes in
    /// one fork. Returns the number of prompt tokens processed (0 when
    /// nothing is pending). [`step_all`](Self::step_all) calls this
    /// before decoding, interleaving admission with decode.
    pub fn prefill_step(&mut self) -> usize {
        self.advance_pending(self.prefill_chunk, None)
    }

    /// Advances only the listed sequences' pending prompts by one
    /// bounded chunk each (ids without a pending prompt are skipped).
    /// The serving scheduler's handle for budgeted admission: it picks
    /// which prompts advance under its prefill share and spends every
    /// remaining budget token on [`step_decode`](Self::step_decode).
    /// Returns the prompt tokens processed.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range.
    pub fn prefill_step_for(&mut self, seqs: &[usize]) -> usize {
        let ids: Vec<usize> = seqs
            .iter()
            .copied()
            .filter(|&s| self.seqs[s].pending.is_some())
            .collect();
        if ids.is_empty() {
            return 0;
        }
        self.advance_pending(self.prefill_chunk, Some(&ids))
    }

    /// Admits a batch of prompts under the fused checksum: every prompt's
    /// K/V rows are cached, then **all** `prompts × heads` checked causal
    /// prefill passes are scheduled across the rayon pool in one fork, so
    /// admission cost amortizes across the batch instead of serializing
    /// per sequence.
    ///
    /// Per (prompt, head) the pass is the batched form of
    /// `flash_abft::flash2_with_checksum` on that head's `N × d` slices
    /// with a causal mask: same score/axpy kernels, same per-query merged
    /// accumulator recurrence, same Kahan finalization order — so each
    /// head's output rows and (predicted, actual) checksums are
    /// bit-identical to the standalone kernel (property-tested in
    /// `flash-abft`). The per-sequence totals absorb the prompt checksums,
    /// extending [`global_residual`](Self::global_residual) coverage to
    /// every prefill token.
    ///
    /// Outputs are returned in prompt order.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch (each prompt's Q must be `N × q_dim`,
    /// K/V `N × kv_dim`, with one shared `N` per prompt).
    pub fn admit_all(
        &mut self,
        prompts: &[(&Matrix<T>, &Matrix<T>, &Matrix<T>)],
    ) -> Vec<AdmittedPrompt> {
        // Validate every prompt before mutating anything, so a malformed
        // prompt cannot leave earlier prompts half-admitted (same
        // validate-before-mutate contract as `step_all`).
        for &(q, k, v) in prompts {
            assert_eq!(q.cols(), self.cfg.q_dim(), "prompt Q width mismatch");
            assert_eq!(k.cols(), self.cfg.kv_dim(), "prompt K width mismatch");
            assert_eq!(v.cols(), self.cfg.kv_dim(), "prompt V width mismatch");
            assert_eq!(q.rows(), k.rows(), "prompt Q/K row count mismatch");
            assert_eq!(k.rows(), v.rows(), "prompt K/V row count mismatch");
        }
        let ids: Vec<usize> = prompts
            .iter()
            .map(|&(q, k, v)| self.enqueue_validated(q, k, v))
            .collect();
        // One unbounded chunk per prompt: the same appends, the same
        // one-fork prompt×head passes, the same (head, query) Kahan
        // finalization order as the dedicated PR-3 admission path —
        // bit-identical outputs and checksums.
        self.advance_pending(usize::MAX, Some(&ids));
        ids.iter()
            .map(|&seq| {
                self.take_admitted(seq)
                    .expect("unbounded chunk completes every prompt")
            })
            .collect()
    }

    /// The chunked-admission engine: advances pending prompts (all of
    /// them, or the `only` subset) by at most `chunk` prompt tokens each
    /// — appending the chunk's K/V rows, then running every
    /// `prompt × kv_head` checked prefill **group pass** for the chunk's
    /// queries in ONE fork (each pass streams its kv head's panels once,
    /// feeding all `group_size` query heads), then folding each chunk's
    /// per-query-head Kahan checksums into the pending and per-sequence
    /// totals. Completed prompts park their [`AdmittedPrompt`] for
    /// [`take_admitted`](Self::take_admitted).
    fn advance_pending(&mut self, chunk: usize, only: Option<&[usize]>) -> usize {
        self.assert_no_window();
        let h = self.cfg.query_heads;
        let kv = self.cfg.kv_heads;
        let gs = self.cfg.group_size();
        let d = self.cfg.head.head_dim();
        let ids: Vec<usize> = match only {
            Some(list) => list.to_vec(),
            None => (0..self.seqs.len())
                .filter(|&s| self.seqs[s].pending.is_some())
                .collect(),
        };
        if ids.is_empty() {
            return 0;
        }

        // Phase 1 (serial, cheap): cache each prompt's chunk rows.
        let mut spans = Vec::with_capacity(ids.len());
        for &seq in &ids {
            let pend = self.seqs[seq]
                .pending
                .take()
                .expect("advance_pending targets pending sequences");
            let p0 = pend.next;
            let p1 = p0.saturating_add(chunk).min(pend.k.rows());
            let cache_only = pend.cache_only;
            // Prompt rows are suffix-relative; `base` shifts them to
            // absolute positions (non-zero behind a shared prefix).
            let base = pend.base;
            for i in p0..p1 {
                // Anchor eviction at the chunk's first query: its pass
                // has not run yet and may attend below the newest row's
                // window. (Cache-only requeues have no outstanding pass,
                // but keep the same anchor so the eviction/demotion
                // schedule replays the original admission exactly.)
                self.append_token_anchored(seq, pend.k.row(i), pend.v.row(i), base + p0);
            }
            self.seqs[seq].pending = Some(pend);
            self.seqs[seq].prompt_tokens += p1 - p0;
            spans.push((seq, p0, p1, cache_only));
        }

        // Phase 2: one fork over all prompt×kv_head chunk group passes.
        // Few-but-huge work units: each pair is an O(N²·d·group)-ish
        // pass, so even a 2-way fork pays — the decode-tuned rows≥16
        // floor of `worth_parallelizing` would serialize small batches of
        // long prompts.
        let pairs: Vec<(usize, usize)> = (0..spans.len())
            .flat_map(|si| (0..kv).map(move |g| (si, g)))
            .collect();
        let per_pair_elems = spans
            .iter()
            .filter(|&&(_, _, _, cache_only)| !cache_only)
            .map(|&(_, p0, p1, _)| (p1 * p1).saturating_sub(p0 * p0) / 2 * d * gs)
            .max()
            .unwrap_or(0);
        let engine = &*self;
        // Each pair yields the chunk's states in (query, member) order:
        // entry `j·group_size + m` is chunk query `p0 + j`, member `m` of
        // kv head `g` (query head `g·group_size + m`). Cache-only
        // requeues yield no states: their appends are the whole job.
        let pass = |(si, g): (usize, usize)| {
            let (seq, p0, p1, cache_only) = spans[si];
            if cache_only {
                return Vec::new();
            }
            let pend = engine.seqs[seq].pending.as_ref().expect("pending survives");
            let cols = engine.cfg.group_q_cols(g);
            let mut scores = Vec::new();
            let mut states = Vec::with_capacity((p1 - p0) * gs);
            for p in p0..p1 {
                states.extend(engine.fused_group_pass(
                    seq,
                    g,
                    &pend.q.row(p)[cols.clone()],
                    pend.base + p,
                    true,
                    None,
                    &mut scores,
                ));
            }
            states
        };
        let states: Vec<Vec<HeadState>> =
            if crate::par::worth_parallelizing_units(pairs.len(), per_pair_elems) {
                pairs.into_par_iter().map(pass).collect()
            } else {
                pairs.into_iter().map(pass).collect()
            };

        // Phase 3: finalize per prompt in (query head, query) order on
        // this thread — the same Kahan order as flash2_with_checksum per
        // head, folded once per chunk.
        let mut processed = 0;
        for (si, &(seq, p0, p1, cache_only)) in spans.iter().enumerate() {
            processed += p1 - p0;
            let mut pend = self.seqs[seq].pending.take().expect("pending survives");
            if cache_only {
                // No scoring, no checksum fold, no parked admission —
                // just advance the chunk cursor and catch eviction up.
                pend.next = p1;
                self.cache.evict_to_newest(seq);
                if p1 < pend.k.rows() {
                    self.seqs[seq].pending = Some(pend);
                }
                continue;
            }
            let mut predicted = 0.0f64;
            let mut actual = 0.0f64;
            for hi in 0..h {
                let (g, m) = (hi / gs, hi % gs);
                let group_states = &states[si * kv + g];
                let mut pred = KahanSum::new();
                let mut act = KahanSum::new();
                for j in 0..p1 - p0 {
                    let state = &group_states[j * gs + m];
                    let p = p0 + j;
                    for (c, &lane) in state.lanes[..d].iter().enumerate() {
                        let val = lane / state.sum_exp;
                        pend.output[(p, hi * d + c)] = val;
                        act.add(val);
                    }
                    pred.add(state.lanes[d] / state.sum_exp);
                }
                predicted += pred.value();
                actual += act.value();
            }
            pend.predicted += predicted;
            pend.actual += actual;
            pend.next = p1;
            let totals = &mut self.seqs[seq].totals;
            totals.0 += predicted;
            totals.1 += actual;
            // The chunk's passes ran: release rows its anchored appends
            // had to retain below the newest position's window.
            self.cache.evict_to_newest(seq);
            if p1 == pend.k.rows() {
                self.seqs[seq].ready = Some(AdmittedPrompt {
                    seq,
                    output: pend.output,
                    predicted: pend.predicted,
                    actual: pend.actual,
                });
            } else {
                self.seqs[seq].pending = Some(pend);
            }
        }
        processed
    }

    /// Decodes one token for every listed sequence, with the fused online
    /// checksum riding each query head's pass.
    ///
    /// Row `i` of `qs` (`batch × q_dim`) and of `ks`/`vs`
    /// (`batch × kv_dim`) is the new token of `seq_ids[i]`. All K/V rows
    /// are appended first, then every `sequence × kv_head` group pass is
    /// scheduled across the shared rayon pool in one fork — each pass
    /// streams its kv head's contiguous panels once while feeding all
    /// `group_size` query-head states; per-head states are combined in
    /// input order on the calling thread, so the result is bit-identical
    /// at every thread count and to serial per-sequence decode.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, out-of-range, retired, or duplicate
    /// sequence ids.
    pub fn step_all(
        &mut self,
        seq_ids: &[usize],
        qs: &Matrix<T>,
        ks: &Matrix<T>,
        vs: &Matrix<T>,
    ) -> Vec<DecodeStepOutput> {
        // Interleave chunked admission with decode: every step advances
        // pending prompts by one bounded chunk before the decode passes,
        // so long prompts admit without ever stalling the batch. A no-op
        // when nothing is pending (the PR-3-pinned path).
        self.prefill_step();
        self.step_decode(seq_ids, qs, ks, vs)
    }

    /// [`step_all`](Self::step_all) without the built-in prefill chunk:
    /// exactly the listed sequences decode and every pending prompt is
    /// left untouched. The serving scheduler pairs this with
    /// [`prefill_step_for`](Self::prefill_step_for) to split one step's
    /// token budget between admission and decode itself instead of
    /// letting every pending prompt advance unconditionally.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, out-of-range, retired, or duplicate
    /// sequence ids.
    pub fn step_decode(
        &mut self,
        seq_ids: &[usize],
        qs: &Matrix<T>,
        ks: &Matrix<T>,
        vs: &Matrix<T>,
    ) -> Vec<DecodeStepOutput> {
        let states = self.run_passes(seq_ids, qs, ks, vs, true);
        let h = self.cfg.query_heads;
        let d = self.cfg.head.head_dim();
        // Finalize in input order on this thread (Alg. 3 lines 9–11).
        let mut outputs = Vec::with_capacity(seq_ids.len());
        for (i, &seq) in seq_ids.iter().enumerate() {
            let mut output = vec![0.0f64; self.cfg.q_dim()];
            let mut predicted = 0.0f64;
            let mut actual = 0.0f64;
            for (hi, state) in states[i * h..(i + 1) * h].iter().enumerate() {
                for (c, &lane) in state.lanes[..d].iter().enumerate() {
                    let val = lane / state.sum_exp;
                    output[hi * d + c] = val;
                    actual += val;
                }
                predicted += state.lanes[d] / state.sum_exp;
            }
            let state = &mut self.seqs[seq];
            state.totals.0 += predicted;
            state.totals.1 += actual;
            state.checked_steps += 1;
            outputs.push(DecodeStepOutput {
                output,
                predicted,
                actual,
            });
        }
        outputs
    }

    /// [`step_all`](Self::step_all) without the checksum lane — the
    /// unchecked baseline the overhead benchmark compares against.
    /// Returns only the normalized output rows. Tokens decoded this way
    /// still advance the cache but are **excluded** from the
    /// [`global_residual`](Self::global_residual) session verdict; the
    /// per-sequence [`unchecked_len`](Self::unchecked_len) counter
    /// records the coverage gap.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, out-of-range, retired, or duplicate
    /// sequence ids.
    pub fn step_all_unchecked(
        &mut self,
        seq_ids: &[usize],
        qs: &Matrix<T>,
        ks: &Matrix<T>,
        vs: &Matrix<T>,
    ) -> Vec<Vec<f64>> {
        self.prefill_step();
        let states = self.run_passes(seq_ids, qs, ks, vs, false);
        for &seq in seq_ids {
            self.seqs[seq].unchecked_steps += 1;
        }
        let h = self.cfg.query_heads;
        let d = self.cfg.head.head_dim();
        seq_ids
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let mut output = vec![0.0f64; self.cfg.q_dim()];
                for (hi, state) in states[i * h..(i + 1) * h].iter().enumerate() {
                    for (c, &lane) in state.lanes[..d].iter().enumerate() {
                        output[hi * d + c] = lane / state.sum_exp;
                    }
                }
                output
            })
            .collect()
    }

    /// Appends every input token, then runs all `batch × kv_heads` fused
    /// group passes in a single fork. Returns one [`HeadState`] per
    /// (sequence, **query head**), in query-head order per sequence.
    fn run_passes(
        &mut self,
        seq_ids: &[usize],
        qs: &Matrix<T>,
        ks: &Matrix<T>,
        vs: &Matrix<T>,
        checked: bool,
    ) -> Vec<HeadState> {
        assert_eq!(qs.cols(), self.cfg.q_dim(), "Q width mismatch");
        assert_eq!(ks.cols(), self.cfg.kv_dim(), "K width mismatch");
        assert_eq!(vs.cols(), self.cfg.kv_dim(), "V width mismatch");
        self.assert_no_window();
        let batch = seq_ids.len();
        assert_eq!(qs.rows(), batch, "one Q row per sequence id");
        assert_eq!(ks.rows(), batch, "one K row per sequence id");
        assert_eq!(vs.rows(), batch, "one V row per sequence id");
        for (i, &s) in seq_ids.iter().enumerate() {
            assert!(s < self.num_sequences(), "unknown sequence id {s}");
            assert!(!self.cache.is_retired(s), "sequence {s} is retired");
            assert!(
                !self.is_pending(s),
                "sequence {s} still has pending prompt chunks"
            );
            assert!(
                !seq_ids[..i].contains(&s),
                "duplicate sequence id {s} in one step"
            );
        }

        // Phase 1 (serial, cheap): append every new token.
        for (i, &seq) in seq_ids.iter().enumerate() {
            self.append_token(seq, ks.row(i), vs.row(i));
        }

        // Shared-block batched scoring: when several stepping sequences
        // read one physical block (a shared prefix), score it once per
        // (block, kv head) for all readers — the K panel streams from
        // DRAM once instead of once per reader. Built serially before
        // the fork; the passes consume the precomputed slices.
        let mut scratch = std::mem::take(&mut self.shared_scratch);
        self.build_shared_scores(seq_ids, qs, &mut scratch);
        self.shared_tiles += scratch.tiles;
        let shared = scratch.active.then_some(&scratch);

        // Phase 2: one fork over all sequence×kv_head group passes. Each
        // unit owns one kv head's contiguous K/V stream and computes all
        // of its group's query-head states in one sweep; flattening the
        // (sequence-major, kv-head-major, member) results yields exactly
        // query-head order per sequence.
        let kv = self.cfg.kv_heads;
        let gs = self.cfg.group_size();
        let d = self.cfg.head.head_dim();
        let work = batch * kv;
        let max_len = seq_ids
            .iter()
            .map(|&s| self.cache.seq_len(s))
            .max()
            .unwrap_or(0);
        let pass = |flat: usize| {
            let (i, g) = (flat / kv, flat % kv);
            let seq = seq_ids[i];
            // A group's query heads are contiguous in the packed Q row.
            let cols = self.cfg.group_q_cols(g);
            // This pass's slice of the shared-score table: one flat-row
            // lookup here, then plain `bi` indexing per block inside.
            let tiles = shared.and_then(|t| {
                let row = t.index[flat].as_slice();
                (!row.is_empty()).then_some((row, t.scores.as_slice()))
            });
            let mut scores = Vec::new();
            self.fused_group_pass(
                seq,
                g,
                &qs.row(i)[cols],
                self.cache.seq_len(seq) - 1,
                checked,
                tiles,
                &mut scores,
            )
        };
        let groups: Vec<Vec<HeadState>> = if crate::par::worth_parallelizing(work, max_len, d * gs)
        {
            (0..work).into_par_iter().map(pass).collect()
        } else {
            (0..work).map(pass).collect()
        };
        self.shared_scratch = scratch;
        groups.into_iter().flatten().collect()
    }

    /// Builds the decode step's shared-block score table: for every
    /// physical block read by **two or more** of the stepping sequences
    /// at the same visible row range, all readers' per-member score
    /// rows are computed in one K-panel sweep
    /// ([`ops::dot_then_scale_rows_multi_into`] — rows outer, queries
    /// inner, so each K row is loaded from DRAM once and reused
    /// register/L1-hot across all `k · group_size` queries: the
    /// (k·gs × d)·(dᵀ × rows) matmul realized with the same
    /// per-(query, row) [`ops::dot_f64`] microkernel the GEMV path uses,
    /// hence bit-identical scores). Leaves `s.active` false when sharing
    /// is off or no block qualifies.
    ///
    /// The table is rebuilt every step, so the builder stays strictly
    /// O(readers · blocks) with no hashing and (in steady state) no
    /// allocation: reader×block pairs are sort-grouped by (physical
    /// block, range) in the scratch's persistent buffers, tiles land
    /// directly in the score arena, and the packed query panel —
    /// identical for every tile with the same reader set, i.e. all of a
    /// shared prefix's blocks — is reused across tiles instead of
    /// repacked per block (at `k = 32` readers that repacking alone
    /// outweighed the batched sweep's saving, and per-step
    /// allocation + hashing cost as much as the k-GEMV work replaced).
    fn build_shared_scores(&self, seq_ids: &[usize], qs: &Matrix<T>, s: &mut SharedScratch<T>) {
        s.tiles = 0;
        s.used = 0;
        s.active = false;
        if !self.shared_scoring {
            return;
        }
        let kv = self.cfg.kv_heads;
        let gs = self.cfg.group_size();
        let d = self.cfg.head.head_dim();
        let scale = self.cfg.head.scale();
        let block_rows = self.cache.block_rows();
        // Reset the step-local views: index rows empty (capacity kept),
        // packed panels invalid (queries change every step).
        for row in s.index.iter_mut() {
            row.clear();
        }
        if s.index.len() < seq_ids.len() * kv {
            s.index.resize_with(seq_ids.len() * kv, Vec::new);
        }
        if s.packed.len() < kv {
            s.packed.resize_with(kv, Vec::new);
            s.packed_wide.resize_with(kv, Vec::new);
            s.packed_ok.resize(kv, false);
            s.packed_wide_ok.resize(kv, false);
        }
        s.packed_readers.clear();
        // One entry per (reader, shared block): key = (physical block,
        // visible range), payload = (batch slot, retained-block index).
        // Readers at different ranges (sliding windows cutting a block
        // differently) keep the GEMV path — correctness first, the
        // prefix-sharing hot case (retain-all decode: every reader sees
        // the full block) always batches.
        s.entries.clear();
        for (i, &seq) in seq_ids.iter().enumerate() {
            let blocks = self.cache.seq_blocks(seq);
            if !blocks.iter().any(|&b| self.cache.block_ref_count(b) > 1) {
                continue;
            }
            let start = self.cache.first_retained(seq);
            let last_pos = self.cache.seq_len(seq) - 1;
            let lo = match self.mask_window {
                Some(w) => (last_pos + 1).saturating_sub(w),
                None => 0,
            };
            for (bi, &blk) in blocks.iter().enumerate() {
                if self.cache.block_ref_count(blk) < 2 {
                    continue;
                }
                let first = start + bi * block_rows;
                if first > last_pos {
                    break;
                }
                let rows = (last_pos + 1 - first).min(block_rows);
                let r1 = rows;
                let r0 = lo.saturating_sub(first).min(r1);
                if r0 == r1 {
                    continue;
                }
                s.entries
                    .push(((blk.index, blk.bf16, r0, r1), i as u32, bi as u32));
            }
        }
        if s.entries.is_empty() {
            return;
        }
        // Runs of equal key are tiles; within a run readers stay in
        // batch order, which is also the qbuf packing order below.
        s.entries.sort_unstable();
        let mut run = 0;
        while run < s.entries.len() {
            let key = s.entries[run].0;
            let mut end = run + 1;
            while end < s.entries.len() && s.entries[end].0 == key {
                end += 1;
            }
            let span = run..end;
            run = end;
            if span.len() < 2 {
                continue;
            }
            let readers_match = s.packed_readers.len() == span.len()
                && s.packed_readers
                    .iter()
                    .zip(&s.entries[span.clone()])
                    .all(|(&p, &(_, i, _))| p == i);
            if !readers_match {
                s.packed_readers.clear();
                let (head, tail) = (&mut s.packed_readers, &s.entries[span.clone()]);
                head.extend(tail.iter().map(|&(_, i, _)| i));
                s.packed_ok.iter_mut().for_each(|v| *v = false);
                s.packed_wide_ok.iter_mut().for_each(|v| *v = false);
            }
            let (_, bf16, r0, r1) = key;
            let rows = r1 - r0;
            // One representative reader locates the panel; all readers
            // share the physical storage by construction.
            let (_, i0, bi0) = s.entries[span.start];
            let seq0 = seq_ids[i0 as usize];
            for g in 0..kv {
                let cols = self.cfg.group_q_cols(g);
                let hb = self.cache.head_block(seq0, bi0 as usize, g);
                let base = s.used;
                s.used += span.len() * gs * rows;
                // Grow-only arena: new capacity is zero-filled once,
                // then every slot of the step's live prefix is
                // overwritten by the sweeps below — later steps reuse
                // the allocation with no memset.
                if s.scores.len() < s.used {
                    s.scores.resize(s.used, 0.0);
                }
                match hb.data {
                    HeadBlockData::Native { k, .. } => {
                        if !s.packed_ok[g] {
                            s.packed[g].clear();
                            for &(_, i, _) in &s.entries[span.clone()] {
                                s.packed[g].extend_from_slice(&qs.row(i as usize)[cols.clone()]);
                            }
                            s.packed_ok[g] = true;
                        }
                        ops::dot_then_scale_rows_multi_into(
                            &s.packed[g],
                            d,
                            &k[r0 * hb.stride..],
                            hb.stride,
                            rows,
                            scale,
                            &mut s.scores[base..s.used],
                        );
                    }
                    HeadBlockData::Demoted { k, .. } => {
                        if !s.packed_wide_ok[g] {
                            s.packed_wide[g].clear();
                            for &(_, i, _) in &s.entries[span.clone()] {
                                s.packed_wide[g].extend(
                                    qs.row(i as usize)[cols.clone()].iter().map(|x| x.to_f64()),
                                );
                            }
                            s.packed_wide_ok[g] = true;
                        }
                        ops::dot_then_scale_rows_multi_bf16_into(
                            &s.packed_wide[g],
                            d,
                            &k[r0 * hb.stride..],
                            hb.stride,
                            rows,
                            scale,
                            &mut s.scores[base..s.used],
                        );
                    }
                }
                debug_assert!(bf16 == matches!(hb.data, HeadBlockData::Demoted { .. }));
                for (j, &(_, i, bi)) in s.entries[span.clone()].iter().enumerate() {
                    let row = &mut s.index[i as usize * kv + g];
                    let bi = bi as usize;
                    if row.len() <= bi {
                        row.resize(bi + 1, (0, 0, SHARED_NONE));
                    }
                    row[bi] = (r0, r1, base + j * gs * rows);
                }
                s.tiles += 1;
            }
        }
        s.active = s.tiles > 0;
    }

    /// The fused Alg. 3 loop for one (sequence, **kv head**) group at
    /// query position `last_pos`: one sweep over that kv head's cached
    /// blocks up to (and including) `last_pos`, computing scores,
    /// online-softmax state, output lanes and (when `checked`) the
    /// checksum lane for **every query head of the group** — the K/V
    /// panels are walked once per block while they are cache-hot, so a
    /// grouped topology pays the DRAM traffic of one head for
    /// `group_size` query states.
    ///
    /// `q_group` packs the group's query sub-rows member-major
    /// (`group_size · d` lanes). Each block is scored per member through
    /// the contiguous-stream [`ops::dot_then_scale_rows`] kernel (with
    /// the head-major layout the K panel is one pure contiguous span) —
    /// unless `shared` carries this (sequence, kv head) pass's
    /// shared-score row (per-block tile locations plus the step's score
    /// arena): then the slice is consumed directly, skipping the
    /// per-reader K sweep (same per-(query, row) dot kernel, same
    /// bits). Scores and V rows then fold through the member's online
    /// recurrence — per member, exactly the arithmetic of the
    /// per-query-head PR-4 pass, so `group_size == 1` is bit-identical to
    /// it. The checksum lane reads the per-(position, kv head) `sumrow`,
    /// shared by all members of the group — and, across sequences, the
    /// same shared-prefix position's `sumrow` value serves every reader
    /// (cloned at attach). Decode passes use
    /// `last_pos == seq_len − 1`; admitted prompt queries use their own
    /// position, which also applies the causal mask. Sliding-window
    /// masking is relative to `last_pos`, matching
    /// `DecodeSession::step_with_state`. `scores` is caller scratch,
    /// reused across blocks, members and queries. Returns the group's
    /// states in member (query-head) order.
    #[allow(clippy::too_many_arguments)]
    fn fused_group_pass(
        &self,
        seq: usize,
        kv_head: usize,
        q_group: &[T],
        last_pos: usize,
        checked: bool,
        shared: Option<SharedTiles<'_>>,
        scores: &mut Vec<f64>,
    ) -> Vec<HeadState> {
        let d = self.cfg.head.head_dim();
        let kv = self.cfg.kv_heads;
        let gs = self.cfg.group_size();
        let scale = self.cfg.head.scale();
        let sumrows = &self.seqs[seq].sumrows;
        debug_assert_eq!(q_group.len(), gs * d);

        // Visible positions: the causal-window interval ending at
        // `last_pos`, under the tighter of the configured sliding window
        // and the eviction window (sliding-window eviction masks exactly
        // the positions it frees, so evicted blocks are unreachable).
        let lo = match self.mask_window {
            Some(w) => (last_pos + 1).saturating_sub(w),
            None => 0,
        };

        // Widened queries for demoted-block scoring: the mixed-operand
        // dot widens BF16 keys per lane (exact), so scoring a demoted
        // block equals scoring its widened contents through the f64
        // kernel bit for bit — what keeps mixed-format decode pinned to
        // the f64 golden session. Only materialized when BF16 blocks
        // exist: the format implies them, or voluntary demotion (the
        // serving frontend's soft preemption tier) planted some in an
        // otherwise-native sequence.
        let q_wide: Vec<f64> = if self.cache.format() == KvFormat::F64
            && !self.cache.seqs[seq].blocks.iter().any(|b| b.bf16)
        {
            Vec::new()
        } else {
            q_group.iter().map(|x| x.to_f64()).collect()
        };

        let mut states: Vec<(OnlineSoftmax, Vec<f64>)> = (0..gs)
            .map(|_| (OnlineSoftmax::new(), vec![0.0f64; d + 1]))
            .collect();
        for (bi, blk) in self.cache.head_stream(seq, kv_head).enumerate() {
            if blk.first > last_pos {
                break;
            }
            let r1 = (last_pos + 1 - blk.first).min(blk.rows);
            let r0 = lo.saturating_sub(blk.first).min(r1);
            if r0 == r1 {
                continue;
            }
            // Shared-block fast path: another reader's builder already
            // scored this physical block for our queries — consume the
            // member's precomputed score row instead of re-streaming K.
            let tile = shared.and_then(|(row, arena)| {
                row.get(bi)
                    .filter(|&&(tr0, tr1, off)| off != SHARED_NONE && (tr0, tr1) == (r0, r1))
                    .map(|&(_, _, off)| &arena[off..off + gs * (r1 - r0)])
            });
            match blk.data {
                HeadBlockData::Native { k, v } => {
                    for (m, (os, lanes)) in states.iter_mut().enumerate() {
                        let member_scores: &[f64] = if let Some(tile) = tile {
                            &tile[m * (r1 - r0)..(m + 1) * (r1 - r0)]
                        } else {
                            ops::dot_then_scale_rows(
                                &q_group[m * d..(m + 1) * d],
                                &k[r0 * blk.stride..],
                                blk.stride,
                                r1 - r0,
                                scale,
                                scores,
                            );
                            scores
                        };
                        accumulate_block(
                            os,
                            lanes,
                            member_scores,
                            v,
                            blk.stride,
                            r0,
                            blk.first,
                            sumrows,
                            kv,
                            kv_head,
                            checked,
                        );
                    }
                }
                HeadBlockData::Demoted { k, v } => {
                    for (m, (os, lanes)) in states.iter_mut().enumerate() {
                        let member_scores: &[f64] = if let Some(tile) = tile {
                            &tile[m * (r1 - r0)..(m + 1) * (r1 - r0)]
                        } else {
                            ops::dot_then_scale_rows_bf16(
                                &q_wide[m * d..(m + 1) * d],
                                &k[r0 * blk.stride..],
                                blk.stride,
                                r1 - r0,
                                scale,
                                scores,
                            );
                            scores
                        };
                        accumulate_block(
                            os,
                            lanes,
                            member_scores,
                            v,
                            blk.stride,
                            r0,
                            blk.first,
                            sumrows,
                            kv,
                            kv_head,
                            checked,
                        );
                    }
                }
            }
        }
        states
            .into_iter()
            .map(|(os, lanes)| HeadState {
                lanes,
                sum_exp: os.sum_exp(),
            })
            .collect()
    }
}

/// Folds one scored block through the online recurrence: lines 4–6 of
/// Alg. 3 for each of the block's visible rows, plus the checksum lane
/// when `checked`. Generic over the block's stored value format (native
/// `T` or demoted BF16) — [`ops::axpy_f64`] handles both with identical
/// per-lane rounding.
#[allow(clippy::too_many_arguments)]
fn accumulate_block<V: Scalar>(
    os: &mut OnlineSoftmax,
    lanes: &mut [f64],
    scores: &[f64],
    v: &[V],
    stride: usize,
    r0: usize,
    first: usize,
    sumrows: &[f64],
    heads: usize,
    head: usize,
    checked: bool,
) {
    let d = lanes.len() - 1;
    for (j, &s) in scores.iter().enumerate() {
        let r = r0 + j;
        let step = os.push(s);
        let vo = r * stride;
        ops::axpy_f64(
            &mut lanes[..d],
            &v[vo..vo + d],
            step.scale_old,
            step.weight_new,
        );
        if checked {
            let pos = first + r;
            lanes[d] = lanes[d] * step.scale_old + sumrows[pos * heads + head] * step.weight_new;
        }
    }
}

pub mod guard;
pub mod scrub;
pub mod spec;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::DecodeSession;
    use crate::gqa::GqaConfig;
    use crate::multihead::MultiHeadConfig;
    use crate::AttentionConfig;
    use fa_tensor::random::ElementDist;

    fn rand(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        Matrix::random_seeded(rows, cols, ElementDist::default(), seed)
    }

    #[test]
    fn cache_blocks_are_contiguous_and_ordered() {
        let mut cache = KvCache::<f64>::new(2, 3);
        let s0 = cache.add_sequence();
        let s1 = cache.add_sequence();
        // Interleave appends so the two sequences' blocks interleave in
        // the arena.
        for i in 0..7 {
            cache.append(s0, &[i as f64, 0.0], &[10.0 + i as f64, 0.0]);
            if i < 4 {
                cache.append(s1, &[100.0 + i as f64, 0.0], &[0.0, i as f64]);
            }
        }
        assert_eq!(cache.seq_len(s0), 7);
        assert_eq!(cache.seq_len(s1), 4);
        let mut pos = 0;
        for (first, k_rows, v_rows) in cache.blocks(s0) {
            assert_eq!(first, pos);
            let rows = k_rows.len() / 2;
            for r in 0..rows {
                assert_eq!(k_rows[r * 2], (first + r) as f64);
                assert_eq!(v_rows[r * 2], 10.0 + (first + r) as f64);
            }
            pos += rows;
        }
        assert_eq!(pos, 7);
        assert_eq!(cache.key_row(s1, 3)[0], 103.0);
    }

    #[test]
    fn head_major_blocks_are_contiguous_per_head() {
        // 2 heads × dim 2, 3-row blocks: each head's panel must stream
        // contiguously (stride == head_dim) and reproduce the appended
        // rows in position order.
        let mut cache = KvCache::<f64>::new_head_major(2, 2, 3);
        let s = cache.add_sequence();
        for i in 0..7 {
            let i = i as f64;
            cache.append(
                s,
                &[i, 10.0 + i, 20.0 + i, 30.0 + i],
                &[40.0 + i, 50.0 + i, 60.0 + i, 70.0 + i],
            );
        }
        for head in 0..2 {
            let mut pos = 0;
            for blk in cache.head_stream(s, head) {
                assert_eq!(blk.stride, 2, "head-major panels are contiguous");
                assert_eq!(blk.first, pos);
                let HeadBlockData::Native { k, v } = blk.data else {
                    panic!("default-policy cache yields native blocks");
                };
                for r in 0..blk.rows {
                    let i = (blk.first + r) as f64;
                    assert_eq!(k[r * 2], 20.0 * head as f64 + i);
                    assert_eq!(k[r * 2 + 1], 20.0 * head as f64 + 10.0 + i);
                    assert_eq!(v[r * 2], 20.0 * head as f64 + 40.0 + i);
                }
                pos += blk.rows;
            }
            assert_eq!(pos, 7);
        }
        // Gathered full rows agree with the appended ones.
        assert_eq!(cache.key_row(s, 4), vec![4.0, 14.0, 24.0, 34.0]);
        assert_eq!(cache.value_row(s, 6), vec![46.0, 56.0, 66.0, 76.0]);
    }

    #[test]
    fn retired_blocks_are_recycled_not_leaked() {
        let mut cache = KvCache::<f64>::new_head_major(1, 2, 2);
        let s0 = cache.add_sequence();
        for i in 0..6 {
            cache.append(s0, &[i as f64, 0.0], &[0.0, 0.0]);
        }
        assert_eq!(cache.allocated_blocks(), 3);
        cache.retire_sequence(s0);
        assert_eq!(cache.free_block_list().len(), 3);
        assert_eq!(cache.live_sequences(), 0);

        // A new sequence reuses the slot id and the freed blocks — the
        // arena must not grow.
        let s1 = cache.add_sequence();
        assert_eq!(s1, s0, "retired slot is reused");
        for i in 0..6 {
            cache.append(s1, &[100.0 + i as f64, 0.0], &[0.0, 0.0]);
        }
        assert_eq!(cache.allocated_blocks(), 3, "no new arena growth");
        assert_eq!(cache.recycled_blocks(), 3);
        assert!(cache.free_block_list().is_empty());
        assert_eq!(cache.key_row(s1, 5)[0], 105.0);
    }

    #[test]
    #[should_panic(expected = "is retired")]
    fn retired_sequence_access_panics() {
        let mut cache = KvCache::<f64>::new(2, 2);
        let s = cache.add_sequence();
        cache.append(s, &[1.0, 2.0], &[3.0, 4.0]);
        cache.retire_sequence(s);
        let _ = cache.seq_len(s);
    }

    #[test]
    fn batched_decode_matches_serial_sessions_bitwise() {
        // The load-bearing equivalence: DecodeBatch over S sequences and
        // H heads must equal one DecodeSession per (sequence, head), bit
        // for bit, for any cache block size and either layout.
        let cfg = MultiHeadConfig::new(3, AttentionConfig::new(4));
        let (s, steps) = (4, 6);
        for layout in [KvLayout::HeadMajor, KvLayout::TokenMajor] {
            for block_rows in [1, 2, 16] {
                let mut batch = DecodeBatch::<f64>::with_layout(cfg, block_rows, layout);
                let ids: Vec<usize> = (0..s).map(|_| batch.add_sequence()).collect();
                let mut sessions: Vec<Vec<DecodeSession<f64>>> = (0..s)
                    .map(|_| (0..3).map(|_| DecodeSession::new(cfg.head)).collect())
                    .collect();
                for t in 0..steps {
                    let seed = 9000 + t as u64;
                    let qs = rand(s, cfg.model_dim(), seed);
                    let ks = rand(s, cfg.model_dim(), seed + 100);
                    let vs = rand(s, cfg.model_dim(), seed + 200);
                    let outs = batch.step_all(&ids, &qs, &ks, &vs);
                    for (i, out) in outs.iter().enumerate() {
                        for (h, session) in sessions[i].iter_mut().enumerate() {
                            let slice = |m: &Matrix<f64>| m.row(i)[h * 4..(h + 1) * 4].to_vec();
                            let reference = session.step(&slice(&qs), &slice(&ks), &slice(&vs));
                            for (c, r) in reference.iter().enumerate() {
                                assert_eq!(
                                    out.output[h * 4 + c].to_bits(),
                                    r.to_bits(),
                                    "{layout:?} block_rows {block_rows} step {t} seq {i} \
                                     head {h} lane {c}"
                                );
                            }
                        }
                        assert!(out.residual().abs() < 1e-12, "checksum holds");
                    }
                }
                for &id in &ids {
                    assert!(batch.global_residual(id).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn step_all_parallel_bit_identical_any_thread_count() {
        let cfg = MultiHeadConfig::new(4, AttentionConfig::new(8));
        let run = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| {
                    let mut batch = DecodeBatch::<f64>::new(cfg, 8);
                    let ids: Vec<usize> = (0..6).map(|_| batch.add_sequence()).collect();
                    for &id in &ids {
                        batch.prefill(
                            id,
                            &rand(40, cfg.model_dim(), 70 + id as u64),
                            &rand(40, cfg.model_dim(), 80 + id as u64),
                        );
                    }
                    let qs = rand(6, cfg.model_dim(), 1);
                    let ks = rand(6, cfg.model_dim(), 2);
                    let vs = rand(6, cfg.model_dim(), 3);
                    batch.step_all(&ids, &qs, &ks, &vs)
                })
        };
        let serial = run(1);
        for threads in [2, 3, 8] {
            let parallel = run(threads);
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.predicted.to_bits(), b.predicted.to_bits());
                assert_eq!(a.actual.to_bits(), b.actual.to_bits());
                for (x, y) in a.output.iter().zip(&b.output) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{threads} threads");
                }
            }
        }
    }

    #[test]
    fn admit_matches_prefill_then_decode_bitwise() {
        // A sequence admitted under the fused checksum must decode
        // exactly like one prefilled without checking: admission only
        // adds the prompt verification, never changes the cached state.
        let cfg = MultiHeadConfig::new(2, AttentionConfig::new(4));
        let dim = cfg.model_dim();
        let (pq, pk, pv) = (rand(9, dim, 40), rand(9, dim, 41), rand(9, dim, 42));

        let mut admitted = DecodeBatch::<f64>::new(cfg, 4);
        let prompt = admitted.admit(&pq, &pk, &pv);
        assert!(prompt.residual().abs() < 1e-10, "prompt check holds");
        assert_eq!(prompt.output.rows(), 9);
        assert_eq!(admitted.prompt_len(prompt.seq), 9);

        let mut prefilled = DecodeBatch::<f64>::new(cfg, 4);
        let seq = prefilled.add_sequence();
        prefilled.prefill(seq, &pk, &pv);

        for t in 0..3 {
            let qs = rand(1, dim, 60 + t);
            let ks = rand(1, dim, 70 + t);
            let vs = rand(1, dim, 80 + t);
            let a = admitted.step_all(&[prompt.seq], &qs, &ks, &vs);
            let b = prefilled.step_all(&[seq], &qs, &ks, &vs);
            assert_eq!(a[0].output, b[0].output, "step {t}");
            assert_eq!(a[0].predicted.to_bits(), b[0].predicted.to_bits());
        }
        assert!(admitted.global_residual(prompt.seq).abs() < 1e-9);
    }

    #[test]
    fn admit_all_parallel_bit_identical_any_thread_count() {
        let cfg = MultiHeadConfig::new(4, AttentionConfig::new(8));
        let dim = cfg.model_dim();
        let prompts: Vec<(Matrix<f64>, Matrix<f64>, Matrix<f64>)> = (0..5)
            .map(|i| {
                let n = 20 + 5 * i;
                (
                    rand(n, dim, 500 + i as u64),
                    rand(n, dim, 600 + i as u64),
                    rand(n, dim, 700 + i as u64),
                )
            })
            .collect();
        let refs: Vec<(&Matrix<f64>, &Matrix<f64>, &Matrix<f64>)> =
            prompts.iter().map(|(q, k, v)| (q, k, v)).collect();
        let run = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| {
                    let mut batch = DecodeBatch::<f64>::new(cfg, 8);
                    batch.admit_all(&refs)
                })
        };
        let serial = run(1);
        for threads in [2, 5] {
            let parallel = run(threads);
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.output, b.output, "{threads} threads");
                assert_eq!(a.predicted.to_bits(), b.predicted.to_bits());
                assert_eq!(a.actual.to_bits(), b.actual.to_bits());
            }
        }
    }

    #[test]
    fn admit_all_validates_every_prompt_before_mutating() {
        // A malformed prompt anywhere in the batch must fail the whole
        // call *before* any prompt is admitted — no half-mutated engine.
        let cfg = MultiHeadConfig::new(2, AttentionConfig::new(4));
        let dim = cfg.model_dim();
        let mut batch = DecodeBatch::<f64>::new(cfg, 4);
        let (gq, gk, gv) = (rand(3, dim, 1), rand(3, dim, 2), rand(3, dim, 3));
        let bad_q = rand(3, dim - 1, 4); // wrong width
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            batch.admit_all(&[(&gq, &gk, &gv), (&bad_q, &gk, &gv)])
        }));
        assert!(result.is_err(), "malformed prompt must panic");
        assert_eq!(batch.num_sequences(), 0, "nothing was half-admitted");
    }

    #[test]
    fn retire_and_readmit_preserves_neighbour_state() {
        // Retiring a sequence mid-flight must not disturb the survivors'
        // outputs or checksum state, and the replacement must behave like
        // a fresh engine's sequence despite running on recycled blocks.
        let cfg = MultiHeadConfig::new(2, AttentionConfig::new(4));
        let dim = cfg.model_dim();
        let mut engine = DecodeBatch::<f64>::new(cfg, 2);
        let mut lone = DecodeBatch::<f64>::new(cfg, 2);

        let (q0, k0, v0) = (rand(6, dim, 1), rand(6, dim, 2), rand(6, dim, 3));
        let (q1, k1, v1) = (rand(4, dim, 4), rand(4, dim, 5), rand(4, dim, 6));
        let a = engine.admit(&q0, &k0, &v0);
        let b = engine.admit(&q1, &k1, &v1);
        let lone_a = lone.admit(&q0, &k0, &v0);
        assert_eq!(a.output, lone_a.output, "co-admission changes nothing");

        // Decode both, retire b, decode a alone (mirrored on `lone`).
        let step = |e: &mut DecodeBatch<f64>, ids: &[usize], t: u64, width: usize| {
            let qs = rand(width, dim, 900 + t);
            let ks = rand(width, dim, 910 + t);
            let vs = rand(width, dim, 920 + t);
            e.step_all(ids, &qs, &ks, &vs)
        };
        let both = step(&mut engine, &[a.seq, b.seq], 0, 2);
        let solo = {
            let qs = rand(2, dim, 900);
            let ks = rand(2, dim, 910);
            let vs = rand(2, dim, 920);
            let sliced = |m: &Matrix<f64>| Matrix::from_fn(1, dim, |_, c| m[(0, c)]);
            lone.step_all(&[lone_a.seq], &sliced(&qs), &sliced(&ks), &sliced(&vs))
        };
        assert_eq!(both[0].output, solo[0].output);

        engine.retire(b.seq);
        assert!(engine.is_retired(b.seq));
        assert_eq!(engine.live_sequences(), 1);

        // Readmit onto the recycled blocks; survivor keeps decoding
        // bit-identically to its lone twin.
        let (q2, k2, v2) = (rand(5, dim, 7), rand(5, dim, 8), rand(5, dim, 9));
        let c = engine.admit(&q2, &k2, &v2);
        assert_eq!(c.seq, b.seq, "slot reuse");
        assert!(engine.cache().recycled_blocks() > 0, "blocks recycled");
        for t in 1..4 {
            let outs = step(&mut engine, &[a.seq, c.seq], t, 2);
            let qs = rand(2, dim, 900 + t);
            let ks = rand(2, dim, 910 + t);
            let vs = rand(2, dim, 920 + t);
            let sliced = |m: &Matrix<f64>| Matrix::from_fn(1, dim, |_, c| m[(0, c)]);
            let solo = lone.step_all(&[lone_a.seq], &sliced(&qs), &sliced(&ks), &sliced(&vs));
            assert_eq!(outs[0].output, solo[0].output, "step {t}");
            assert!(outs[1].residual().abs() < 1e-10, "readmitted seq checks");
        }
        assert!(engine.global_residual(a.seq).abs() < 1e-9);
        assert!(engine.global_residual(c.seq).abs() < 1e-9);
    }

    #[test]
    fn unchecked_matches_checked_outputs() {
        let cfg = MultiHeadConfig::new(2, AttentionConfig::new(4));
        let mut checked = DecodeBatch::<f64>::new(cfg, 4);
        let mut unchecked = DecodeBatch::<f64>::new(cfg, 4);
        let ids = vec![checked.add_sequence()];
        let _ = unchecked.add_sequence();
        for t in 0..5 {
            let qs = rand(1, 8, 300 + t);
            let ks = rand(1, 8, 400 + t);
            let vs = rand(1, 8, 500 + t);
            let a = checked.step_all(&ids, &qs, &ks, &vs);
            let b = unchecked.step_all_unchecked(&ids, &qs, &ks, &vs);
            assert_eq!(a[0].output, b[0], "step {t}");
        }
        // The session verdict covers all of `checked`'s tokens and none
        // of `unchecked`'s — and says so.
        assert_eq!(checked.unchecked_len(ids[0]), 0);
        assert_eq!(checked.checked_len(ids[0]), 5);
        assert_eq!(unchecked.unchecked_len(ids[0]), 5);
        assert_eq!(unchecked.checked_len(ids[0]), 0);
        // Both paths report the same total decoded-token count, and the
        // cache length decomposes into prompt + decoded.
        assert_eq!(checked.decoded_len(ids[0]), unchecked.decoded_len(ids[0]));
        assert_eq!(
            checked.seq_len(ids[0]),
            checked.prompt_len(ids[0]) + checked.decoded_len(ids[0])
        );
    }

    #[test]
    fn sliding_window_matches_decode_session() {
        let head = AttentionConfig::new(2).with_sliding_window(3);
        let cfg = MultiHeadConfig::new(1, head);
        let mut batch = DecodeBatch::<f64>::new(cfg, 2);
        let ids = vec![batch.add_sequence()];
        let mut session = DecodeSession::new(head);
        for t in 0..8 {
            let qs = rand(1, 2, 600 + t);
            let ks = rand(1, 2, 700 + t);
            let vs = rand(1, 2, 800 + t);
            let out = batch.step_all(&ids, &qs, &ks, &vs);
            let reference = session.step(qs.row(0), ks.row(0), vs.row(0));
            for (a, b) in out[0].output.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "step {t}");
            }
        }
    }

    #[test]
    fn corrupted_totals_are_visible() {
        let cfg = MultiHeadConfig::new(2, AttentionConfig::new(4));
        let mut batch = DecodeBatch::<f64>::new(cfg, 4);
        let ids = vec![batch.add_sequence()];
        for t in 0..4 {
            let _ = batch.step_all(
                &ids,
                &rand(1, 8, t),
                &rand(1, 8, 50 + t),
                &rand(1, 8, 90 + t),
            );
        }
        assert!(batch.global_residual(ids[0]).abs() < 1e-10);
        batch.seqs[ids[0]].totals.0 += 0.5; // simulated fault on the predicted side
        assert!(batch.global_residual(ids[0]).abs() > 0.4);
    }

    /// The demotion-rounding regression (the RNE/truncation split): every
    /// cache path that narrows to BF16 must round to nearest, ties to
    /// even — mantissa truncation gives a different bit pattern on these
    /// inputs, so this test fails loudly if either path regresses.
    #[test]
    fn round_bf16_is_rne_not_truncation() {
        // 0x3F80_8001 is just above the 1.0 / 1.0+ε tie: RNE rounds up to
        // 0x3F81, truncation keeps 0x3F80.
        let above_tie = f32::from_bits(0x3F80_8001) as f64;
        assert_eq!(round_bf16(above_tie).to_bits(), 0x3F81);
        // 0x3F81_8000 is an exact tie with an odd kept mantissa: RNE
        // rounds to even 0x3F82, truncation keeps 0x3F81.
        let tie_odd = f32::from_bits(0x3F81_8000) as f64;
        assert_eq!(round_bf16(tie_odd).to_bits(), 0x3F82);

        // Both narrowing paths — direct BF16 appends and in-place block
        // demotion — must produce exactly these RNE patterns.
        let row = [above_tie, tie_odd];
        let mut direct = KvCache::<f64>::with_policy(
            1,
            2,
            2,
            KvLayout::HeadMajor,
            KvFormat::Bf16,
            EvictionPolicy::RetainAll,
        );
        let s = direct.add_sequence();
        direct.append(s, &row, &row);
        let stored = direct.key_row(s, 0);
        assert_eq!(stored[0], round_bf16(above_tie).to_f64());
        assert_eq!(stored[1], round_bf16(tie_odd).to_f64());

        let mut mixed = KvCache::<f64>::with_policy(
            1,
            2,
            1,
            KvLayout::HeadMajor,
            KvFormat::Mixed { burst_blocks: 0 },
            EvictionPolicy::RetainAll,
        );
        let s = mixed.add_sequence();
        let outcome_first = mixed.append(s, &row, &row);
        assert!(outcome_first.demoted.is_empty(), "nothing to demote yet");
        // Claiming the second block demotes the first (burst 0).
        let outcome = mixed.append(s, &[1.0, 1.0], &[1.0, 1.0]);
        assert_eq!(outcome.demoted, vec![0..1]);
        let demoted = mixed.value_row(s, 0);
        assert_eq!(demoted[0], round_bf16(above_tie).to_f64());
        assert_eq!(demoted[1], round_bf16(tie_odd).to_f64());
        assert_eq!(mixed.demoted_rows(s), 1);
    }

    #[test]
    fn bf16_format_decode_matches_golden_on_rounded_history() {
        // A direct-BF16 engine must decode bit-identically to a plain f64
        // DecodeSession whose K/V inputs were pre-rounded through BF16:
        // the engine's mixed-operand scoring of BF16 blocks is pinned to
        // the f64 kernel over the widened values.
        let cfg = MultiHeadConfig::new(2, AttentionConfig::new(4));
        let dim = cfg.model_dim();
        let mut engine = DecodeBatch::<f64>::with_policy(
            cfg,
            4,
            KvLayout::HeadMajor,
            KvFormat::Bf16,
            EvictionPolicy::RetainAll,
        );
        let ids = vec![engine.add_sequence()];
        let mut sessions: Vec<DecodeSession<f64>> =
            (0..2).map(|_| DecodeSession::new(cfg.head)).collect();
        let round_row = |m: &Matrix<f64>| m.map(|x| round_bf16(x).to_f64());
        for t in 0..9 {
            let qs = rand(1, dim, 7000 + t);
            let ks = rand(1, dim, 7100 + t);
            let vs = rand(1, dim, 7200 + t);
            let outs = engine.step_all(&ids, &qs, &ks, &vs);
            assert!(
                outs[0].residual().abs() < 1e-9,
                "checksum rides rounded rows"
            );
            let (kr, vr) = (round_row(&ks), round_row(&vs));
            for (h, session) in sessions.iter_mut().enumerate() {
                let sub = |m: &Matrix<f64>| m.row(0)[h * 4..(h + 1) * 4].to_vec();
                let reference = session.step(&sub(&qs), &sub(&kr), &sub(&vr));
                for (c, r) in reference.iter().enumerate() {
                    assert_eq!(
                        outs[0].output[h * 4 + c].to_bits(),
                        r.to_bits(),
                        "step {t} head {h} lane {c}"
                    );
                }
            }
        }
        assert!(engine.global_residual(ids[0]).abs() < 1e-9);
    }

    #[test]
    fn mixed_format_decode_matches_golden_with_demotion_replayed() {
        // Mixed{burst}: blocks older than the burst demote to BF16 when a
        // new block is claimed. Replaying exactly those demotions into a
        // DecodeSession (demote_cached) keeps the engine bit-identical.
        let (block_rows, burst) = (2usize, 1usize);
        let cfg = MultiHeadConfig::new(2, AttentionConfig::new(4));
        let dim = cfg.model_dim();
        let mut engine = DecodeBatch::<f64>::with_policy(
            cfg,
            block_rows,
            KvLayout::HeadMajor,
            KvFormat::Mixed {
                burst_blocks: burst,
            },
            EvictionPolicy::RetainAll,
        );
        let ids = vec![engine.add_sequence()];
        let mut sessions: Vec<DecodeSession<f64>> =
            (0..2).map(|_| DecodeSession::new(cfg.head)).collect();
        for t in 0..12usize {
            // The engine appends position t, claiming block t/block_rows
            // when t is a block boundary and then demoting the oldest
            // still-native full block beyond the burst. Mirror that into
            // the golden sessions BEFORE their step sees the new token.
            if t.is_multiple_of(block_rows) && t / block_rows > burst {
                let demote = t / block_rows - burst - 1;
                for session in sessions.iter_mut() {
                    session.demote_cached(demote * block_rows..(demote + 1) * block_rows);
                }
            }
            let qs = rand(1, dim, 8000 + t as u64);
            let ks = rand(1, dim, 8100 + t as u64);
            let vs = rand(1, dim, 8200 + t as u64);
            let outs = engine.step_all(&ids, &qs, &ks, &vs);
            assert!(outs[0].residual().abs() < 1e-9, "step {t} checksum");
            for (h, session) in sessions.iter_mut().enumerate() {
                let sub = |m: &Matrix<f64>| m.row(0)[h * 4..(h + 1) * 4].to_vec();
                let reference = session.step(&sub(&qs), &sub(&ks), &sub(&vs));
                for (c, r) in reference.iter().enumerate() {
                    assert_eq!(
                        outs[0].output[h * 4 + c].to_bits(),
                        r.to_bits(),
                        "step {t} head {h} lane {c}"
                    );
                }
            }
        }
        assert!(engine.demoted_len(ids[0]) > 0, "demotion actually ran");
        assert!(
            engine.cache().allocated_blocks16() > 0,
            "demoted blocks live in the BF16 arena"
        );
        assert!(
            !engine.cache().free_block_list().is_empty() || engine.cache().recycled_blocks() > 0,
            "native storage returned to the free list"
        );
        assert!(engine.global_residual(ids[0]).abs() < 1e-9);
    }

    #[test]
    fn sliding_window_eviction_bit_identical_to_masked_retain_all() {
        // Eviction must be invisible to the arithmetic: an evicting
        // engine equals a retain-all engine whose head config carries the
        // same window — while actually freeing blocks and bounding
        // memory.
        let (block_rows, window_blocks) = (2usize, 2usize);
        let window = block_rows * window_blocks;
        let cfg = MultiHeadConfig::new(2, AttentionConfig::new(4));
        let masked_cfg =
            MultiHeadConfig::new(2, AttentionConfig::new(4).with_sliding_window(window));
        let dim = cfg.model_dim();
        let mut evicting = DecodeBatch::<f64>::with_policy(
            cfg,
            block_rows,
            KvLayout::HeadMajor,
            KvFormat::F64,
            EvictionPolicy::SlidingWindow { window_blocks },
        );
        let mut masked = DecodeBatch::<f64>::new(masked_cfg, block_rows);
        let e = vec![evicting.add_sequence()];
        let m = vec![masked.add_sequence()];
        for t in 0..16 {
            let qs = rand(1, dim, 8500 + t);
            let ks = rand(1, dim, 8600 + t);
            let vs = rand(1, dim, 8700 + t);
            let a = evicting.step_all(&e, &qs, &ks, &vs);
            let b = masked.step_all(&m, &qs, &ks, &vs);
            assert_eq!(a[0].output, b[0].output, "step {t}");
            assert_eq!(a[0].predicted.to_bits(), b[0].predicted.to_bits());
            assert!(a[0].residual().abs() < 1e-9);
            assert!(
                evicting.cache().seq_blocks(e[0]).len() <= window_blocks + 1,
                "retained blocks bounded by the window"
            );
        }
        assert_eq!(
            evicting.evicted_len(e[0]),
            16usize.saturating_sub(window) / block_rows * block_rows
        );
        assert!(evicting.evicted_len(e[0]) > 0, "eviction actually ran");
        assert!(
            evicting.cache().allocated_blocks() <= window_blocks + 2,
            "arena bounded: evicted blocks recycle instead of growing"
        );
        assert_eq!(masked.evicted_len(m[0]), 0);
        assert!(evicting.global_residual(e[0]).abs() < 1e-9);
    }

    #[test]
    fn chunked_admission_matches_synchronous_admit_bitwise() {
        let cfg = MultiHeadConfig::new(2, AttentionConfig::new(4));
        let dim = cfg.model_dim();
        let (pq, pk, pv) = (rand(11, dim, 90), rand(11, dim, 91), rand(11, dim, 92));

        let mut sync = DecodeBatch::<f64>::new(cfg, 4);
        let wholesale = sync.admit(&pq, &pk, &pv);

        let mut chunked = DecodeBatch::<f64>::new(cfg, 4);
        chunked.set_prefill_chunk(3);
        let seq = chunked.enqueue(&pq, &pk, &pv);
        assert!(chunked.is_pending(seq));
        assert_eq!(chunked.pending_len(seq), 11);
        assert!(chunked.take_admitted(seq).is_none(), "not done yet");
        let mut steps = 0;
        while chunked.is_pending(seq) {
            let processed = chunked.prefill_step();
            assert!(processed <= 3, "chunk bound holds");
            steps += 1;
        }
        assert_eq!(steps, 4, "11 tokens / chunk 3 = 4 chunks");
        assert_eq!(chunked.prompt_len(seq), 11);
        let admitted = chunked.take_admitted(seq).expect("completed");
        assert!(chunked.take_admitted(seq).is_none(), "collected once");

        // Per-query outputs are bit-identical to the synchronous path;
        // the chunk-folded checksums still verify the prompt.
        assert_eq!(admitted.output, wholesale.output);
        assert!(admitted.residual().abs() < 1e-9);
        assert!(chunked.global_residual(seq).abs() < 1e-9);

        // And the cached state is the same: subsequent decode matches.
        for t in 0..3 {
            let qs = rand(1, dim, 9500 + t);
            let ks = rand(1, dim, 9600 + t);
            let vs = rand(1, dim, 9700 + t);
            let a = sync.step_all(&[wholesale.seq], &qs, &ks, &vs);
            let b = chunked.step_all(&[seq], &qs, &ks, &vs);
            assert_eq!(a[0].output, b[0].output, "post-admission step {t}");
        }
    }

    #[test]
    fn step_all_interleaves_pending_prefill_with_decode() {
        let cfg = MultiHeadConfig::new(2, AttentionConfig::new(4));
        let dim = cfg.model_dim();
        let mut engine = DecodeBatch::<f64>::new(cfg, 4);
        engine.set_prefill_chunk(4);
        // One live decoding sequence...
        let live = engine.admit(&rand(2, dim, 50), &rand(2, dim, 51), &rand(2, dim, 52));
        // ...and a long prompt that arrives mid-flight.
        let seq = engine.enqueue(&rand(10, dim, 60), &rand(10, dim, 61), &rand(10, dim, 62));
        for t in 0..3 {
            let qs = rand(1, dim, 9000 + t);
            let ks = rand(1, dim, 9100 + t);
            let vs = rand(1, dim, 9200 + t);
            // Decode proceeds while the prompt admits 4 tokens per step —
            // the long prompt never stalls the batch.
            let outs = engine.step_all(&[live.seq], &qs, &ks, &vs);
            assert!(outs[0].residual().abs() < 1e-9);
            assert_eq!(
                engine.pending_len(seq),
                10usize.saturating_sub(4 * (t as usize + 1))
            );
        }
        assert!(
            !engine.is_pending(seq),
            "admitted across three decode steps"
        );
        let admitted = engine.take_admitted(seq).expect("ready");
        assert!(admitted.residual().abs() < 1e-9);
        // The newcomer joins the decode batch seamlessly.
        let qs = rand(2, dim, 9300);
        let ks = rand(2, dim, 9301);
        let vs = rand(2, dim, 9302);
        let outs = engine.step_all(&[live.seq, seq], &qs, &ks, &vs);
        assert!(outs[1].residual().abs() < 1e-9);
        assert_eq!(engine.seq_len(seq), 11);
        assert_eq!(engine.prompt_len(seq) + engine.decoded_len(seq), 11);
    }

    #[test]
    #[should_panic(expected = "pending prompt chunks")]
    fn decoding_a_pending_sequence_panics() {
        let cfg = MultiHeadConfig::new(1, AttentionConfig::new(2));
        let mut engine = DecodeBatch::<f64>::new(cfg, 4);
        engine.set_prefill_chunk(2);
        let seq = engine.enqueue(&rand(8, 2, 1), &rand(8, 2, 2), &rand(8, 2, 3));
        let m = rand(1, 2, 4);
        let _ = engine.step_all(&[seq], &m, &m, &m);
    }

    #[test]
    #[should_panic(expected = "duplicate sequence id")]
    fn duplicate_ids_panic() {
        let cfg = MultiHeadConfig::new(1, AttentionConfig::new(2));
        let mut batch = DecodeBatch::<f64>::new(cfg, 4);
        let s = batch.add_sequence();
        let m = rand(2, 2, 1);
        let _ = batch.step_all(&[s, s], &m, &m, &m);
    }

    #[test]
    #[should_panic(expected = "unknown sequence id")]
    fn unknown_id_panics() {
        let cfg = MultiHeadConfig::new(1, AttentionConfig::new(2));
        let mut batch = DecodeBatch::<f64>::new(cfg, 4);
        let m = rand(1, 2, 1);
        let _ = batch.step_all(&[0], &m, &m, &m);
    }

    #[test]
    #[should_panic(expected = "is retired")]
    fn stepping_retired_sequence_panics() {
        let cfg = MultiHeadConfig::new(1, AttentionConfig::new(2));
        let mut batch = DecodeBatch::<f64>::new(cfg, 4);
        let s = batch.add_sequence();
        let m = rand(1, 2, 1);
        let _ = batch.step_all(&[s], &m, &m, &m);
        batch.retire(s);
        let _ = batch.step_all(&[s], &m, &m, &m);
    }

    #[test]
    fn gqa_decode_matches_per_query_head_sessions_bitwise() {
        // The grouped engine: one cached K/V stream per kv head, each
        // group pass feeding group_size query states. Every query head
        // must equal a plain DecodeSession fed its group's K/V slices,
        // bit for bit, at every layout and block size.
        let d = 4;
        let gqa = GqaConfig::new(4, 2, AttentionConfig::new(d));
        let topo = gqa.topology();
        for layout in [KvLayout::HeadMajor, KvLayout::TokenMajor] {
            for block_rows in [1, 3, 16] {
                let mut engine = DecodeBatch::<f64>::with_layout(gqa, block_rows, layout);
                let ids = vec![engine.add_sequence(), engine.add_sequence()];
                let mut sessions: Vec<Vec<DecodeSession<f64>>> = (0..2)
                    .map(|_| (0..4).map(|_| DecodeSession::new(gqa.head)).collect())
                    .collect();
                for t in 0..7u64 {
                    let qs = rand(2, topo.q_dim(), 4000 + t);
                    let ks = rand(2, topo.kv_dim(), 4100 + t);
                    let vs = rand(2, topo.kv_dim(), 4200 + t);
                    let outs = engine.step_all(&ids, &qs, &ks, &vs);
                    for (i, out) in outs.iter().enumerate() {
                        assert!(out.residual().abs() < 1e-10, "fused check holds");
                        for (h, session) in sessions[i].iter_mut().enumerate() {
                            let g = topo.group_of(h);
                            let reference = session.step(
                                &qs.row(i)[topo.q_head_cols(h)],
                                &ks.row(i)[topo.kv_head_cols(g)],
                                &vs.row(i)[topo.kv_head_cols(g)],
                            );
                            for (c, r) in reference.iter().enumerate() {
                                assert_eq!(
                                    out.output[h * d + c].to_bits(),
                                    r.to_bits(),
                                    "{layout:?} block_rows {block_rows} step {t} seq {i} \
                                     head {h} lane {c}"
                                );
                            }
                        }
                    }
                }
                for &id in &ids {
                    assert!(engine.global_residual(id).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn gqa_decode_matches_grouped_golden_session_bitwise() {
        // The dedicated GQA golden model (`GqaDecodeSession`) must agree
        // with the batched engine token for token.
        let gqa = GqaConfig::new(6, 3, AttentionConfig::new(4));
        let topo = gqa.topology();
        let mut engine = DecodeBatch::<f64>::new(gqa, 4);
        let ids = vec![engine.add_sequence()];
        let mut golden = crate::decode::GqaDecodeSession::<f64>::new(topo);
        for t in 0..9u64 {
            let qs = rand(1, topo.q_dim(), 4300 + t);
            let ks = rand(1, topo.kv_dim(), 4400 + t);
            let vs = rand(1, topo.kv_dim(), 4500 + t);
            let outs = engine.step_all(&ids, &qs, &ks, &vs);
            let reference = golden.step(qs.row(0), ks.row(0), vs.row(0));
            for (c, (a, b)) in outs[0].output.iter().zip(&reference).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "step {t} lane {c}");
            }
        }
    }

    #[test]
    fn gqa_arena_is_kv_head_proportional() {
        // The cache allocates per kv head: the grouped engine's arena
        // (and streamed bytes) must shrink by group_size relative to the
        // ungrouped engine under identical traffic.
        let d = 8;
        let head = AttentionConfig::new(d);
        let mha = MultiHeadConfig::new(4, head);
        let gqa = GqaConfig::new(4, 1, head);
        let mut wide = DecodeBatch::<f64>::new(mha, 4);
        let mut narrow = DecodeBatch::<f64>::new(gqa, 4);
        let w = vec![wide.add_sequence()];
        let n = vec![narrow.add_sequence()];
        for t in 0..12u64 {
            let qs = rand(1, 4 * d, 4600 + t);
            let ks = rand(1, 4 * d, 4700 + t);
            let vs = rand(1, 4 * d, 4800 + t);
            let kv_slice = |m: &Matrix<f64>| Matrix::from_fn(1, d, |_, c| m[(0, c)]);
            let _ = wide.step_all(&w, &qs, &ks, &vs);
            let _ = narrow.step_all(&n, &qs, &kv_slice(&ks), &kv_slice(&vs));
        }
        assert_eq!(wide.cache().width(), 4 * d);
        assert_eq!(narrow.cache().width(), d, "kv-head-proportional rows");
        assert_eq!(
            wide.cache().allocated_blocks(),
            narrow.cache().allocated_blocks(),
            "same block count"
        );
        // Same retained positions, 4x narrower rows => 1/4 the elements.
        assert!(narrow.global_residual(n[0]).abs() < 1e-9);
    }

    #[test]
    fn gqa_group1_topology_is_the_mha_engine_bitwise() {
        // kv_heads == query_heads must be *exactly* the per-query-head
        // engine — same code path, bit for bit, prompt and decode.
        let head = AttentionConfig::new(4);
        let dim = 3 * 4;
        let (pq, pk, pv) = (rand(6, dim, 30), rand(6, dim, 31), rand(6, dim, 32));
        let mut a = DecodeBatch::<f64>::with_policy(
            GqaConfig::new(3, 3, head),
            2,
            KvLayout::HeadMajor,
            KvFormat::Mixed { burst_blocks: 1 },
            EvictionPolicy::SlidingWindow { window_blocks: 2 },
        );
        let mut b = DecodeBatch::<f64>::with_policy(
            MultiHeadConfig::new(3, head),
            2,
            KvLayout::HeadMajor,
            KvFormat::Mixed { burst_blocks: 1 },
            EvictionPolicy::SlidingWindow { window_blocks: 2 },
        );
        let pa = a.admit(&pq, &pk, &pv);
        let pb = b.admit(&pq, &pk, &pv);
        assert_eq!(pa.output, pb.output);
        assert_eq!(pa.predicted.to_bits(), pb.predicted.to_bits());
        for t in 0..8u64 {
            let qs = rand(1, dim, 5000 + t);
            let ks = rand(1, dim, 5100 + t);
            let vs = rand(1, dim, 5200 + t);
            let oa = a.step_all(&[pa.seq], &qs, &ks, &vs);
            let ob = b.step_all(&[pb.seq], &qs, &ks, &vs);
            assert_eq!(oa[0].output, ob[0].output, "step {t}");
            assert_eq!(oa[0].predicted.to_bits(), ob[0].predicted.to_bits());
        }
        assert_eq!(
            a.global_residual(pa.seq).to_bits(),
            b.global_residual(pb.seq).to_bits()
        );
    }

    #[test]
    fn gqa_chunked_admission_matches_synchronous_admit() {
        // Chunked prefill schedules (prompt, kv_head) group passes; the
        // result must equal the synchronous admit bit for bit (F64, no
        // demotion), like the MHA path.
        let gqa = GqaConfig::new(4, 2, AttentionConfig::new(4));
        let topo = gqa.topology();
        let (pq, pk, pv) = (
            rand(11, topo.q_dim(), 80),
            rand(11, topo.kv_dim(), 81),
            rand(11, topo.kv_dim(), 82),
        );
        let mut sync = DecodeBatch::<f64>::new(gqa, 4);
        let wholesale = sync.admit(&pq, &pk, &pv);
        assert!(wholesale.residual().abs() < 1e-9);

        let mut chunked = DecodeBatch::<f64>::new(gqa, 4);
        chunked.set_prefill_chunk(3);
        let seq = chunked.enqueue(&pq, &pk, &pv);
        while chunked.is_pending(seq) {
            chunked.prefill_step();
        }
        let admitted = chunked.take_admitted(seq).expect("completed");
        assert_eq!(admitted.output, wholesale.output);
        assert_eq!(admitted.predicted.to_bits(), wholesale.predicted.to_bits());
        assert_eq!(admitted.actual.to_bits(), wholesale.actual.to_bits());
    }

    #[test]
    fn for_target_latency_matches_the_analytic_bound() {
        for slo in 1..=16usize {
            for live in [0usize, 1, 2, 5, 7, 16, 33, 100, 1000] {
                let p = ScrubPolicy::for_target_latency(slo, live);
                assert_eq!(p.blocks_per_step, live.div_ceil(slo).max(1));
                // The scrubber's detection bound under the tuned policy
                // honors the SLO at this load point.
                assert!(
                    live.div_ceil(p.blocks_per_step) <= slo,
                    "ceil({live}/{}) > {slo}",
                    p.blocks_per_step
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "detection-latency SLO must be positive")]
    fn for_target_latency_rejects_a_zero_slo() {
        let _ = ScrubPolicy::for_target_latency(0, 10);
    }

    #[test]
    fn resubmit_reports_every_race_as_a_typed_error() {
        let topo = GqaConfig::new(2, 2, AttentionConfig::new(4)).topology();
        let kd = topo.kv_dim();
        let mut e = DecodeBatch::<f64>::with_policy(
            topo,
            4,
            KvLayout::HeadMajor,
            KvFormat::F64,
            EvictionPolicy::RetainAll,
        );
        e.enable_recovery_log();
        let seq = e.add_sequence();
        let (k, v) = (rand(6, kd, 1), rand(6, kd, 2));
        e.prefill(seq, &k, &v);

        // A live sequence with cached rows refuses a resubmission.
        assert!(matches!(
            e.resubmit(seq, &k, &v),
            Err(ResubmitError::NotEmpty { cached_rows: 6, .. })
        ));

        // Quarantine with a full log auto-requeues: the slot is pending.
        let q = e.quarantine(seq);
        assert_eq!(q.requeued_rows, 6);
        assert!(matches!(
            e.resubmit(seq, &k, &v),
            Err(ResubmitError::AlreadyPending { .. })
        ));
        while e.is_pending(seq) {
            e.prefill_step();
        }

        // Shape races: wrong width, mismatched row counts, no rows.
        let empty = e.add_sequence();
        let wide = rand(6, kd + 1, 3);
        assert!(matches!(
            e.resubmit(empty, &wide, &wide),
            Err(ResubmitError::WidthMismatch { .. })
        ));
        let short = rand(5, kd, 4);
        assert!(matches!(
            e.resubmit(empty, &k, &short),
            Err(ResubmitError::RowMismatch {
                k_rows: 6,
                v_rows: 5
            })
        ));
        let none = rand(0, kd, 5);
        assert!(matches!(
            e.resubmit(empty, &none, &none),
            Err(ResubmitError::EmptyHistory)
        ));

        // A retired slot lost the race entirely.
        e.retire(empty);
        assert!(matches!(
            e.resubmit(empty, &k, &v),
            Err(ResubmitError::Retired { .. })
        ));

        // Every error leaves the engine serving: a fresh slot accepts.
        let fresh = e.add_sequence();
        assert!(e.resubmit(fresh, &k, &v).is_ok());
        assert!(e.is_pending(fresh));
    }

    #[test]
    fn voluntary_demotion_is_deterministic_idempotent_and_audit_clean() {
        let topo = GqaConfig::new(4, 2, AttentionConfig::new(4)).topology();
        let mk = || {
            DecodeBatch::<f64>::with_policy(
                topo,
                4,
                KvLayout::HeadMajor,
                KvFormat::F64,
                EvictionPolicy::RetainAll,
            )
        };
        let (mut a, mut b) = (mk(), mk());
        let (k, v) = (rand(11, topo.kv_dim(), 7), rand(11, topo.kv_dim(), 8));
        for e in [&mut a, &mut b] {
            let s = e.add_sequence();
            e.prefill(s, &k, &v);
        }
        // 11 rows over 4-row blocks: 2 full blocks + 1 partial. Keeping a
        // 1-block burst demotes exactly the oldest full block.
        let rows = a.demote(0, 1);
        assert_eq!(rows, 4);
        assert_eq!(a.demoted_len(0), 4);
        assert_eq!(a.demote(0, 1), 0, "demotion is idempotent at a length");
        assert!(a.audit(0, 1e-6).is_empty(), "demoted checksums rebuilt");

        // Same call on the twin: decode stays lockstep bit for bit, and
        // the online verdict keeps predicting the rounded storage.
        assert_eq!(b.demote(0, 1), 4);
        for t in 0..4u64 {
            let qs = rand(1, topo.q_dim(), 600 + t);
            let ks = rand(1, topo.kv_dim(), 700 + t);
            let vs = rand(1, topo.kv_dim(), 800 + t);
            let oa = a.step_all(&[0], &qs, &ks, &vs);
            let ob = b.step_all(&[0], &qs, &ks, &vs);
            assert_eq!(oa[0].output, ob[0].output);
            assert!(oa[0].residual().abs() < 1e-6);
        }

        // Demoting everything (burst 0): 15 rows by now = 3 full blocks,
        // of which one is already BF16 — the other two convert; the
        // partial tail block stays native.
        let more = a.demote(0, 0);
        assert_eq!(more, 8);
        assert!(a.audit(0, 1e-6).is_empty());
    }

    #[test]
    fn live_kv_bytes_tracks_demotion_and_retirement() {
        let topo = GqaConfig::new(2, 2, AttentionConfig::new(4)).topology();
        let mut e = DecodeBatch::<f64>::with_policy(
            topo,
            4,
            KvLayout::HeadMajor,
            KvFormat::F64,
            EvictionPolicy::RetainAll,
        );
        let width = topo.kv_dim();
        let block_bytes_f64 = 2 * 4 * width * core::mem::size_of::<f64>();
        let block_bytes_bf16 = 2 * 4 * width * 2;
        assert_eq!(e.cache().live_kv_bytes(), 0);
        let s = e.add_sequence();
        e.prefill(s, &rand(9, width, 1), &rand(9, width, 2));
        // 9 rows -> 3 blocks (partial last block counts fully: its arena
        // storage is claimed whether or not every row is filled).
        assert_eq!(e.cache().live_kv_bytes(), 3 * block_bytes_f64);
        let rows = e.demote(s, 1);
        assert_eq!(rows, 4);
        assert_eq!(
            e.cache().live_kv_bytes(),
            2 * block_bytes_f64 + block_bytes_bf16
        );
        e.retire(s);
        assert_eq!(e.cache().live_kv_bytes(), 0);
    }

    /// Vertical concatenation (prefix ‖ suffix) for unshared replays.
    fn vcat(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
        let mut data = Vec::with_capacity((a.rows() + b.rows()) * a.cols());
        for i in 0..a.rows() {
            data.extend_from_slice(a.row(i));
        }
        for i in 0..b.rows() {
            data.extend_from_slice(b.row(i));
        }
        Matrix::from_vec(a.rows() + b.rows(), a.cols(), data)
    }

    #[test]
    fn shared_admission_is_bit_identical_to_unshared_replay() {
        let topo = GqaConfig::new(4, 2, AttentionConfig::new(4)).topology();
        let (qd, kd) = (topo.q_dim(), topo.kv_dim());
        let mk = || {
            let mut e = DecodeBatch::<f64>::with_policy(
                topo,
                4,
                KvLayout::HeadMajor,
                KvFormat::F64,
                EvictionPolicy::RetainAll,
            );
            // Prefix length (8) is a multiple of the chunk, so the
            // unshared replay's chunk schedule has a boundary exactly at
            // the prefix end — the alignment enqueue_shared guarantees.
            e.set_prefill_chunk(4);
            e
        };
        let (mut shared, mut plain) = (mk(), mk());
        let (pq, pk, pv) = (rand(8, qd, 10), rand(8, kd, 11), rand(8, kd, 12));
        let id = shared.register_prefix(&pq, &pk, &pv);
        assert_eq!(shared.prefix_rows(id), 8);

        // Three readers: short suffix, suffix spilling past one chunk,
        // and an empty suffix (prefix-only admission).
        let suffix_lens = [3usize, 5, 0];
        let (mut sids, mut pids) = (Vec::new(), Vec::new());
        for (i, &n) in suffix_lens.iter().enumerate() {
            let i = i as u64;
            let (sq, sk, sv) = (
                rand(n, qd, 20 + i),
                rand(n, kd, 30 + i),
                rand(n, kd, 40 + i),
            );
            sids.push(shared.enqueue_shared(id, &sq, &sk, &sv));
            pids.push(plain.enqueue(&vcat(&pq, &sq), &vcat(&pk, &sk), &vcat(&pv, &sv)));
        }
        assert_eq!(shared.prefix_readers(id), 3);
        loop {
            let (a, b) = (shared.prefill_step(), plain.prefill_step());
            if a == 0 && b == 0 {
                break;
            }
        }

        // Admitted suffix rows and checksum totals match the unshared
        // replay's tail bitwise; the prefix rows were scored once, at
        // registration.
        for ((&s, &p), &n) in sids.iter().zip(&pids).zip(&suffix_lens) {
            let sa = shared.take_admitted(s).expect("shared admitted");
            let pa = plain.take_admitted(p).expect("plain admitted");
            assert_eq!(sa.output.rows(), n, "shared admission covers the suffix");
            for r in 0..n {
                for (c, (x, y)) in sa
                    .output
                    .row(r)
                    .iter()
                    .zip(pa.output.row(8 + r))
                    .enumerate()
                {
                    assert_eq!(x.to_bits(), y.to_bits(), "suffix row {r} lane {c}");
                }
            }
            assert_eq!(sa.predicted.to_bits(), pa.predicted.to_bits());
            assert_eq!(sa.actual.to_bits(), pa.actual.to_bits());
        }
        // The prefix's physical blocks are counted once, not per reader.
        assert!(
            shared.cache().live_unique_blocks() < plain.cache().live_unique_blocks(),
            "sharing must hold fewer unique blocks ({} vs {})",
            shared.cache().live_unique_blocks(),
            plain.cache().live_unique_blocks()
        );

        // Decode stays lockstep bit for bit, with the batched
        // shared-block path engaged on the shared side only.
        for t in 0..6u64 {
            let qs = rand(3, qd, 900 + t);
            let ks = rand(3, kd, 910 + t);
            let vs = rand(3, kd, 920 + t);
            let oa = shared.step_all(&sids, &qs, &ks, &vs);
            let ob = plain.step_all(&pids, &qs, &ks, &vs);
            for (i, (a, b)) in oa.iter().zip(&ob).enumerate() {
                assert_eq!(a.output, b.output, "step {t} seq {i}");
                assert!(a.residual().abs() < 1e-9);
            }
        }
        assert!(shared.shared_score_tiles() > 0, "batched path engaged");
        assert_eq!(plain.shared_score_tiles(), 0, "nothing shared to batch");
        for &s in &sids {
            assert!(shared.global_residual(s).abs() < 1e-9);
        }
    }

    #[test]
    fn shared_scoring_toggle_is_bitwise_invariant() {
        let topo = GqaConfig::new(4, 2, AttentionConfig::new(4)).topology();
        let (qd, kd) = (topo.q_dim(), topo.kv_dim());
        let mk = || {
            let mut e = DecodeBatch::<f64>::with_policy(
                topo,
                4,
                KvLayout::HeadMajor,
                KvFormat::F64,
                EvictionPolicy::RetainAll,
            );
            e.set_prefill_chunk(4);
            e
        };
        let (mut on, mut off) = (mk(), mk());
        off.set_shared_scoring(false);
        assert!(on.shared_scoring() && !off.shared_scoring());
        let (pq, pk, pv) = (rand(8, qd, 70), rand(8, kd, 71), rand(8, kd, 72));
        let mut ids = Vec::new();
        for e in [&mut on, &mut off] {
            let id = e.register_prefix(&pq, &pk, &pv);
            let mut seqs = Vec::new();
            for i in 0..4u64 {
                let n = 1 + i as usize;
                let (sq, sk, sv) = (
                    rand(n, qd, 80 + i),
                    rand(n, kd, 90 + i),
                    rand(n, kd, 100 + i),
                );
                seqs.push(e.enqueue_shared(id, &sq, &sk, &sv));
            }
            while e.prefill_step() > 0 {}
            ids.push(seqs);
        }
        assert_eq!(ids[0], ids[1]);
        for t in 0..5u64 {
            let qs = rand(4, qd, 1900 + t);
            let ks = rand(4, kd, 1910 + t);
            let vs = rand(4, kd, 1920 + t);
            let oa = on.step_all(&ids[0], &qs, &ks, &vs);
            let ob = off.step_all(&ids[1], &qs, &ks, &vs);
            for (i, (a, b)) in oa.iter().zip(&ob).enumerate() {
                assert_eq!(a.output, b.output, "step {t} seq {i}");
            }
        }
        assert!(on.shared_score_tiles() > 0, "fast path on");
        assert_eq!(off.shared_score_tiles(), 0, "forced k-GEMV baseline");
    }

    #[test]
    fn refcounts_and_cow_track_shared_block_ownership() {
        let topo = GqaConfig::new(2, 2, AttentionConfig::new(4)).topology();
        let (qd, kd) = (topo.q_dim(), topo.kv_dim());
        let mut e = DecodeBatch::<f64>::with_policy(
            topo,
            4,
            KvLayout::HeadMajor,
            KvFormat::F64,
            EvictionPolicy::RetainAll,
        );
        e.set_prefill_chunk(3);
        // 6-row prefix over 4-row blocks: one full block + a partial
        // tail the readers must copy-on-write before appending into.
        let id = e.register_prefix(&rand(6, qd, 1), &rand(6, kd, 2), &rand(6, kd, 3));
        let blocks = e.prefix_blocks(id).to_vec();
        assert_eq!(blocks.len(), 2);
        for &b in &blocks {
            assert_eq!(e.cache().block_ref_count(b), 1, "registry's own ref");
        }
        let s0 = e.enqueue_shared(id, &rand(3, qd, 4), &rand(3, kd, 5), &rand(3, kd, 6));
        let s1 = e.enqueue_shared(id, &rand(2, qd, 7), &rand(2, kd, 8), &rand(2, kd, 9));
        for &b in &blocks {
            assert_eq!(e.cache().block_ref_count(b), 3, "registry + two readers");
        }
        assert_eq!(e.cache().cow_copies(), 0);
        while e.prefill_step() > 0 {}

        // Each reader's first suffix append hit the shared partial tail
        // and diverged onto a private copy; the full block stays shared.
        assert_eq!(e.cache().cow_copies(), 2);
        assert_eq!(e.cache().block_ref_count(blocks[0]), 3);
        assert_eq!(
            e.cache().block_ref_count(blocks[1]),
            1,
            "tail kept only the registry's ref after both readers diverged"
        );
        // Unique storage: shared full block + registry tail + s0's two
        // private blocks (rows 4..9) + s1's one (rows 4..8).
        assert_eq!(e.cache().live_unique_blocks(), 5);

        e.retire(s0);
        assert_eq!(e.cache().block_ref_count(blocks[0]), 2);
        e.release_prefix(id);
        assert_eq!(e.cache().block_ref_count(blocks[0]), 1, "s1 still reads it");
        assert_eq!(e.cache().block_ref_count(blocks[1]), 0, "tail freed");
        e.retire(s1);
        assert_eq!(
            e.cache().live_unique_blocks(),
            0,
            "no leaks, no double frees"
        );
    }

    #[test]
    fn prefix_registry_finds_by_token_hash_and_releases() {
        let topo = GqaConfig::new(2, 1, AttentionConfig::new(4)).topology();
        let (qd, kd) = (topo.q_dim(), topo.kv_dim());
        let mut e = DecodeBatch::<f64>::new(topo, 4);
        let (q0, k0, v0) = (rand(4, qd, 11), rand(4, kd, 12), rand(4, kd, 13));
        let (q1, k1, v1) = (rand(4, qd, 21), rand(4, kd, 22), rand(4, kd, 23));
        let id0 = e.register_prefix(&q0, &k0, &v0);
        let id1 = e.register_prefix(&q1, &k1, &v1);
        let h0 = DecodeBatch::<f64>::prefix_token_hash(&k0, &v0);
        let h1 = DecodeBatch::<f64>::prefix_token_hash(&k1, &v1);
        assert_ne!(h0, h1);
        assert_eq!(e.find_prefix(h0), Some(id0));
        assert_eq!(e.find_prefix(h1), Some(id1));
        assert_eq!(e.prefix_ids(), vec![id0, id1]);
        assert_eq!(e.prefix_output(id0).rows(), 4);
        e.release_prefix(id0);
        assert_eq!(e.find_prefix(h0), None);
        assert_eq!(e.prefix_ids(), vec![id1]);
        assert_eq!(
            e.cache().live_unique_blocks(),
            1,
            "only id1's block remains"
        );
    }

    #[test]
    fn shared_admission_composes_with_mixed_and_sliding_window() {
        let topo = GqaConfig::new(4, 2, AttentionConfig::new(4)).topology();
        let (qd, kd) = (topo.q_dim(), topo.kv_dim());
        for (format, eviction) in [
            (
                KvFormat::Mixed { burst_blocks: 1 },
                EvictionPolicy::RetainAll,
            ),
            (
                KvFormat::F64,
                EvictionPolicy::SlidingWindow { window_blocks: 2 },
            ),
            (
                KvFormat::Mixed { burst_blocks: 1 },
                EvictionPolicy::SlidingWindow { window_blocks: 3 },
            ),
        ] {
            let mk = || {
                let mut e =
                    DecodeBatch::<f64>::with_policy(topo, 4, KvLayout::HeadMajor, format, eviction);
                e.set_prefill_chunk(4);
                e
            };
            let (mut shared, mut plain) = (mk(), mk());
            let (pq, pk, pv) = (rand(8, qd, 50), rand(8, kd, 51), rand(8, kd, 52));
            let id = shared.register_prefix(&pq, &pk, &pv);
            let (mut sids, mut pids) = (Vec::new(), Vec::new());
            for i in 0..2u64 {
                let n = 3 + 2 * i as usize;
                let (sq, sk, sv) = (
                    rand(n, qd, 60 + i),
                    rand(n, kd, 61 + i),
                    rand(n, kd, 62 + i),
                );
                sids.push(shared.enqueue_shared(id, &sq, &sk, &sv));
                pids.push(plain.enqueue(&vcat(&pq, &sq), &vcat(&pk, &sk), &vcat(&pv, &sv)));
            }
            loop {
                let (a, b) = (shared.prefill_step(), plain.prefill_step());
                if a == 0 && b == 0 {
                    break;
                }
            }
            for (&s, &p) in sids.iter().zip(&pids) {
                let sa = shared.take_admitted(s).expect("shared admitted");
                let pa = plain.take_admitted(p).expect("plain admitted");
                let skip = pa.output.rows() - sa.output.rows();
                for r in 0..sa.output.rows() {
                    for (x, y) in sa.output.row(r).iter().zip(pa.output.row(skip + r)) {
                        assert_eq!(x.to_bits(), y.to_bits(), "{format:?} {eviction:?} row {r}");
                    }
                }
            }
            // Long enough for demotion bursts and window evictions to
            // fire on (CoW'd copies of) the shared prefix blocks.
            for t in 0..10u64 {
                let qs = rand(2, qd, 2900 + t);
                let ks = rand(2, kd, 2910 + t);
                let vs = rand(2, kd, 2920 + t);
                let oa = shared.step_all(&sids, &qs, &ks, &vs);
                let ob = plain.step_all(&pids, &qs, &ks, &vs);
                for (i, (a, b)) in oa.iter().zip(&ob).enumerate() {
                    assert_eq!(
                        a.output, b.output,
                        "{format:?} {eviction:?} step {t} seq {i}"
                    );
                }
            }
            for &s in &sids {
                assert!(shared.audit(s, 1e-6).is_empty(), "{format:?} {eviction:?}");
            }
        }
    }

    #[test]
    fn poisoned_shared_block_repairs_in_place_for_all_readers() {
        let topo = GqaConfig::new(2, 2, AttentionConfig::new(4)).topology();
        let (qd, kd) = (topo.q_dim(), topo.kv_dim());
        let mk = || {
            let mut e = DecodeBatch::<f64>::with_policy(
                topo,
                4,
                KvLayout::HeadMajor,
                KvFormat::F64,
                EvictionPolicy::RetainAll,
            );
            e.set_prefill_chunk(4);
            e.enable_recovery_log();
            let id = e.register_prefix(&rand(8, qd, 30), &rand(8, kd, 31), &rand(8, kd, 32));
            let s0 = e.enqueue_shared(id, &rand(2, qd, 33), &rand(2, kd, 34), &rand(2, kd, 35));
            let s1 = e.enqueue_shared(id, &rand(3, qd, 36), &rand(3, kd, 37), &rand(3, kd, 38));
            while e.prefill_step() > 0 {}
            e.take_admitted(s0);
            e.take_admitted(s1);
            (e, s0, s1)
        };
        let ((mut faulty, s0, s1), (mut twin, t0, t1)) = (mk(), mk());

        // Flip a stored K bit inside the shared prefix block: ONE
        // physical fault, visible through every reader's audit.
        faulty.flip_storage_bit(s0, 1, 0, 2, true, 40);
        assert!(!faulty.audit(s0, 1e-9).is_empty(), "reader 0 alarms");
        assert!(!faulty.audit(s1, 1e-9).is_empty(), "reader 1 alarms");

        // Repair through one reader: the in-place block rebuild from the
        // recovery log fixes the storage every reader maps.
        let report = faulty.audit_and_repair(s0, 1e-9);
        assert!(report.rows_rewritten > 0, "log-backed block rewrite ran");
        assert!(faulty.audit(s0, 1e-9).is_empty());
        assert!(
            faulty.audit(s1, 1e-9).is_empty(),
            "one repair serves all readers"
        );

        // Both readers decode bit-identically to the never-faulted twin.
        for t in 0..4u64 {
            let qs = rand(2, qd, 3900 + t);
            let ks = rand(2, kd, 3910 + t);
            let vs = rand(2, kd, 3920 + t);
            let oa = faulty.step_all(&[s0, s1], &qs, &ks, &vs);
            let ob = twin.step_all(&[t0, t1], &qs, &ks, &vs);
            for (a, b) in oa.iter().zip(&ob) {
                assert_eq!(a.output, b.output, "step {t}");
                assert!(a.residual().abs() < 1e-9);
            }
        }
    }
}
