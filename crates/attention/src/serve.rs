//! SLO-aware serving frontend over [`DecodeBatch`]: the layer that keeps
//! the engine healthy under *load*.
//!
//! PRs 6–7 made the engine survive live corruption (block localization,
//! scrubbing, quarantine-and-recompute); this module adds the missing
//! production shell around it:
//!
//! * a **request queue** with arrival timestamps (step-indexed, so every
//!   schedule is deterministic) and tenant/priority classes;
//! * a **step-driven scheduler** that packs the batch under a per-step
//!   token budget: chunked-prefill admission advances only under its
//!   budget share ([`DecodeBatch::prefill_step_for`]) while decode
//!   rides every remaining token of the same step
//!   ([`DecodeBatch::step_decode`]) — pending chunks never stall the
//!   decode batch — with deficit-fair tenant selection and load
//!   shedding when the queue exceeds its bound;
//! * **shared system-prompt prefixes**: requests naming the same
//!   `(prefix_seed, prefix_tokens)` pair share the prefix's KV blocks
//!   through the engine's copy-on-write prefix registry — the first
//!   reader registers (one O(L) prefill), every later reader admits in
//!   O(suffix) work and blocks ([`DecodeBatch::enqueue_shared`]);
//! * **graceful degradation under arena pressure**: first demote a
//!   victim's cold blocks to BF16 ([`DecodeBatch::demote`], the soft
//!   tier), then evict-and-requeue with recompute-on-resume
//!   ([`DecodeBatch::quarantine`] + [`DecodeBatch::resubmit`] —
//!   preemption is voluntary quarantine), victims chosen by cheapest
//!   recompute (fewest accepted history rows) within the lowest
//!   priority class; the same path absorbs unrecoverable corruption
//!   verdicts surfaced by the online residual and the background
//!   scrubber;
//! * **scrub autotuning**: with a detection-latency SLO configured, the
//!   scrub bandwidth re-tunes every step via
//!   [`ScrubPolicy::for_target_latency`] as the live-block count moves;
//! * a **deterministic seeded load generator** ([`LoadGen`]): bursty
//!   arrivals, heavy-tail (bounded-Pareto) prompt/output lengths, and
//!   an optional per-tenant shared system prompt (length + share
//!   probability) so benches exercise prefix sharing under load.
//!
//! The request state machine (see README "SLO-aware serving"):
//!
//! ```text
//! queued ──admit──▶ prefilling ──chunks done──▶ decoding ──tokens done──▶ finished
//!   │                   │                        │   ▲
//!   ▼ (queue bound)     │ (corruption)           │   │ (re-admitted)
//!  shed                 └──────▶ requeued ◀──────┘───┘
//!                        (preempted / quarantined)
//! ```
//!
//! Determinism: scheduling decisions, arrival timestamps, and decode
//! token streams are all functions of seeds and step indices — never of
//! wall clock — so a drill campaign can replay the exact same workload
//! against a fault-injected subject and an undisturbed golden twin and
//! compare outputs **per (request, token) bitwise** (decode inputs are
//! seeded by token index, and per-sequence cache evolution is a pure
//! function of the append history, not of which step performed it).
//!
//! Corruption handling splits by *when* the damage is seen, mirroring
//! the paper's division of labor:
//!
//! * the **online residual** alarms on a decode pass that consumed
//!   corrupt data — that token's output is unusable, so the frontend
//!   discards it *before delivery* and evicts-and-requeues: the history
//!   rebuilds from clean rows and the token re-decodes bit-identically;
//! * the **scrubber** finds storage damage *before* any pass consumed
//!   it — repair-in-place from the recovery log suffices, and only an
//!   unrecoverable verdict escalates to quarantine.

use crate::batch::{DecodeBatch, ScrubPolicy};
use fa_tensor::{random::ElementDist, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Splitmix-style seed derivation: one stream per (request, lane) pair,
/// so regenerating any request's tokens never consults scheduler state.
fn mix_seed(seed: u64, lane: u64) -> u64 {
    let mut z = seed ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the exact bit patterns of an output row — the unit of
/// bitwise comparison between a drill subject and its golden twin.
pub fn hash_bits(xs: &[f64]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Request priority class. `Batch` requests are shed first and preempted
/// first; `Interactive` requests win admission and decode-slot ties.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Throughput traffic: first to shed, first to preempt.
    Batch,
    /// Latency-sensitive traffic: wins every scheduling tie.
    Interactive,
}

/// One request as submitted by a client (or the load generator).
#[derive(Clone, Debug)]
pub struct Request {
    /// Tenant id (fairness bucket); tenants share the token budget
    /// deficit-fairly.
    pub tenant: usize,
    /// Priority class.
    pub priority: Priority,
    /// Prompt length in tokens (≥ 1). With a shared prefix this counts
    /// only the request-private **suffix**; the full prompt is
    /// `prefix_tokens + prompt_tokens`.
    pub prompt_tokens: usize,
    /// Decode tokens to produce after admission (≥ 1).
    pub output_tokens: usize,
    /// Seed deriving the request's Q/K/V token streams.
    pub seed: u64,
    /// Stream seed of the shared system-prompt prefix this request
    /// begins with (`None` = unshared prompt). Requests carrying the
    /// same `(prefix_seed, prefix_tokens)` share the prefix's KV blocks
    /// through the engine's copy-on-write prefix registry.
    pub prefix_seed: Option<u64>,
    /// Shared-prefix length in tokens (0 iff `prefix_seed` is `None`).
    pub prefix_tokens: usize,
}

/// Why a request left the running set and went back through admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequeueCause {
    /// Evicted under arena pressure (the hard preemption tier).
    Preemption,
    /// Corruption verdict: online alarm, or an unrecoverable scrub/audit.
    Corruption,
}

/// Lifecycle phase of a request (see the module-level state machine).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// In the arrival queue, not yet admitted.
    Queued,
    /// Admitted; prompt chunks still flowing through checked prefill.
    Prefilling,
    /// Producing decode tokens.
    Decoding,
    /// Evicted (preemption or corruption); history re-caching chunk by
    /// chunk before decode resumes.
    Requeued(RequeueCause),
    /// All output tokens produced; slot retired.
    Finished,
    /// Dropped by load shedding (queue bound) or an unresolvable
    /// requeue race.
    Shed,
}

/// Per-request bookkeeping: timestamps are step indices (the scheduler's
/// only clock), token hashes are the bitwise fingerprints drills compare.
#[derive(Clone, Debug)]
pub struct RequestRecord {
    /// Tenant id.
    pub tenant: usize,
    /// Priority class.
    pub priority: Priority,
    /// Prompt length in tokens (the private suffix when shared).
    pub prompt_tokens: usize,
    /// Decode tokens requested.
    pub output_tokens: usize,
    /// Stream seed.
    pub seed: u64,
    /// Shared-prefix stream seed (`None` = unshared prompt).
    pub prefix_seed: Option<u64>,
    /// Shared-prefix length in tokens.
    pub prefix_tokens: usize,
    /// Step the request arrived.
    pub arrival_step: u64,
    /// Step the request was first admitted (left the queue).
    pub admitted_step: Option<u64>,
    /// Step the first decode token was produced.
    pub first_token_step: Option<u64>,
    /// Step the last token was produced.
    pub finish_step: Option<u64>,
    /// Step each accepted decode token was produced at.
    pub token_steps: Vec<u64>,
    /// FNV-1a hash of each accepted decode token's output bits.
    pub token_hashes: Vec<u64>,
    /// Current lifecycle phase.
    pub phase: Phase,
    /// Soft-tier demotions applied to this request's cache.
    pub demotions: u32,
    /// Times evicted under arena pressure.
    pub preemptions: u32,
    /// Times quarantined for corruption.
    pub quarantines: u32,
}

impl RequestRecord {
    fn new(req: &Request, now: u64) -> RequestRecord {
        RequestRecord {
            tenant: req.tenant,
            priority: req.priority,
            prompt_tokens: req.prompt_tokens,
            output_tokens: req.output_tokens,
            seed: req.seed,
            prefix_seed: req.prefix_seed,
            prefix_tokens: req.prefix_tokens,
            arrival_step: now,
            admitted_step: None,
            first_token_step: None,
            finish_step: None,
            token_steps: Vec::new(),
            token_hashes: Vec::new(),
            phase: Phase::Queued,
            demotions: 0,
            preemptions: 0,
            quarantines: 0,
        }
    }

    /// Time-to-first-token in steps (arrival step counts as 1): `None`
    /// until the first token lands.
    pub fn ttft_steps(&self) -> Option<u64> {
        self.first_token_step.map(|s| s - self.arrival_step + 1)
    }

    /// Inter-token gaps in steps, anchored at the first token (a gap of
    /// 1 means back-to-back steps). Empty with fewer than two tokens.
    pub fn token_gaps_steps(&self) -> Vec<u64> {
        self.token_steps.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Worst inter-token gap in steps (0 with fewer than two tokens).
    pub fn max_token_gap_steps(&self) -> u64 {
        self.token_gaps_steps().into_iter().max().unwrap_or(0)
    }

    /// Whether the request finished inside the SLO: admitted-to-first
    /// token within `ttft_steps` and every inter-token gap within
    /// `per_token_steps`.
    pub fn meets_slo(&self, slo: &SloSpec) -> bool {
        self.phase == Phase::Finished
            && self.ttft_steps().is_some_and(|t| t <= slo.ttft_steps)
            && self.max_token_gap_steps() <= slo.per_token_steps.max(1)
    }
}

/// Service-level objective in scheduler steps (the bench converts to
/// milliseconds with its measured wall-clock per step).
#[derive(Clone, Copy, Debug)]
pub struct SloSpec {
    /// Max steps from arrival to first decode token.
    pub ttft_steps: u64,
    /// Max steps between consecutive decode tokens.
    pub per_token_steps: u64,
}

/// Scheduler knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Per-step token budget shared by prefill chunks and decode tokens.
    pub token_budget: usize,
    /// Portion of `token_budget` admission may claim (unused prefill
    /// budget spills over to decode).
    pub prefill_budget: usize,
    /// Queue length above which arrivals shed (Batch priority first,
    /// then newest).
    pub queue_bound: usize,
    /// Arena-pressure bound on live KV bytes; `None` disables the
    /// preemption ladder.
    pub max_kv_bytes: Option<usize>,
    /// Newest full blocks a soft-tier demotion keeps native.
    pub demote_burst_blocks: usize,
    /// Scrub detection-latency SLO in steps; `Some` re-tunes the scrub
    /// policy every step via [`ScrubPolicy::for_target_latency`].
    pub scrub_slo_steps: Option<usize>,
    /// Keep the engine's recovery log (repair-in-place + auto-requeue).
    pub recovery_log: bool,
    /// Per-sequence recovery-log row budget (`None` = unbounded).
    pub log_budget_rows: Option<usize>,
    /// Online residual tolerance (NaN-safe alarm: `!(|r| <= tol)`).
    pub tol: f64,
    /// Speculative window width γ. `0` or `1` keeps plain one-token
    /// decode, bit-identical to earlier revisions. At γ ≥ 2 every
    /// chosen sequence drafts γ tokens, the engine scores the whole
    /// window in one batched pass over the paged cache, and only the
    /// verified prefix is delivered — the rest rolls back exactly.
    pub speculation_gamma: usize,
    /// Per-token probability the deterministic draft proposes the true
    /// stream row (the bench's α knob). Only consulted at γ ≥ 2.
    pub draft_acceptance: f64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            token_budget: 16,
            prefill_budget: 8,
            queue_bound: 64,
            max_kv_bytes: None,
            demote_burst_blocks: 1,
            scrub_slo_steps: None,
            recovery_log: true,
            log_budget_rows: None,
            tol: 1e-6,
            speculation_gamma: 0,
            draft_acceptance: 0.0,
        }
    }
}

/// What one scheduler step did — the drill and the bench aggregate these.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepReport {
    /// Step index this report describes.
    pub step: u64,
    /// Requests that arrived this step.
    pub arrived: usize,
    /// Requests shed (queue bound or requeue race).
    pub shed: usize,
    /// Requests admitted from the queue.
    pub admitted: usize,
    /// Prompt tokens pushed through checked prefill.
    pub prefill_tokens: usize,
    /// Decode tokens accepted (alarmed tokens are discarded, not counted).
    pub decode_tokens: usize,
    /// Admissions whose last prompt chunk completed.
    pub admissions_completed: usize,
    /// Requeued requests whose history finished re-caching.
    pub resumed: usize,
    /// Requests that produced their final token.
    pub finished: usize,
    /// Online residual alarms (token discarded, request requeued).
    pub online_alarms: usize,
    /// Corrupt sites surfaced by this step's scrub quantum.
    pub scrub_findings: usize,
    /// Blocks repaired in place from the recovery log.
    pub repaired_blocks: usize,
    /// `sumrow` checksum entries recomputed.
    pub repaired_sumrows: usize,
    /// Blocks repair could not restore (escalated to quarantine).
    pub unrecoverable_blocks: usize,
    /// Soft-tier demotions applied.
    pub demotions: usize,
    /// Rows demoted to BF16.
    pub demoted_rows: usize,
    /// Hard-tier evictions under arena pressure.
    pub preemptions: usize,
    /// Corruption quarantines.
    pub quarantines: usize,
    /// Draft tokens scored speculatively this step (γ per chosen
    /// sequence — every one of them claimed step budget).
    pub speculated_tokens: usize,
    /// Speculated tokens that verified and were delivered.
    pub spec_accepted: usize,
    /// Speculated tokens rolled back after scoring. They still consumed
    /// step budget and the tenant's decode deficit (see
    /// [`step`](Scheduler::step)): rejection never inflates goodput.
    pub spec_rejected: usize,
}

/// A request currently owning an engine slot.
struct Active {
    /// Index into `records`.
    rec: usize,
    /// Engine sequence id (changes if a prefilling victim restarts).
    seq: usize,
    /// Frontend copy of every accepted K row — the resubmission source.
    hist_k: Vec<f64>,
    /// Frontend copy of every accepted V row.
    hist_v: Vec<f64>,
    /// Accepted decode tokens so far (also the next token index).
    decoded: usize,
    /// Soft-tier demotion already applied at the current length.
    demoted: bool,
}

/// The step-driven SLO-aware scheduler (see module docs).
pub struct Scheduler {
    engine: DecodeBatch<f64>,
    cfg: ServeConfig,
    now: u64,
    records: Vec<RequestRecord>,
    queue: VecDeque<usize>,
    active: Vec<Active>,
    /// Per-tenant deficit counters: prompt tokens admitted / decode
    /// tokens granted. Lowest counter wins the next scheduling tie.
    admitted_tokens: Vec<u64>,
    decoded_tokens: Vec<u64>,
    /// Engine prefix-registry ids by `(prefix_seed, prefix_tokens)`:
    /// the first request carrying a pair registers (prefilling the
    /// prefix once); everyone after shares its blocks copy-on-write.
    prefix_ids: std::collections::HashMap<(u64, usize), usize>,
}

impl Scheduler {
    /// Wraps `engine` (any topology/format/eviction policy) with the
    /// serving frontend.
    ///
    /// # Panics
    ///
    /// Panics if `token_budget` is 0 or `prefill_budget > token_budget`.
    pub fn new(mut engine: DecodeBatch<f64>, cfg: ServeConfig) -> Scheduler {
        assert!(cfg.token_budget > 0, "token budget must be positive");
        assert!(
            cfg.prefill_budget <= cfg.token_budget,
            "prefill budget cannot exceed the token budget"
        );
        assert!(
            cfg.speculation_gamma <= 1 || cfg.speculation_gamma <= cfg.token_budget,
            "a speculative window cannot exceed the token budget"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.draft_acceptance),
            "draft acceptance must be a probability"
        );
        if cfg.recovery_log {
            engine.enable_recovery_log();
            engine.set_recovery_log_budget(cfg.log_budget_rows);
        }
        if let Some(slo) = cfg.scrub_slo_steps {
            engine.set_scrub_policy(Some(ScrubPolicy::for_target_latency(slo, 1)));
        }
        Scheduler {
            engine,
            cfg,
            now: 0,
            records: Vec::new(),
            queue: VecDeque::new(),
            active: Vec::new(),
            admitted_tokens: Vec::new(),
            decoded_tokens: Vec::new(),
            prefix_ids: std::collections::HashMap::new(),
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &DecodeBatch<f64> {
        &self.engine
    }

    /// Mutable engine access — the fault-drill hook
    /// (`flip_storage_bit` between steps).
    pub fn engine_mut(&mut self) -> &mut DecodeBatch<f64> {
        &mut self.engine
    }

    /// Current step index (advances once per [`step`](Self::step)).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Every request ever submitted, in arrival order.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// Requests waiting in the arrival queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// `(record index, engine sequence id)` of every request currently
    /// in the `Decoding` phase — the drill's injection targets.
    pub fn active_decoding(&self) -> Vec<(usize, usize)> {
        self.active
            .iter()
            .filter(|a| self.records[a.rec].phase == Phase::Decoding)
            .map(|a| (a.rec, a.seq))
            .collect()
    }

    fn ensure_tenant(&mut self, tenant: usize) {
        if tenant >= self.admitted_tokens.len() {
            self.admitted_tokens.resize(tenant + 1, 0);
            self.decoded_tokens.resize(tenant + 1, 0);
        }
    }

    /// Regenerates a request's prompt matrices from its seed (lanes
    /// 1–3; decode token `t` uses lanes `4+3t..=6+3t`).
    fn prompt_matrices(&self, rec: usize) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        let r = &self.records[rec];
        let (qd, kd) = (self.engine.config().q_dim(), self.engine.config().kv_dim());
        let dist = ElementDist::default();
        (
            Matrix::random_seeded(r.prompt_tokens, qd, dist, mix_seed(r.seed, 1)),
            Matrix::random_seeded(r.prompt_tokens, kd, dist, mix_seed(r.seed, 2)),
            Matrix::random_seeded(r.prompt_tokens, kd, dist, mix_seed(r.seed, 3)),
        )
    }

    /// Regenerates a shared prefix's Q/K/V matrices from its stream
    /// seed — the same lanes-1–3 rule [`prompt_matrices`]
    /// (Self::prompt_matrices) uses, on the prefix's own seed, so every
    /// request naming the pair regenerates identical prefix rows.
    fn prefix_matrices(&self, seed: u64, rows: usize) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        let (qd, kd) = (self.engine.config().q_dim(), self.engine.config().kv_dim());
        let dist = ElementDist::default();
        (
            Matrix::random_seeded(rows, qd, dist, mix_seed(seed, 1)),
            Matrix::random_seeded(rows, kd, dist, mix_seed(seed, 2)),
            Matrix::random_seeded(rows, kd, dist, mix_seed(seed, 3)),
        )
    }

    /// Admits request `rec` into the engine. Unshared prompts enqueue
    /// whole. Prefixed prompts register their `(prefix_seed, tokens)`
    /// pair once — the registration prefills the prefix synchronously,
    /// a one-time O(L) cost charged outside the step budget — and then
    /// enqueue only the suffix behind the shared blocks, so `k` readers
    /// cost O(L + k·suffix) prefill work and arena blocks. Returns the
    /// engine sequence, the full accepted-row history (prefix ‖ suffix,
    /// the resubmission source), and the prefix tokens a first-time
    /// registration prefilled (0 on a registry hit).
    fn admit_engine(&mut self, rec: usize) -> (usize, Vec<f64>, Vec<f64>, usize) {
        let (q, k, v) = self.prompt_matrices(rec);
        let r = &self.records[rec];
        let Some(pseed) = r.prefix_seed else {
            let seq = self.engine.enqueue(&q, &k, &v);
            return (seq, k.as_slice().to_vec(), v.as_slice().to_vec(), 0);
        };
        let rows = r.prefix_tokens;
        let (pq, pk, pv) = self.prefix_matrices(pseed, rows);
        let mut registered = 0;
        let id = match self.prefix_ids.get(&(pseed, rows)) {
            Some(&id) => id,
            None => {
                let id = self.engine.register_prefix(&pq, &pk, &pv);
                self.prefix_ids.insert((pseed, rows), id);
                registered = rows;
                id
            }
        };
        let seq = self.engine.enqueue_shared(id, &q, &k, &v);
        let mut hist_k = pk.as_slice().to_vec();
        hist_k.extend_from_slice(k.as_slice());
        let mut hist_v = pv.as_slice().to_vec();
        hist_v.extend_from_slice(v.as_slice());
        (seq, hist_k, hist_v, registered)
    }

    /// One decode token's Q/K/V rows for request `rec`, token index `t`.
    fn token_rows(&self, rec: usize, t: usize) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        let r = &self.records[rec];
        let (qd, kd) = (self.engine.config().q_dim(), self.engine.config().kv_dim());
        let dist = ElementDist::default();
        let t = t as u64;
        (
            Matrix::random_seeded(1, qd, dist, mix_seed(r.seed, 4 + 3 * t)),
            Matrix::random_seeded(1, kd, dist, mix_seed(r.seed, 5 + 3 * t)),
            Matrix::random_seeded(1, kd, dist, mix_seed(r.seed, 6 + 3 * t)),
        )
    }

    /// Prompt tokens this queued request would pay for *new* cache
    /// rows: a request whose `(prefix_seed, prefix_tokens)` pair is
    /// already registered rides the resident shared blocks and charges
    /// only its suffix; a first-of-its-pair registration pays the whole
    /// prefix too. Drives shed ordering (costliest Batch victim first),
    /// the admission budget, and the tenant deficit charge.
    fn admission_cost(&self, rec: usize) -> usize {
        let r = &self.records[rec];
        match r.prefix_seed {
            Some(seed) if self.prefix_ids.contains_key(&(seed, r.prefix_tokens)) => r.prompt_tokens,
            Some(_) => r.prefix_tokens + r.prompt_tokens,
            None => r.prompt_tokens,
        }
    }

    /// Plain decode: every chosen request scores its next token in one
    /// engine step, then token acceptance runs. An alarmed token is
    /// *discarded before delivery* (its K/V row is already cached, so
    /// the history must rebuild: evict-and-requeue) — the request
    /// re-decodes the same token index after recovery, bit-identically.
    fn sequential_decode(&mut self, chosen: &[usize], report: &mut StepReport) {
        let outputs = if chosen.is_empty() {
            Vec::new()
        } else {
            let (qd, kd) = (self.engine.config().q_dim(), self.engine.config().kv_dim());
            let mut qdat = Vec::with_capacity(chosen.len() * qd);
            let mut kdat = Vec::with_capacity(chosen.len() * kd);
            let mut vdat = Vec::with_capacity(chosen.len() * kd);
            let mut seq_ids = Vec::with_capacity(chosen.len());
            for &i in chosen {
                let a = &self.active[i];
                let (q, k, v) = self.token_rows(a.rec, a.decoded);
                qdat.extend_from_slice(q.as_slice());
                kdat.extend_from_slice(k.as_slice());
                vdat.extend_from_slice(v.as_slice());
                seq_ids.push(a.seq);
            }
            let qs = Matrix::from_vec(chosen.len(), qd, qdat);
            let ks = Matrix::from_vec(chosen.len(), kd, kdat);
            let vs = Matrix::from_vec(chosen.len(), kd, vdat);
            let outs = self.engine.step_decode(&seq_ids, &qs, &ks, &vs);
            outs.into_iter()
                .enumerate()
                .map(|(j, o)| (chosen[j], o, ks.row(j).to_vec(), vs.row(j).to_vec()))
                .collect()
        };

        let mut alarmed: Vec<usize> = Vec::new();
        for (i, out, krow, vrow) in outputs {
            let res = out.residual().abs();
            if res.is_nan() || res > self.cfg.tol {
                report.online_alarms += 1;
                alarmed.push(i);
                continue;
            }
            let a = &mut self.active[i];
            a.hist_k.extend_from_slice(&krow);
            a.hist_v.extend_from_slice(&vrow);
            a.decoded += 1;
            a.demoted = false;
            let tenant = self.records[a.rec].tenant;
            let r = &mut self.records[a.rec];
            if r.first_token_step.is_none() {
                r.first_token_step = Some(self.now);
            }
            r.token_steps.push(self.now);
            r.token_hashes.push(hash_bits(&out.output));
            self.decoded_tokens[tenant] += 1;
            report.decode_tokens += 1;
        }
        // Requeue alarmed victims highest-index first: `requeue` may
        // swap_remove on a lost race, which never disturbs lower indices.
        alarmed.sort_unstable_by(|a, b| b.cmp(a));
        for i in alarmed {
            self.requeue(i, RequeueCause::Corruption, report);
        }
    }

    /// The draft's per-token coin in `[0, 1)`: a pure function of the
    /// request's stream seed, the global token index, and the current
    /// step — so a token rejected this window redraws next window
    /// instead of being rejected forever.
    fn draft_coin(&self, rec: usize, token: usize) -> f64 {
        let r = &self.records[rec];
        let z = mix_seed(
            mix_seed(r.seed, 0xD4AF_0000_0000_0000 | token as u64),
            self.now,
        );
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Speculative decode for one step: the deterministic seeded draft
    /// proposes γ K/V rows per chosen sequence (each row is the true
    /// stream row with probability [`draft_acceptance`]
    /// (ServeConfig::draft_acceptance), a perturbed row after the first
    /// miss), the engine scores every window position in **one** batched
    /// pass, and verification keeps the longest prefix of bitwise-true
    /// proposals — capped at the request's remaining tokens. Any online
    /// alarm inside a window's accepted prefix voids that whole window
    /// (nothing corrupt is ever delivered) and quarantines the request
    /// after rollback.
    ///
    /// Budget accounting: every speculated token — accepted or rejected
    /// — consumed scoring bandwidth, so the tenant's decode deficit is
    /// charged the full window (γ), never just the accepted prefix.
    /// `report.decode_tokens` counts only delivered tokens, so rejected
    /// speculation cannot inflate `goodput_under_slo`.
    fn speculative_decode(&mut self, chosen: &[usize], gamma: usize, report: &mut StepReport) {
        if chosen.is_empty() {
            return;
        }
        let (qd, kd) = (self.engine.config().q_dim(), self.engine.config().kv_dim());
        let dist = ElementDist::default();
        let n = chosen.len();
        let mut qdat = Vec::with_capacity(n * gamma * qd);
        let mut kdat = Vec::with_capacity(n * gamma * kd);
        let mut vdat = Vec::with_capacity(n * gamma * kd);
        let mut seq_ids = Vec::with_capacity(n);
        let mut accepted = Vec::with_capacity(n);
        for &i in chosen {
            let a = &self.active[i];
            let r = &self.records[a.rec];
            let remaining = r.output_tokens - a.decoded;
            let mut matched = true;
            let mut accept = 0usize;
            for t in 0..gamma {
                let token = a.decoded + t;
                let hit = matched && self.draft_coin(a.rec, token) < self.cfg.draft_acceptance;
                let (q, k, v) = if hit {
                    accept += 1;
                    self.token_rows(a.rec, token)
                } else {
                    // First miss poisons the rest of the window: a
                    // perturbed proposal can never bitwise-match the
                    // true stream, so acceptance is a clean prefix.
                    matched = false;
                    let s = mix_seed(
                        mix_seed(r.seed, 0x0BAD_0000_0000_0000 | token as u64),
                        self.now,
                    );
                    (
                        Matrix::random_seeded(1, qd, dist, mix_seed(s, 1)),
                        Matrix::random_seeded(1, kd, dist, mix_seed(s, 2)),
                        Matrix::random_seeded(1, kd, dist, mix_seed(s, 3)),
                    )
                };
                qdat.extend_from_slice(q.as_slice());
                kdat.extend_from_slice(k.as_slice());
                vdat.extend_from_slice(v.as_slice());
            }
            accepted.push(accept.min(remaining));
            seq_ids.push(a.seq);
        }
        let qs = Matrix::from_vec(n * gamma, qd, qdat);
        let ks = Matrix::from_vec(n * gamma, kd, kdat);
        let vs = Matrix::from_vec(n * gamma, kd, vdat);
        let outs = self.engine.speculate(&seq_ids, &qs, &ks, &vs, gamma);

        // Residual scan over each accepted prefix *before* anything is
        // delivered: one alarmed position voids the whole window.
        let mut alarmed: Vec<usize> = Vec::new();
        for (j, &i) in chosen.iter().enumerate() {
            let bad = outs[j][..accepted[j]].iter().any(|o| {
                let res = o.residual().abs();
                res.is_nan() || res > self.cfg.tol
            });
            if bad {
                report.online_alarms += 1;
                accepted[j] = 0;
                alarmed.push(i);
            }
        }
        let verdicts = self.engine.resolve_speculation(&accepted);
        debug_assert_eq!(verdicts.len(), n);

        for (j, &i) in chosen.iter().enumerate() {
            let rec = self.active[i].rec;
            let tenant = self.records[rec].tenant;
            self.decoded_tokens[tenant] += gamma as u64;
            report.speculated_tokens += gamma;
            report.spec_accepted += accepted[j];
            report.spec_rejected += gamma - accepted[j];
            let base = self.active[i].decoded;
            for (t, out) in outs[j].iter().take(accepted[j]).enumerate() {
                let (_, k, v) = self.token_rows(rec, base + t);
                let a = &mut self.active[i];
                a.hist_k.extend_from_slice(k.as_slice());
                a.hist_v.extend_from_slice(v.as_slice());
                a.decoded += 1;
                a.demoted = false;
                let r = &mut self.records[rec];
                if r.first_token_step.is_none() {
                    r.first_token_step = Some(self.now);
                }
                r.token_steps.push(self.now);
                r.token_hashes.push(hash_bits(&out.output));
                report.decode_tokens += 1;
            }
        }
        // The window is already closed (rolled back), so alarmed victims
        // quarantine through the normal path — highest index first, as
        // `requeue` may swap_remove on a lost race.
        alarmed.sort_unstable_by(|a, b| b.cmp(a));
        for i in alarmed {
            self.requeue(i, RequeueCause::Corruption, report);
        }
    }

    /// Runs one scheduler step: absorb `arrivals`, shed past the queue
    /// bound, admit deficit-fairly under the prefill budget, decode
    /// deficit-fairly under the remaining token budget, harvest finished
    /// admissions/requeues, retire finished requests, run the scrub
    /// quantum (re-tuned to the detection SLO), and relieve arena
    /// pressure through the preemption ladder.
    pub fn step(&mut self, arrivals: &[Request]) -> StepReport {
        let mut report = StepReport {
            step: self.now,
            ..StepReport::default()
        };

        // 1. Arrivals join the queue, timestamped with this step.
        for req in arrivals {
            assert!(
                req.prompt_tokens > 0,
                "prompts must have at least one token"
            );
            assert!(
                req.output_tokens > 0,
                "requests must want at least one token"
            );
            assert_eq!(
                req.prefix_seed.is_some(),
                req.prefix_tokens > 0,
                "a shared prefix needs both a seed and a length"
            );
            self.ensure_tenant(req.tenant);
            let rec = self.records.len();
            self.records.push(RequestRecord::new(req, self.now));
            self.queue.push_back(rec);
            report.arrived += 1;
        }

        // 2. Shed past the bound: the costliest Batch-priority victim
        //    first — cost is [`admission_cost`](Self::admission_cost),
        //    so a request riding a resident shared prefix weighs only
        //    its suffix and outlives unshared peers — newest breaking
        //    ties; newest overall when only Interactive remains.
        while self.queue.len() > self.cfg.queue_bound {
            let pos = (0..self.queue.len())
                .filter(|&i| self.records[self.queue[i]].priority == Priority::Batch)
                .max_by_key(|&i| (self.admission_cost(self.queue[i]), i))
                .unwrap_or(self.queue.len() - 1);
            let rec = self.queue.remove(pos).expect("position is in range");
            self.records[rec].phase = Phase::Shed;
            report.shed += 1;
        }

        // 3. Deficit-fair admission under the prefill budget. The load
        //    already pending counts against the budget; the first
        //    admission always goes through so a prompt wider than the
        //    budget cannot wedge the queue.
        let chunk = self.engine.prefill_chunk();
        let mut pending_load: usize = self
            .active
            .iter()
            .map(|a| self.engine.pending_len(a.seq).min(chunk))
            .sum();
        while !self.queue.is_empty() {
            let qi = (0..self.queue.len())
                .min_by_key(|&i| {
                    let r = &self.records[self.queue[i]];
                    (
                        self.admitted_tokens[r.tenant],
                        core::cmp::Reverse(r.priority),
                        self.queue[i],
                    )
                })
                .expect("queue is non-empty");
            let rec = self.queue[qi];
            // The budget cost of this admission: the first prompt chunk,
            // plus the whole prefix when this request would be the first
            // to register its pair (a resident prefix rides shared
            // blocks and charges only its suffix — the deficit counter
            // gets the same prefix-aware cost).
            let deficit_cost = self.admission_cost(rec);
            let cost = self.records[rec].prompt_tokens.min(chunk)
                + (deficit_cost - self.records[rec].prompt_tokens);
            if pending_load > 0 && pending_load + cost > self.cfg.prefill_budget {
                break;
            }
            self.queue.remove(qi);
            let (seq, hist_k, hist_v, registered) = self.admit_engine(rec);
            report.prefill_tokens += registered;
            let r = &mut self.records[rec];
            r.admitted_step = Some(self.now);
            r.phase = Phase::Prefilling;
            self.admitted_tokens[r.tenant] += deficit_cost as u64;
            self.active.push(Active {
                rec,
                seq,
                hist_k,
                hist_v,
                decoded: 0,
                demoted: false,
            });
            pending_load += cost;
            report.admitted += 1;
        }

        // 4. Pick this step's prefill set under the prefill share
        //    (admission order; the first pending prompt always advances
        //    so a chunk wider than the share cannot wedge), then the
        //    decode set from the remaining budget — decode rides every
        //    step instead of stalling whenever chunks are pending.
        let mut prefill_set: Vec<usize> = Vec::new();
        let mut prefill_claim = 0usize;
        for a in &self.active {
            let pend = self.engine.pending_len(a.seq).min(chunk);
            if pend == 0 {
                continue;
            }
            if prefill_claim > 0 && prefill_claim + pend > self.cfg.prefill_budget {
                continue;
            }
            prefill_claim += pend;
            prefill_set.push(a.seq);
        }
        let decode_budget = self.cfg.token_budget.saturating_sub(prefill_claim);
        let mut candidates: Vec<usize> = (0..self.active.len())
            .filter(|&i| {
                self.records[self.active[i].rec].phase == Phase::Decoding
                    && !self.engine.is_pending(self.active[i].seq)
            })
            .collect();
        // A speculative window claims γ budget tokens per sequence up
        // front — accepted or not, every drafted position is scored, so
        // every one is charged (γ = 1 reduces to the plain loop).
        let gamma = self.cfg.speculation_gamma.max(1);
        let mut taken: Vec<u64> = vec![0; self.decoded_tokens.len()];
        let mut chosen: Vec<usize> = Vec::new();
        while (chosen.len() + 1) * gamma <= decode_budget && !candidates.is_empty() {
            let ci = (0..candidates.len())
                .min_by_key(|&ci| {
                    let r = &self.records[self.active[candidates[ci]].rec];
                    (
                        self.decoded_tokens[r.tenant] + taken[r.tenant],
                        core::cmp::Reverse(r.priority),
                        self.active[candidates[ci]].rec,
                    )
                })
                .expect("candidates are non-empty");
            let i = candidates.swap_remove(ci);
            taken[self.records[self.active[i].rec].tenant] += gamma as u64;
            chosen.push(i);
        }
        chosen.sort_unstable();

        // 5. Run the prefill quantum (only the selected prompts advance,
        //    keeping admission inside its budget share), then every
        //    chosen request decodes its next token in one engine step.
        report.prefill_tokens += self.engine.prefill_step_for(&prefill_set);
        if gamma >= 2 {
            // Speculative path: draft γ tokens per chosen sequence,
            // score the whole window in one batched engine pass, keep
            // the verified prefix, roll the rest back exactly.
            self.speculative_decode(&chosen, gamma, &mut report);
        } else {
            self.sequential_decode(&chosen, &mut report);
        }

        // 7. Harvest: completed admissions start decoding; completed
        //    requeues resume it.
        for i in 0..self.active.len() {
            let (rec, seq) = (self.active[i].rec, self.active[i].seq);
            match self.records[rec].phase {
                Phase::Prefilling if !self.engine.is_pending(seq) => {
                    let adm = self
                        .engine
                        .take_admitted(seq)
                        .expect("a scored admission parks its output");
                    let res = adm.residual().abs();
                    if res.is_nan() || res > self.cfg.tol {
                        // The prompt pass consumed corrupt data; its
                        // outputs are undeliverable — restart admission.
                        report.online_alarms += 1;
                        self.requeue(i, RequeueCause::Corruption, &mut report);
                    } else {
                        self.records[rec].phase = Phase::Decoding;
                        report.admissions_completed += 1;
                    }
                }
                Phase::Requeued(_) if !self.engine.is_pending(seq) => {
                    // A prefilling victim restarted through the scored
                    // path and parked an AdmittedPrompt; a resubmitted
                    // history is cache-only and parks nothing.
                    let _ = self.engine.take_admitted(seq);
                    self.records[rec].phase = Phase::Decoding;
                    report.resumed += 1;
                }
                _ => {}
            }
        }

        // 8. Finish sweep: a request with all its tokens retires its slot.
        let mut i = 0;
        while i < self.active.len() {
            let a = &self.active[i];
            let r = &self.records[a.rec];
            if r.phase == Phase::Decoding && a.decoded >= r.output_tokens {
                self.engine.retire(a.seq);
                let rec = a.rec;
                self.records[rec].phase = Phase::Finished;
                self.records[rec].finish_step = Some(self.now);
                report.finished += 1;
                self.active.swap_remove(i);
            } else {
                i += 1;
            }
        }

        // 9. Scrub quantum, re-tuned to the detection-latency SLO at the
        //    current live-block count. Findings trigger repair-in-place;
        //    only unrecoverable verdicts escalate to quarantine.
        if let Some(slo) = self.cfg.scrub_slo_steps {
            let live = self.engine.live_blocks().max(1);
            self.engine
                .set_scrub_policy(Some(ScrubPolicy::for_target_latency(slo, live)));
        }
        let findings = self.engine.scrub_step();
        report.scrub_findings += findings.len();
        let mut flagged: Vec<usize> = findings.iter().map(|&(s, _)| s).collect();
        flagged.sort_unstable();
        flagged.dedup();
        for seq in flagged {
            if let Some(i) = self.active.iter().position(|a| a.seq == seq) {
                self.absorb(i, &mut report);
            }
        }

        // 10. Arena pressure: demote, then evict-and-requeue.
        self.relieve_pressure(&mut report);

        self.now += 1;
        report
    }

    /// Absorbs a storage-corruption verdict on `active[i]`: audit and
    /// repair in place; escalate to evict-and-requeue only when the log
    /// could not restore a block — and never mid-requeue (the re-cached
    /// rows are always log-covered from row 0, so a second quarantine
    /// would resubmit a truncated history).
    fn absorb(&mut self, i: usize, report: &mut StepReport) {
        let seq = self.active[i].seq;
        let rep = self.engine.audit_and_repair(seq, self.cfg.tol);
        report.repaired_blocks += rep.blocks_recovered;
        report.repaired_sumrows += rep.sumrows_repaired;
        report.unrecoverable_blocks += rep.blocks_unrecoverable;
        let phase = self.records[self.active[i].rec].phase;
        if rep.blocks_unrecoverable > 0 && !matches!(phase, Phase::Requeued(_)) {
            self.requeue(i, RequeueCause::Corruption, report);
        }
    }

    /// Evicts `active[i]` and requeues it for recompute-on-resume.
    ///
    /// A `Prefilling` victim restarts the scored admission from scratch
    /// (its prompt outputs were never delivered); anyone else is
    /// quarantined and — unless the recovery log already requeued the
    /// full history — resubmitted from the frontend's accepted-row copy.
    fn requeue(&mut self, i: usize, cause: RequeueCause, report: &mut StepReport) {
        let rec = self.active[i].rec;
        let seq = self.active[i].seq;
        if self.records[rec].phase == Phase::Prefilling {
            self.engine.retire(seq);
            // A prefixed victim re-admits behind the still-registered
            // shared prefix (a registry hit: no prefix re-prefill).
            let (new_seq, hist_k, hist_v, registered) = self.admit_engine(rec);
            report.prefill_tokens += registered;
            let a = &mut self.active[i];
            a.seq = new_seq;
            a.hist_k = hist_k;
            a.hist_v = hist_v;
            a.decoded = 0;
            a.demoted = false;
        } else {
            let q = self.engine.quarantine(seq);
            let kd = self.engine.config().kv_dim();
            let rows = self.active[i].hist_k.len() / kd;
            if q.requeued_rows != rows {
                // The recovery log replays every *cached* row, which can
                // include the K/V row of a token the frontend discarded
                // at the online alarm — rebuild from the accepted-row
                // history instead so the re-decode sees a clean prefix.
                let seq = if q.requeued_rows > 0 {
                    self.engine.retire(seq);
                    self.engine.add_sequence()
                } else {
                    seq
                };
                self.active[i].seq = seq;
                let k = Matrix::from_vec(rows, kd, self.active[i].hist_k.clone());
                let v = Matrix::from_vec(rows, kd, self.active[i].hist_v.clone());
                if self.engine.resubmit(seq, &k, &v).is_err() {
                    // Lost a race with the slot: drop the request rather
                    // than wedge the batch.
                    self.engine.retire(seq);
                    self.records[rec].phase = Phase::Shed;
                    report.shed += 1;
                    self.active.swap_remove(i);
                    return;
                }
            }
            self.active[i].demoted = false;
        }
        let r = &mut self.records[rec];
        r.phase = Phase::Requeued(cause);
        match cause {
            RequeueCause::Preemption => {
                r.preemptions += 1;
                report.preemptions += 1;
            }
            RequeueCause::Corruption => {
                r.quarantines += 1;
                report.quarantines += 1;
            }
        }
    }

    fn decoding_count(&self) -> usize {
        self.active
            .iter()
            .filter(|a| self.records[a.rec].phase == Phase::Decoding)
            .count()
    }

    /// Preemption victim: lowest priority class first, then **cheapest
    /// recompute** — fewest accepted history rows, i.e. the least work
    /// a requeue pays to rebuild the cache and re-earn its place —
    /// newest request breaking ties. `fresh_only` skips requests
    /// already demoted at their current length.
    fn pick_victim(&self, fresh_only: bool) -> Option<usize> {
        let kd = self.engine.config().kv_dim();
        (0..self.active.len())
            .filter(|&i| {
                let a = &self.active[i];
                self.records[a.rec].phase == Phase::Decoding
                    && self.engine.seq_len(a.seq) > 0
                    && (!fresh_only || !a.demoted)
            })
            .min_by_key(|&i| {
                let a = &self.active[i];
                (
                    self.records[a.rec].priority,
                    a.hist_k.len() / kd,
                    core::cmp::Reverse(a.rec),
                )
            })
    }

    /// The preemption ladder. Soft tier: demote victims' cold blocks to
    /// BF16 until the arena fits or everyone is demoted. Hard tier:
    /// evict-and-requeue victims (keeping at least one request decoding)
    /// until the arena fits.
    fn relieve_pressure(&mut self, report: &mut StepReport) {
        let Some(bound) = self.cfg.max_kv_bytes else {
            return;
        };
        while self.engine.cache().live_kv_bytes() > bound {
            let Some(i) = self.pick_victim(true) else {
                break;
            };
            let rows = self
                .engine
                .demote(self.active[i].seq, self.cfg.demote_burst_blocks);
            self.active[i].demoted = true;
            if rows > 0 {
                self.records[self.active[i].rec].demotions += 1;
                report.demotions += 1;
                report.demoted_rows += rows;
            }
        }
        while self.engine.cache().live_kv_bytes() > bound && self.decoding_count() > 1 {
            let Some(i) = self.pick_victim(false) else {
                break;
            };
            self.requeue(i, RequeueCause::Preemption, report);
        }
    }

    /// Aggregates every record into the serving summary.
    pub fn summary(&self, slo: &SloSpec) -> ServeSummary {
        ServeSummary::from_records(&self.records, slo)
    }
}

/// Value at percentile `pct` (0–100) of an ascending-sorted slice, by
/// nearest-rank; 0 on an empty slice.
pub fn percentile_u64(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Aggregate serving metrics over a run (step units; the bench converts
/// to milliseconds).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeSummary {
    /// Requests submitted.
    pub submitted: usize,
    /// Requests finished.
    pub finished: usize,
    /// Requests shed.
    pub shed: usize,
    /// TTFT p50 over finished requests, in steps.
    pub ttft_p50_steps: u64,
    /// TTFT p99 over finished requests, in steps.
    pub ttft_p99_steps: u64,
    /// p99 inter-token gap over all finished requests' gaps, in steps.
    pub per_token_p99_steps: u64,
    /// Finished requests meeting the SLO.
    pub slo_met: usize,
    /// Decode tokens of SLO-meeting requests (the goodput numerator).
    pub goodput_tokens: usize,
    /// Decode tokens of all finished requests.
    pub total_tokens: usize,
    /// Hard-tier evictions across all requests.
    pub preemptions: usize,
    /// Corruption quarantines across all requests.
    pub quarantines: usize,
    /// Soft-tier demotions across all requests.
    pub demotions: usize,
}

impl ServeSummary {
    /// Builds the summary from raw request records.
    pub fn from_records(records: &[RequestRecord], slo: &SloSpec) -> ServeSummary {
        let mut s = ServeSummary {
            submitted: records.len(),
            ..ServeSummary::default()
        };
        let mut ttfts = Vec::new();
        let mut gaps = Vec::new();
        for r in records {
            s.preemptions += r.preemptions as usize;
            s.quarantines += r.quarantines as usize;
            s.demotions += r.demotions as usize;
            match r.phase {
                Phase::Shed => s.shed += 1,
                Phase::Finished => {
                    s.finished += 1;
                    s.total_tokens += r.token_steps.len();
                    if let Some(t) = r.ttft_steps() {
                        ttfts.push(t);
                    }
                    gaps.extend(r.token_gaps_steps());
                    if r.meets_slo(slo) {
                        s.slo_met += 1;
                        s.goodput_tokens += r.token_steps.len();
                    }
                }
                _ => {}
            }
        }
        ttfts.sort_unstable();
        gaps.sort_unstable();
        s.ttft_p50_steps = percentile_u64(&ttfts, 50.0);
        s.ttft_p99_steps = percentile_u64(&ttfts, 99.0);
        s.per_token_p99_steps = percentile_u64(&gaps, 99.0);
        s
    }
}

/// Workload shape for [`LoadGen`]: bursty Bernoulli arrivals with
/// bounded-Pareto (heavy-tail) prompt and output lengths.
#[derive(Clone, Copy, Debug)]
pub struct LoadSpec {
    /// Number of tenants (round-robined uniformly at random).
    pub tenants: usize,
    /// Probability a step carries a burst of arrivals.
    pub burst_prob: f64,
    /// Max requests per burst (size uniform in `1..=burst_max`).
    pub burst_max: usize,
    /// Shortest prompt.
    pub prompt_min: usize,
    /// Longest prompt (Pareto tail clamped here).
    pub prompt_max: usize,
    /// Pareto tail index for prompt lengths (smaller = heavier tail).
    pub prompt_tail: f64,
    /// Fewest output tokens.
    pub output_min: usize,
    /// Most output tokens.
    pub output_max: usize,
    /// Pareto tail index for output lengths.
    pub output_tail: f64,
    /// Probability a request is `Interactive`.
    pub interactive_prob: f64,
    /// Shared system-prompt length in tokens; 0 disables prefix
    /// sharing (and draws nothing from the stream, so disabled specs
    /// generate byte-identical workloads to earlier revisions).
    pub prefix_tokens: usize,
    /// Probability a request reuses its tenant's shared system prompt
    /// (each tenant has one, derived from the generator seed).
    pub prefix_share_prob: f64,
}

impl Default for LoadSpec {
    fn default() -> LoadSpec {
        LoadSpec {
            tenants: 3,
            burst_prob: 0.4,
            burst_max: 3,
            prompt_min: 4,
            prompt_max: 48,
            prompt_tail: 1.5,
            output_min: 2,
            output_max: 32,
            output_tail: 1.2,
            interactive_prob: 0.5,
            prefix_tokens: 0,
            prefix_share_prob: 0.0,
        }
    }
}

/// Deterministic seeded load generator: the same `(spec, seed)` always
/// yields the same arrival stream, so a drill subject and its golden
/// twin serve bitwise-identical workloads.
pub struct LoadGen {
    spec: LoadSpec,
    rng: StdRng,
    /// Construction seed — the root of the per-tenant prefix seeds.
    seed: u64,
}

impl LoadGen {
    /// Creates a generator for `spec` seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate spec (no tenants, empty length ranges,
    /// probabilities outside `[0, 1]`, non-positive tail indices).
    pub fn new(spec: LoadSpec, seed: u64) -> LoadGen {
        assert!(spec.tenants > 0, "need at least one tenant");
        assert!(spec.burst_max > 0, "bursts must carry requests");
        assert!(
            (0.0..=1.0).contains(&spec.burst_prob)
                && (0.0..=1.0).contains(&spec.interactive_prob)
                && (0.0..=1.0).contains(&spec.prefix_share_prob),
            "probabilities must be in [0, 1]"
        );
        assert!(
            spec.prompt_min >= 1 && spec.prompt_min <= spec.prompt_max,
            "prompt length range is empty"
        );
        assert!(
            spec.output_min >= 1 && spec.output_min <= spec.output_max,
            "output length range is empty"
        );
        assert!(
            spec.prompt_tail > 0.0 && spec.output_tail > 0.0,
            "Pareto tail indices must be positive"
        );
        LoadGen {
            spec,
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Tenant `t`'s shared system-prompt stream seed (a pure function
    /// of the generator seed, so subject and golden twin agree).
    fn tenant_prefix_seed(&self, tenant: usize) -> u64 {
        mix_seed(self.seed, 0x5E5F_0000_0000_0000 | tenant as u64)
    }

    /// Bounded Pareto sample in `lo..=hi` with tail index `alpha`.
    fn heavy_tail(&mut self, lo: usize, hi: usize, alpha: f64) -> usize {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let x = lo as f64 / u.powf(1.0 / alpha);
        (x as usize).clamp(lo, hi)
    }

    /// The arrivals for one step: empty, or a burst of `1..=burst_max`
    /// requests with heavy-tail lengths and per-request stream seeds.
    pub fn step(&mut self) -> Vec<Request> {
        if self.rng.gen_range(0.0..1.0) >= self.spec.burst_prob {
            return Vec::new();
        }
        let n = self.rng.gen_range(1..=self.spec.burst_max);
        (0..n)
            .map(|_| {
                let prompt_tokens = self.heavy_tail(
                    self.spec.prompt_min,
                    self.spec.prompt_max,
                    self.spec.prompt_tail,
                );
                let output_tokens = self.heavy_tail(
                    self.spec.output_min,
                    self.spec.output_max,
                    self.spec.output_tail,
                );
                let priority = if self.rng.gen_range(0.0..1.0) < self.spec.interactive_prob {
                    Priority::Interactive
                } else {
                    Priority::Batch
                };
                let tenant = self.rng.gen_range(0..self.spec.tenants);
                let seed = self.rng.gen_range(0..u64::MAX);
                // The share coin is drawn only when sharing is enabled:
                // a disabled spec consumes the exact same stream as
                // before the knob existed.
                let shares = self.spec.prefix_tokens > 0
                    && self.rng.gen_range(0.0..1.0) < self.spec.prefix_share_prob;
                Request {
                    tenant,
                    priority,
                    prompt_tokens,
                    output_tokens,
                    seed,
                    prefix_seed: shares.then(|| self.tenant_prefix_seed(tenant)),
                    prefix_tokens: if shares { self.spec.prefix_tokens } else { 0 },
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{EvictionPolicy, KvFormat, KvLayout};
    use crate::{AttentionConfig, HeadTopology};

    fn engine() -> DecodeBatch<f64> {
        DecodeBatch::<f64>::with_policy(
            HeadTopology::gqa(4, 2, AttentionConfig::new(8)),
            4,
            KvLayout::HeadMajor,
            KvFormat::F64,
            EvictionPolicy::RetainAll,
        )
    }

    fn run(cfg: ServeConfig, load_seed: u64, steps: usize) -> Scheduler {
        let mut e = engine();
        e.set_prefill_chunk(4);
        let mut sched = Scheduler::new(e, cfg);
        let mut gen = LoadGen::new(LoadSpec::default(), load_seed);
        for _ in 0..steps {
            let arrivals = gen.step();
            sched.step(&arrivals);
        }
        // Drain: no new arrivals, serve until idle (bounded).
        for _ in 0..2000 {
            if sched.queue_len() == 0 && sched.active_decoding().is_empty() {
                let r = sched.step(&[]);
                if r.prefill_tokens == 0 && r.decode_tokens == 0 && r.finished == 0 {
                    break;
                }
            } else {
                sched.step(&[]);
            }
        }
        sched
    }

    #[test]
    fn load_gen_is_deterministic_and_bounded() {
        let spec = LoadSpec::default();
        let mut a = LoadGen::new(spec, 7);
        let mut b = LoadGen::new(spec, 7);
        let mut total = 0;
        for _ in 0..200 {
            let (x, y) = (a.step(), b.step());
            assert_eq!(x.len(), y.len());
            for (p, q) in x.iter().zip(&y) {
                assert_eq!(p.seed, q.seed);
                assert_eq!(p.prompt_tokens, q.prompt_tokens);
                assert!((spec.prompt_min..=spec.prompt_max).contains(&p.prompt_tokens));
                assert!((spec.output_min..=spec.output_max).contains(&p.output_tokens));
                assert!(p.tenant < spec.tenants);
                total += 1;
            }
            assert!(x.len() <= spec.burst_max);
        }
        assert!(total > 0, "the default spec must generate load");
    }

    #[test]
    fn clean_run_finishes_requests_within_invariants() {
        let sched = run(ServeConfig::default(), 11, 60);
        let finished = sched
            .records()
            .iter()
            .filter(|r| r.phase == Phase::Finished)
            .count();
        assert!(finished > 0, "a clean run must finish requests");
        for r in sched.records() {
            if r.phase == Phase::Finished {
                assert_eq!(r.token_hashes.len(), r.output_tokens);
                assert_eq!(r.token_steps.len(), r.output_tokens);
                let t = r.ttft_steps().expect("finished requests saw a token");
                assert!(t >= 1);
                assert!(r.token_steps.windows(2).all(|w| w[1] > w[0]));
                assert_eq!(r.preemptions, 0);
                assert_eq!(r.quarantines, 0);
            }
        }
    }

    #[test]
    fn identical_schedulers_replay_identically() {
        let a = run(ServeConfig::default(), 23, 50);
        let b = run(ServeConfig::default(), 23, 50);
        assert_eq!(a.records().len(), b.records().len());
        for (x, y) in a.records().iter().zip(b.records().iter()) {
            assert_eq!(x.phase, y.phase);
            assert_eq!(x.token_hashes, y.token_hashes);
            assert_eq!(x.token_steps, y.token_steps);
            assert_eq!(x.first_token_step, y.first_token_step);
        }
    }

    #[test]
    fn per_step_budget_is_respected() {
        let cfg = ServeConfig {
            token_budget: 6,
            prefill_budget: 4,
            ..ServeConfig::default()
        };
        let mut e = engine();
        e.set_prefill_chunk(3);
        let mut sched = Scheduler::new(e, cfg);
        let mut gen = LoadGen::new(LoadSpec::default(), 31);
        for _ in 0..120 {
            let arrivals = gen.step();
            let rep = sched.step(&arrivals);
            // A single oversized first admission may exceed the prefill
            // share, but decode + prefill never exceeds the admitted
            // load's claim plus the decode share.
            assert!(
                rep.decode_tokens <= cfg.token_budget,
                "decode overflowed the budget"
            );
        }
    }

    #[test]
    fn shedding_prefers_batch_priority() {
        let cfg = ServeConfig {
            queue_bound: 2,
            ..ServeConfig::default()
        };
        let mut sched = Scheduler::new(engine(), cfg);
        let mk = |tenant, priority, seed| Request {
            tenant,
            priority,
            prompt_tokens: 4,
            output_tokens: 2,
            seed,
            prefix_seed: None,
            prefix_tokens: 0,
        };
        // Far more than bound+budget can hold: some must shed.
        let arrivals: Vec<Request> = (0..8)
            .map(|i| {
                let p = if i % 2 == 0 {
                    Priority::Interactive
                } else {
                    Priority::Batch
                };
                mk(0, p, 100 + i)
            })
            .collect();
        let rep = sched.step(&arrivals);
        assert!(rep.shed > 0, "the bound must shed");
        let shed_batch = sched
            .records()
            .iter()
            .filter(|r| r.phase == Phase::Shed && r.priority == Priority::Batch)
            .count();
        let shed_inter = sched
            .records()
            .iter()
            .filter(|r| r.phase == Phase::Shed && r.priority == Priority::Interactive)
            .count();
        assert!(
            shed_inter == 0 || shed_batch == 4,
            "interactive requests shed only after every batch request"
        );
    }

    #[test]
    fn tenant_deficits_stay_balanced() {
        let cfg = ServeConfig {
            token_budget: 8,
            prefill_budget: 4,
            ..ServeConfig::default()
        };
        let mut e = engine();
        e.set_prefill_chunk(4);
        let mut sched = Scheduler::new(e, cfg);
        // Two tenants, same shape, saturating load.
        let mut seed = 1u64;
        for step in 0..120 {
            let arrivals: Vec<Request> = if step % 2 == 0 {
                (0..2)
                    .map(|t| {
                        seed += 1;
                        Request {
                            tenant: t,
                            priority: Priority::Batch,
                            prompt_tokens: 4,
                            output_tokens: 8,
                            seed,
                            prefix_seed: None,
                            prefix_tokens: 0,
                        }
                    })
                    .collect()
            } else {
                Vec::new()
            };
            sched.step(&arrivals);
        }
        let tok = |t: usize| {
            sched
                .records()
                .iter()
                .filter(|r| r.tenant == t)
                .map(|r| r.token_steps.len())
                .sum::<usize>() as i64
        };
        let (a, b) = (tok(0), tok(1));
        assert!(a > 0 && b > 0);
        assert!(
            (a - b).abs() <= 16,
            "deficit-fair decode kept tenants within a budget of each other: {a} vs {b}"
        );
    }

    #[test]
    fn memory_pressure_walks_the_preemption_ladder_and_preserves_outputs() {
        let base = ServeConfig {
            token_budget: 12,
            prefill_budget: 6,
            ..ServeConfig::default()
        };
        let pressured = ServeConfig {
            // ~6 f64 KV blocks of 4 rows × kv_dim 16 ≈ 6 KiB: tight
            // enough to demote and then evict under the default load.
            max_kv_bytes: Some(6 * 2 * 4 * 16 * 8),
            ..base
        };
        let free = run(base, 41, 50);
        let tight = run(pressured, 41, 50);
        let total_dem: usize = tight.records().iter().map(|r| r.demotions as usize).sum();
        let total_pre: usize = tight.records().iter().map(|r| r.preemptions as usize).sum();
        assert!(total_dem > 0, "pressure must trigger soft-tier demotions");
        assert!(total_pre > 0, "pressure must trigger hard-tier evictions");
        // Same workload, same per-request streams: every request that
        // finished in both runs must match bit-for-bit — preemption
        // rebuilds at full precision, and demoted victims' accepted
        // tokens were produced before/after (not during) demotion only
        // if untouched; so compare only requests never demoted.
        assert_eq!(free.records().len(), tight.records().len());
        let mut compared = 0;
        for (f, t) in free.records().iter().zip(tight.records().iter()) {
            if f.phase == Phase::Finished && t.phase == Phase::Finished && t.demotions == 0 {
                assert_eq!(
                    f.token_hashes, t.token_hashes,
                    "preemption must be invisible"
                );
                compared += 1;
            }
        }
        assert!(compared > 0, "some undemoted request finished in both runs");
        assert!(
            tight
                .records()
                .iter()
                .any(|r| r.phase == Phase::Finished && r.preemptions > 0),
            "some preempted request must still finish"
        );
    }

    #[test]
    fn online_alarm_discards_the_token_and_recovers_bit_identically() {
        let cfg = ServeConfig {
            token_budget: 8,
            prefill_budget: 4,
            scrub_slo_steps: Some(4),
            ..ServeConfig::default()
        };
        let mk = || {
            let mut e = engine();
            e.set_prefill_chunk(4);
            Scheduler::new(e, cfg)
        };
        let (mut subject, mut golden) = (mk(), mk());
        let req = Request {
            tenant: 0,
            priority: Priority::Interactive,
            prompt_tokens: 8,
            output_tokens: 12,
            seed: 999,
            prefix_seed: None,
            prefix_tokens: 0,
        };
        subject.step(core::slice::from_ref(&req));
        golden.step(core::slice::from_ref(&req));
        // Admit fully and decode a few tokens.
        for _ in 0..6 {
            subject.step(&[]);
            golden.step(&[]);
        }
        let targets = subject.active_decoding();
        assert_eq!(targets.len(), 1);
        let (_, seq) = targets[0];
        // A value-side flip makes the next decode residual alarm.
        subject
            .engine_mut()
            .flip_storage_bit(seq, 1, 0, 2, false, 62);
        let mut alarms = 0;
        for _ in 0..200 {
            let rep = subject.step(&[]);
            golden.step(&[]);
            alarms += rep.online_alarms;
            if subject.records()[0].phase == Phase::Finished {
                break;
            }
        }
        for _ in 0..200 {
            if golden.records()[0].phase == Phase::Finished {
                break;
            }
            golden.step(&[]);
        }
        assert!(alarms > 0, "the corrupted value must alarm online");
        let (s, g) = (&subject.records()[0], &golden.records()[0]);
        assert_eq!(s.phase, Phase::Finished);
        assert_eq!(g.phase, Phase::Finished);
        assert!(
            s.quarantines > 0,
            "the alarm must trigger evict-and-requeue"
        );
        assert_eq!(
            s.token_hashes, g.token_hashes,
            "recovery must replay every token bit-identically"
        );
    }

    #[test]
    fn scrub_finding_repairs_in_place_without_losing_a_token() {
        let cfg = ServeConfig {
            token_budget: 8,
            prefill_budget: 4,
            scrub_slo_steps: Some(2),
            ..ServeConfig::default()
        };
        let mk = || {
            let mut e = engine();
            e.set_prefill_chunk(4);
            Scheduler::new(e, cfg)
        };
        let (mut subject, mut golden) = (mk(), mk());
        let req = Request {
            tenant: 0,
            priority: Priority::Interactive,
            prompt_tokens: 8,
            output_tokens: 16,
            seed: 4242,
            prefix_seed: None,
            prefix_tokens: 0,
        };
        subject.step(core::slice::from_ref(&req));
        golden.step(core::slice::from_ref(&req));
        for _ in 0..5 {
            subject.step(&[]);
            golden.step(&[]);
        }
        let (_, seq) = subject.active_decoding()[0];
        // A key-side flip is invisible to the online residual; the
        // scrubber catches it and the log repairs in place. Tokens
        // decoded inside the detection-latency window consume the
        // corrupt key, so only tokens outside the window can match.
        let flip_step = subject.now();
        subject
            .engine_mut()
            .flip_storage_bit(seq, 1, 0, 1, true, 61);
        let mut repair_step = None;
        for _ in 0..200 {
            let rep = subject.step(&[]);
            golden.step(&[]);
            if rep.repaired_blocks > 0 && repair_step.is_none() {
                repair_step = Some(rep.step);
            }
            if subject.records()[0].phase == Phase::Finished {
                break;
            }
        }
        for _ in 0..200 {
            if golden.records()[0].phase == Phase::Finished {
                break;
            }
            golden.step(&[]);
        }
        let repair_step = repair_step.expect("the scrubber must find and repair the flip");
        let (s, g) = (&subject.records()[0], &golden.records()[0]);
        assert_eq!(s.phase, Phase::Finished);
        assert_eq!(s.quarantines, 0, "an in-place repair needs no quarantine");
        // In-place repair never perturbs scheduling: same token steps.
        assert_eq!(s.token_steps, g.token_steps);
        let mut after_repair = 0;
        for (j, (&sh, &gh)) in s.token_hashes.iter().zip(&g.token_hashes).enumerate() {
            let step = s.token_steps[j];
            if step < flip_step {
                assert_eq!(sh, gh, "pre-flip token {j} must match");
            } else if step > repair_step {
                assert_eq!(sh, gh, "post-repair token {j} must match");
                after_repair += 1;
            }
        }
        assert!(
            after_repair > 0,
            "tokens after the repair must exist and match"
        );
    }

    #[test]
    fn decode_interleaves_with_pending_prefill_inside_one_budget() {
        let cfg = ServeConfig {
            token_budget: 8,
            prefill_budget: 4,
            ..ServeConfig::default()
        };
        let mut e = engine();
        e.set_prefill_chunk(4);
        let mut sched = Scheduler::new(e, cfg);
        let mk = |seed, prompt| Request {
            tenant: 0,
            priority: Priority::Batch,
            prompt_tokens: prompt,
            output_tokens: 24,
            seed,
            prefix_seed: None,
            prefix_tokens: 0,
        };
        // One short request reaches decode first...
        sched.step(&[mk(1, 4)]);
        sched.step(&[]);
        assert_eq!(sched.active_decoding().len(), 1);
        // ...then a flood of long prompts keeps chunks pending for many
        // steps. The old scheduler spent the whole budget on admission
        // (decode_budget hit 0 whenever pending load filled it); now
        // prefill is capped at its share and decode rides every step.
        let flood: Vec<Request> = (0..4).map(|i| mk(100 + i, 16)).collect();
        sched.step(&flood);
        let mut overlapped = 0;
        for _ in 0..12 {
            let rep = sched.step(&[]);
            assert!(
                rep.prefill_tokens <= cfg.prefill_budget,
                "prefill stayed inside its share"
            );
            assert!(rep.decode_tokens <= cfg.token_budget - rep.prefill_tokens.min(4));
            if rep.prefill_tokens > 0 {
                assert!(
                    rep.decode_tokens > 0,
                    "pending chunks must not stall decode"
                );
                overlapped += 1;
            }
        }
        assert!(overlapped > 0, "the flood kept chunks pending");
    }

    #[test]
    fn preemption_victim_is_cheapest_recompute() {
        // Two same-priority requests: the long-history one was the old
        // policy's survivor by accident of age; the cost-aware policy
        // must pick the short history (cheapest to rebuild) explicitly.
        let cfg = ServeConfig {
            token_budget: 16,
            prefill_budget: 8,
            // One f64 block = 2·4·16·8 = 1 KiB; bound low enough that
            // demotion alone cannot satisfy it.
            max_kv_bytes: Some(2 * 1024),
            ..ServeConfig::default()
        };
        let mut e = engine();
        e.set_prefill_chunk(8);
        let mut sched = Scheduler::new(e, cfg);
        let mk = |seed, prompt| Request {
            tenant: 0,
            priority: Priority::Batch,
            prompt_tokens: prompt,
            output_tokens: 30,
            seed,
            prefix_seed: None,
            prefix_tokens: 0,
        };
        // rec 0: long history (old policy would never pick it — newest
        // wins — and neither does the new one: it's expensive).
        // rec 1: short history, arrives later (old policy's victim order
        // picked the *newest*, which is also rec 1 here — so distinguish
        // by a third, newest-but-long request rec 2).
        sched.step(&[mk(7, 24)]);
        for _ in 0..4 {
            sched.step(&[]);
        }
        sched.step(&[mk(8, 4)]);
        sched.step(&[mk(9, 24)]);
        for _ in 0..30 {
            sched.step(&[]);
            let recs = sched.records();
            if recs.iter().any(|r| r.preemptions > 0) {
                break;
            }
        }
        let recs = sched.records();
        assert!(
            recs[1].preemptions > 0,
            "the short-history request is the cheapest-recompute victim"
        );
        assert_eq!(
            recs[0].preemptions, 0,
            "the long-history request must keep its cache"
        );
    }

    #[test]
    fn shared_prefix_load_registers_once_and_replays_identically() {
        let spec = LoadSpec {
            tenants: 2,
            prefix_tokens: 8,
            prefix_share_prob: 1.0,
            prompt_min: 2,
            prompt_max: 12,
            output_min: 2,
            output_max: 8,
            ..LoadSpec::default()
        };
        let mk = || {
            let mut e = engine();
            e.set_prefill_chunk(4);
            Scheduler::new(e, ServeConfig::default())
        };
        let (mut a, mut b) = (mk(), mk());
        let (mut ga, mut gb) = (LoadGen::new(spec, 77), LoadGen::new(spec, 77));
        for _ in 0..40 {
            a.step(&ga.step());
            b.step(&gb.step());
        }
        for _ in 0..400 {
            let (ra, _) = (a.step(&[]), b.step(&[]));
            if ra.prefill_tokens == 0 && ra.decode_tokens == 0 && a.queue_len() == 0 {
                break;
            }
        }
        // Every request carried a tenant prefix; at most one registry
        // entry per tenant exists, with multiple readers behind it.
        assert!(a.records().iter().all(|r| r.prefix_seed.is_some()));
        let ids = a.engine().prefix_ids();
        assert!(!ids.is_empty() && ids.len() <= spec.tenants);
        let readers: usize = ids.iter().map(|&id| a.engine().prefix_readers(id)).sum();
        let admitted = a
            .records()
            .iter()
            .filter(|r| r.admitted_step.is_some())
            .count();
        assert!(
            readers >= admitted,
            "every admission (and re-admission) read through the registry"
        );
        // Twin replay is bitwise identical — sharing perturbs nothing.
        assert_eq!(a.records().len(), b.records().len());
        let mut finished = 0;
        for (x, y) in a.records().iter().zip(b.records().iter()) {
            assert_eq!(x.phase, y.phase);
            assert_eq!(x.token_hashes, y.token_hashes);
            if x.phase == Phase::Finished {
                assert_eq!(x.token_hashes.len(), x.output_tokens);
                finished += 1;
            }
        }
        assert!(finished > 0, "shared-prefix load must finish requests");
    }

    #[test]
    fn speculation_gamma_zero_and_one_are_bit_identical() {
        // γ ∈ {0, 1} must leave the pre-speculation scheduler untouched:
        // same phases, same token bits, same step timing.
        let base = run(ServeConfig::default(), 41, 50);
        let g1 = run(
            ServeConfig {
                speculation_gamma: 1,
                draft_acceptance: 0.7,
                ..ServeConfig::default()
            },
            41,
            50,
        );
        assert_eq!(base.records().len(), g1.records().len());
        for (x, y) in base.records().iter().zip(g1.records().iter()) {
            assert_eq!(x.phase, y.phase);
            assert_eq!(x.token_hashes, y.token_hashes);
            assert_eq!(x.token_steps, y.token_steps);
        }
    }

    #[test]
    fn speculative_decode_delivers_the_sequential_token_stream() {
        // Accepted speculative tokens are the *same* stream rows the
        // sequential scheduler decodes, so every request that finishes
        // under both configs carries bitwise-identical token hashes.
        let seq = run(ServeConfig::default(), 53, 60);
        let spec = run(
            ServeConfig {
                speculation_gamma: 4,
                draft_acceptance: 0.9,
                ..ServeConfig::default()
            },
            53,
            60,
        );
        assert_eq!(seq.records().len(), spec.records().len());
        let mut finished_both = 0;
        for (x, y) in seq.records().iter().zip(spec.records().iter()) {
            if x.phase == Phase::Finished && y.phase == Phase::Finished {
                assert_eq!(
                    x.token_hashes, y.token_hashes,
                    "speculative delivery must be bitwise sequential"
                );
                finished_both += 1;
            }
        }
        assert!(
            finished_both > 5,
            "the α=0.9 run must finish a comparable request population"
        );
    }

    #[test]
    fn rejected_speculation_still_charges_the_budget() {
        // α = 0: the draft is always wrong, every window rolls back
        // whole — yet each chosen sequence still claimed γ budget
        // tokens. No delivery, no goodput, full charge.
        let cfg = ServeConfig {
            speculation_gamma: 4,
            draft_acceptance: 0.0,
            ..ServeConfig::default()
        };
        let mut e = engine();
        e.set_prefill_chunk(4);
        let mut sched = Scheduler::new(e, cfg);
        let mut gen = LoadGen::new(LoadSpec::default(), 61);
        let mut speculated = 0usize;
        for _ in 0..40 {
            let rep = sched.step(&gen.step());
            assert_eq!(
                rep.spec_accepted, 0,
                "an always-wrong draft delivers nothing"
            );
            assert_eq!(rep.decode_tokens, 0);
            assert_eq!(rep.spec_rejected, rep.speculated_tokens);
            assert_eq!(rep.speculated_tokens % 4, 0);
            assert!(
                rep.speculated_tokens <= cfg.token_budget,
                "speculation overflowed the step budget"
            );
            speculated += rep.speculated_tokens;
        }
        assert!(speculated > 0, "windows were scored and charged");
        let summary = sched.summary(&SloSpec {
            ttft_steps: 16,
            per_token_steps: 6,
        });
        assert_eq!(
            summary.total_tokens, 0,
            "rejected speculation must not inflate goodput accounting"
        );
    }

    #[test]
    fn speculation_respects_the_deficit_between_tenants() {
        // Two tenants at γ=4: windows are charged in full per tenant, so
        // neither tenant's delivered stream can starve the other by more
        // than one window round.
        let cfg = ServeConfig {
            speculation_gamma: 4,
            draft_acceptance: 0.8,
            token_budget: 8,
            prefill_budget: 4,
            ..ServeConfig::default()
        };
        let sched = run(cfg, 67, 80);
        let per_tenant: Vec<usize> = (0..LoadSpec::default().tenants)
            .map(|t| {
                sched
                    .records()
                    .iter()
                    .filter(|r| r.tenant == t && r.phase == Phase::Finished)
                    .map(|r| r.token_hashes.len())
                    .sum()
            })
            .collect();
        assert!(
            per_tenant.iter().filter(|&&n| n > 0).count() >= 2,
            "deficit-fair speculation serves more than one tenant: {per_tenant:?}"
        );
    }

    #[test]
    fn corruption_inside_a_speculative_window_is_caught_before_delivery() {
        // Flip a value-side storage bit in an active sequence, then let
        // the next speculative window score over it: the fused verdict
        // alarms inside the window, nothing is delivered from it, the
        // request quarantines and resumes — and the final token stream
        // is bitwise identical to an unperturbed twin.
        let cfg = ServeConfig {
            speculation_gamma: 4,
            draft_acceptance: 0.9,
            ..ServeConfig::default()
        };
        let mk = |seed| Request {
            tenant: 0,
            priority: Priority::Interactive,
            prompt_tokens: 6,
            output_tokens: 12,
            seed,
            prefix_seed: None,
            prefix_tokens: 0,
        };
        let drive = |inject: bool| -> (Scheduler, usize) {
            let mut e = engine();
            e.set_prefill_chunk(4);
            let mut sched = Scheduler::new(e, cfg);
            sched.step(&[mk(301), mk(302)]);
            let mut alarms = 0;
            let mut injected = false;
            for _ in 0..300 {
                if inject && !injected {
                    if let Some(&(_, seq)) = sched.active_decoding().first() {
                        let len = sched.engine().seq_len(seq);
                        let first = sched.engine().cache().first_retained(seq);
                        if len > first {
                            sched
                                .engine_mut()
                                .flip_storage_bit(seq, len - 1, 0, 0, false, 61);
                            injected = true;
                        }
                    }
                }
                let rep = sched.step(&[]);
                alarms += rep.online_alarms;
                if sched.records().iter().all(|r| r.phase == Phase::Finished) {
                    break;
                }
            }
            (sched, alarms)
        };
        let (clean, clean_alarms) = drive(false);
        let (subject, subject_alarms) = drive(true);
        assert_eq!(clean_alarms, 0, "the clean twin never alarms");
        assert!(
            subject_alarms > 0,
            "the flipped value row must alarm inside the window"
        );
        assert!(subject
            .records()
            .iter()
            .any(|r| r.quarantines > 0 && r.phase == Phase::Finished));
        for (x, y) in clean.records().iter().zip(subject.records().iter()) {
            assert_eq!(x.phase, Phase::Finished);
            assert_eq!(y.phase, Phase::Finished);
            assert_eq!(
                x.token_hashes, y.token_hashes,
                "recovery must deliver the clean stream bit-for-bit"
            );
        }
    }

    #[test]
    fn resident_prefixes_shed_after_costlier_peers() {
        // Register tenant 0's prefix, then overflow the queue with Batch
        // requests: the resident-prefix request charges only its 2-token
        // suffix, the unshared 8-token prompt is the costlier victim —
        // even though it arrived first.
        let cfg = ServeConfig {
            queue_bound: 1,
            ..ServeConfig::default()
        };
        let mk = |prompt, seed, prefix: Option<u64>, ptoks| Request {
            tenant: 0,
            priority: Priority::Batch,
            prompt_tokens: prompt,
            output_tokens: 1,
            seed,
            prefix_seed: prefix,
            prefix_tokens: ptoks,
        };
        let mut sched = Scheduler::new(engine(), cfg);
        // Registers (99, 12) in the prefix registry on admission.
        sched.step(&[mk(2, 500, Some(99), 12)]);
        let rep = sched.step(&[mk(8, 501, None, 0), mk(2, 502, Some(99), 12)]);
        assert_eq!(rep.shed, 1);
        assert_eq!(
            sched.records()[1].phase,
            Phase::Shed,
            "8 > resident suffix 2"
        );
        assert_ne!(sched.records()[2].phase, Phase::Shed);

        // A *non-resident* prefix pays prefix + suffix (12 + 2 = 14) and
        // sheds before the unshared 8-token prompt it arrived ahead of.
        let mut sched = Scheduler::new(engine(), cfg);
        sched.step(&[mk(2, 500, Some(99), 12)]);
        let rep = sched.step(&[mk(2, 503, Some(77), 12), mk(8, 504, None, 0)]);
        assert_eq!(rep.shed, 1);
        assert_eq!(sched.records()[1].phase, Phase::Shed, "14 > unshared 8");
        assert_ne!(sched.records()[2].phase, Phase::Shed);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        assert_eq!(percentile_u64(&[], 99.0), 0);
        assert_eq!(percentile_u64(&[5], 50.0), 5);
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_u64(&xs, 50.0), 50);
        assert_eq!(percentile_u64(&xs, 99.0), 99);
        assert_eq!(percentile_u64(&xs, 100.0), 100);
    }
}
