//! # fa-attention
//!
//! Reference attention kernels for the Flash-ABFT reproduction: every
//! algorithm the paper builds on, in directly-testable Rust.
//!
//! * [`naive`] — textbook attention `softmax(Q·Kᵀ)·V` (paper Eq. 1), the
//!   golden model every other kernel is validated against;
//! * [`lazy`] — Alg. 1: attention with *lazy softmax division* (two inner
//!   passes: max+scores first, then exponentials and output);
//! * [`flash2`] — Alg. 2: FlashAttention-2 with delayed softmax division —
//!   the single-pass online kernel the accelerator implements;
//! * [`tiled`] — FlashAttention-2 processed in key/value blocks, the
//!   memory-tiling form used on GPUs and by the block-parallel accelerator;
//! * [`multihead`] — multi-head wrapper splitting the model dimension into
//!   independent heads;
//! * [`batch`] — the serving path: a paged, block-allocated KV cache and
//!   a batched multi-sequence decode engine with the fused per-token
//!   checksum;
//! * [`serve`] — the SLO-aware serving frontend: tenant-fair admission
//!   under a per-step token budget, load shedding, graceful degradation
//!   under arena pressure (demote → evict-and-requeue), scrub-driven
//!   corruption absorption, and a deterministic bursty load generator;
//! * [`AttentionConfig`] — scaling (1/√d) and causal masking options shared
//!   by all kernels.
//!
//! All kernels are generic over the [`Scalar`](fa_tensor::Scalar) element
//! format, so the same code serves as the f64 golden model and the BF16
//! datapath model.
//!
//! # Example
//!
//! ```
//! use fa_tensor::{Matrix, random::ElementDist};
//! use fa_attention::{naive, flash2, AttentionConfig};
//!
//! let n = 16;
//! let d = 8;
//! let q = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 1);
//! let k = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 2);
//! let v = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 3);
//! let cfg = AttentionConfig::new(d);
//!
//! let reference = naive::attention(&q, &k, &v, &cfg);
//! let flash = flash2::attention(&q, &k, &v, &cfg);
//! assert!(reference.max_abs_diff(&flash) < 1e-12);
//! ```

pub mod batch;
pub mod decode;
pub mod encoder;
pub mod flash2;
pub mod gqa;
pub mod lazy;
pub mod multihead;
pub mod naive;
pub mod serve;
pub mod tiled;
pub mod topology;

mod config;

pub use config::AttentionConfig;
pub use topology::HeadTopology;

/// Shared parallelization policy: one threshold for the whole workspace,
/// owned by [`fa_tensor::par`].
pub(crate) mod par {
    pub use fa_tensor::par::{worth_parallelizing, worth_parallelizing_units};
}
