//! The four evaluated LLM attention-layer configurations (paper §IV-B).

use fa_attention::AttentionConfig;

/// The LLMs of the paper's Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum LlmModel {
    /// BERT-base: head dimension 64 (12 heads × 64 = 768 model dim).
    Bert,
    /// Phi-3-mini: head dimension 96.
    Phi3Mini,
    /// Llama-3.1: head dimension 128.
    Llama31,
    /// Gemma2: head dimension 256.
    Gemma2,
}

/// Per-model attention-layer parameters.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ModelConfig {
    /// Which model.
    pub model: LlmModel,
    /// Display name.
    pub name: &'static str,
    /// Per-head hidden dimension d (the paper's independent variable).
    pub head_dim: usize,
    /// Number of attention heads in the first layer.
    pub num_heads: usize,
}

impl ModelConfig {
    /// The single-head attention configuration the paper evaluates
    /// ("without loss of generality, we will limit our discussion to a
    /// single-head attention", §II), with standard 1/√d scaling.
    pub fn attention(&self) -> AttentionConfig {
        AttentionConfig::new(self.head_dim)
    }

    /// Model dimension (heads × head_dim).
    pub fn model_dim(&self) -> usize {
        self.head_dim * self.num_heads
    }
}

impl LlmModel {
    /// This model's configuration.
    pub fn config(self) -> ModelConfig {
        match self {
            LlmModel::Bert => ModelConfig {
                model: self,
                name: "Bert",
                head_dim: 64,
                num_heads: 12,
            },
            LlmModel::Phi3Mini => ModelConfig {
                model: self,
                name: "Phi-3-mini",
                head_dim: 96,
                num_heads: 32,
            },
            LlmModel::Llama31 => ModelConfig {
                model: self,
                name: "Llama-3.1",
                head_dim: 128,
                num_heads: 32,
            },
            LlmModel::Gemma2 => ModelConfig {
                model: self,
                name: "Gemma2",
                head_dim: 256,
                num_heads: 8,
            },
        }
    }
}

impl std::fmt::Display for LlmModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.config().name)
    }
}

/// The four models of Table I, in the paper's column order (ascending d).
pub const PAPER_MODELS: [LlmModel; 4] = [
    LlmModel::Bert,
    LlmModel::Phi3Mini,
    LlmModel::Llama31,
    LlmModel::Gemma2,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_head_dims() {
        // Table I header: d = 64, 96, 128, 256.
        let dims: Vec<usize> = PAPER_MODELS.iter().map(|m| m.config().head_dim).collect();
        assert_eq!(dims, vec![64, 96, 128, 256]);
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = PAPER_MODELS.iter().map(|m| m.config().name).collect();
        assert_eq!(names, vec!["Bert", "Phi-3-mini", "Llama-3.1", "Gemma2"]);
    }

    #[test]
    fn attention_config_uses_head_dim() {
        for m in PAPER_MODELS {
            let cfg = m.config().attention();
            assert_eq!(cfg.head_dim(), m.config().head_dim);
            assert!((cfg.scale() - 1.0 / (m.config().head_dim as f64).sqrt()).abs() < 1e-15);
        }
    }

    #[test]
    fn model_dim_is_heads_times_head_dim() {
        assert_eq!(LlmModel::Bert.config().model_dim(), 768);
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(format!("{}", LlmModel::Llama31), "Llama-3.1");
    }
}
