//! The four evaluated LLM attention-layer configurations (paper §IV-B).

use fa_attention::gqa::GqaConfig;
use fa_attention::{AttentionConfig, HeadTopology};

/// The LLMs of the paper's Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum LlmModel {
    /// BERT-base: head dimension 64 (12 heads × 64 = 768 model dim).
    Bert,
    /// Phi-3-mini: head dimension 96.
    Phi3Mini,
    /// Llama-3.1: head dimension 128.
    Llama31,
    /// Gemma2: head dimension 256.
    Gemma2,
}

/// Per-model attention-layer parameters.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ModelConfig {
    /// Which model.
    pub model: LlmModel,
    /// Display name.
    pub name: &'static str,
    /// Per-head hidden dimension d (the paper's independent variable).
    pub head_dim: usize,
    /// Number of (query) attention heads in the first layer.
    pub num_heads: usize,
    /// Number of key/value heads: equal to `num_heads` for MHA models
    /// (BERT, Phi-3-mini), smaller for the grouped-query models — each
    /// kv head's K/V stream (and its `sumrow(V)` checksum input) is
    /// shared by `num_heads / kv_heads` query heads.
    pub kv_heads: usize,
}

impl ModelConfig {
    /// The single-head attention configuration the paper evaluates
    /// ("without loss of generality, we will limit our discussion to a
    /// single-head attention", §II), with standard 1/√d scaling.
    pub fn attention(&self) -> AttentionConfig {
        AttentionConfig::new(self.head_dim)
    }

    /// Model dimension (query heads × head_dim).
    pub fn model_dim(&self) -> usize {
        self.head_dim * self.num_heads
    }

    /// Width of the model's packed K/V projections
    /// (kv heads × head_dim) — what the per-kv-head paged cache stores
    /// per token.
    pub fn kv_dim(&self) -> usize {
        self.head_dim * self.kv_heads
    }

    /// Query heads sharing each kv head (1 for the MHA models).
    pub fn group_size(&self) -> usize {
        self.num_heads / self.kv_heads
    }

    /// The full head topology — what the GQA-native serving stack
    /// (`fa_attention::batch::DecodeBatch`) consumes directly.
    pub fn topology(&self) -> HeadTopology {
        HeadTopology::gqa(self.num_heads, self.kv_heads, self.attention())
    }

    /// The grouped-query configuration for the one-shot kernels
    /// (`fa_attention::gqa`, `flash_abft::api::gqa_checked`).
    pub fn gqa(&self) -> GqaConfig {
        GqaConfig::new(self.num_heads, self.kv_heads, self.attention())
    }
}

impl LlmModel {
    /// This model's configuration. Head counts follow the deployed
    /// checkpoints: Llama-3.1-8B (32 query / 8 kv heads) and Gemma2-2B
    /// (8 query / 4 kv heads, d=256) are grouped-query; BERT-base and
    /// Phi-3-mini (32 heads with full K/V) are the `kv_heads ==
    /// num_heads` point.
    pub fn config(self) -> ModelConfig {
        match self {
            LlmModel::Bert => ModelConfig {
                model: self,
                name: "Bert",
                head_dim: 64,
                num_heads: 12,
                kv_heads: 12,
            },
            LlmModel::Phi3Mini => ModelConfig {
                model: self,
                name: "Phi-3-mini",
                head_dim: 96,
                num_heads: 32,
                kv_heads: 32,
            },
            LlmModel::Llama31 => ModelConfig {
                model: self,
                name: "Llama-3.1",
                head_dim: 128,
                num_heads: 32,
                kv_heads: 8,
            },
            LlmModel::Gemma2 => ModelConfig {
                model: self,
                name: "Gemma2",
                head_dim: 256,
                num_heads: 8,
                kv_heads: 4,
            },
        }
    }
}

impl std::fmt::Display for LlmModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.config().name)
    }
}

/// The four models of Table I, in the paper's column order (ascending d).
pub const PAPER_MODELS: [LlmModel; 4] = [
    LlmModel::Bert,
    LlmModel::Phi3Mini,
    LlmModel::Llama31,
    LlmModel::Gemma2,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_head_dims() {
        // Table I header: d = 64, 96, 128, 256.
        let dims: Vec<usize> = PAPER_MODELS.iter().map(|m| m.config().head_dim).collect();
        assert_eq!(dims, vec![64, 96, 128, 256]);
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = PAPER_MODELS.iter().map(|m| m.config().name).collect();
        assert_eq!(names, vec!["Bert", "Phi-3-mini", "Llama-3.1", "Gemma2"]);
    }

    #[test]
    fn attention_config_uses_head_dim() {
        for m in PAPER_MODELS {
            let cfg = m.config().attention();
            assert_eq!(cfg.head_dim(), m.config().head_dim);
            assert!((cfg.scale() - 1.0 / (m.config().head_dim as f64).sqrt()).abs() < 1e-15);
        }
    }

    #[test]
    fn model_dim_is_heads_times_head_dim() {
        assert_eq!(LlmModel::Bert.config().model_dim(), 768);
    }

    #[test]
    fn deployed_head_topologies() {
        // Grouped-query geometries of the deployed checkpoints: the KV
        // cache (and its decode bytes/step) shrinks by group_size.
        let llama = LlmModel::Llama31.config();
        assert_eq!((llama.num_heads, llama.kv_heads), (32, 8));
        assert_eq!(llama.group_size(), 4);
        assert_eq!(llama.kv_dim(), 8 * 128);
        let gemma = LlmModel::Gemma2.config();
        assert_eq!((gemma.num_heads, gemma.kv_heads), (8, 4));
        assert_eq!(gemma.group_size(), 2);
        // The MHA models sit at the degenerate point.
        assert_eq!(LlmModel::Bert.config().group_size(), 1);
        assert_eq!(LlmModel::Phi3Mini.config().group_size(), 1);
        for m in PAPER_MODELS {
            let cfg = m.config();
            let topo = cfg.topology();
            assert_eq!(topo.query_heads, cfg.num_heads);
            assert_eq!(topo.kv_heads, cfg.kv_heads);
            assert_eq!(topo.q_dim(), cfg.model_dim());
            assert_eq!(topo.kv_dim(), cfg.kv_dim());
            assert_eq!(cfg.gqa().topology(), topo);
        }
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(format!("{}", LlmModel::Llama31), "Llama-3.1");
    }
}
