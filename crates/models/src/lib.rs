//! # fa-models
//!
//! LLM attention-layer configurations and synthetic workload generation.
//!
//! The paper injects faults into "the first attention layer of four LLMs
//! with different hidden dimensions using the same embedding prompt with
//! sequence length of 256": Bert (d=64), Phi-3-mini (d=96), Llama-3.1
//! (d=128) and Gemma2 (d=256), pulled from HuggingFace with PromptBench
//! prompts (§IV-B). This crate substitutes synthetic embeddings with
//! matched statistics (see DESIGN.md): the checker's behaviour depends on
//! score/weight distributions, not on which English words produced them,
//! and the distribution sweep in [`workload`] demonstrates insensitivity.

pub mod stats;
pub mod workload;

mod configs;

pub use configs::{LlmModel, ModelConfig, PAPER_MODELS};
pub use stats::WorkloadStats;
pub use workload::{Workload, WorkloadSpec};
