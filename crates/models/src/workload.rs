//! Synthetic workload generation — the PromptBench substitute.
//!
//! Real Q/K/V matrices come from projecting token embeddings; after
//! LayerNorm they are approximately zero-mean with unit-order scale. The
//! generator produces BF16 Q/K/V with a configurable element
//! distribution, a fixed seed per "prompt", and helpers to sweep
//! distributions — demonstrating the checker's insensitivity to the input
//! text that the paper obtains by construction from real prompts.

use crate::configs::ModelConfig;
use fa_numerics::BF16;
use fa_tensor::{random::ElementDist, Matrix};

/// Specification of one synthetic workload ("prompt").
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadSpec {
    /// Sequence length N (the paper uses 256).
    pub seq_len: usize,
    /// Element distribution for Q/K/V.
    pub dist: ElementDist,
    /// Base seed; Q, K and V derive distinct streams from it.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's operating point: N = 256, embedding-like Gaussian
    /// elements, a fixed seed (the "same embedding prompt" for all
    /// models).
    pub fn paper(seed: u64) -> Self {
        WorkloadSpec {
            seq_len: 256,
            dist: ElementDist::Gaussian { std_dev: 1.0 },
            seed,
        }
    }

    /// Distribution-sweep variants used to show input insensitivity.
    pub fn sweep_variants(seed: u64) -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec {
                seq_len: 256,
                dist: ElementDist::Gaussian { std_dev: 0.5 },
                seed,
            },
            WorkloadSpec {
                seq_len: 256,
                dist: ElementDist::Gaussian { std_dev: 2.0 },
                seed,
            },
            WorkloadSpec {
                seq_len: 256,
                dist: ElementDist::Uniform { lo: -2.0, hi: 2.0 },
                seed,
            },
            WorkloadSpec {
                seq_len: 256,
                dist: ElementDist::HeavyTail { scale: 1.0 },
                seed,
            },
        ]
    }
}

/// A generated Q/K/V triple in the accelerator's BF16 input format.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Query matrix (N×d).
    pub q: Matrix<BF16>,
    /// Key matrix (N×d).
    pub k: Matrix<BF16>,
    /// Value matrix (N×d).
    pub v: Matrix<BF16>,
    /// The spec that produced it.
    pub spec: WorkloadSpec,
}

impl Workload {
    /// Generates the workload for a model configuration.
    ///
    /// # Panics
    ///
    /// Panics if `spec.seq_len == 0`.
    pub fn generate(model: &ModelConfig, spec: WorkloadSpec) -> Self {
        assert!(spec.seq_len > 0, "sequence length must be positive");
        let d = model.head_dim;
        let q = Matrix::random_seeded(spec.seq_len, d, spec.dist, spec.seed.wrapping_mul(3) + 1);
        let k = Matrix::random_seeded(spec.seq_len, d, spec.dist, spec.seed.wrapping_mul(3) + 2);
        let v = Matrix::random_seeded(spec.seq_len, d, spec.dist, spec.seed.wrapping_mul(3) + 3);
        Workload { q, k, v, spec }
    }

    /// Sequence length.
    pub fn seq_len(&self) -> usize {
        self.q.rows()
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.q.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::LlmModel;

    #[test]
    fn paper_spec_shape() {
        let spec = WorkloadSpec::paper(42);
        let w = Workload::generate(&LlmModel::Llama31.config(), spec);
        assert_eq!(w.seq_len(), 256);
        assert_eq!(w.head_dim(), 128);
        assert_eq!(w.q.rows(), w.k.rows());
        assert_eq!(w.k.rows(), w.v.rows());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = LlmModel::Bert.config();
        let a = Workload::generate(&cfg, WorkloadSpec::paper(7));
        let b = Workload::generate(&cfg, WorkloadSpec::paper(7));
        assert_eq!(a.q, b.q);
        assert_eq!(a.v, b.v);
        let c = Workload::generate(&cfg, WorkloadSpec::paper(8));
        assert_ne!(a.q, c.q);
    }

    #[test]
    fn q_k_v_are_distinct_streams() {
        let w = Workload::generate(&LlmModel::Bert.config(), WorkloadSpec::paper(1));
        assert_ne!(w.q, w.k);
        assert_ne!(w.k, w.v);
    }

    #[test]
    fn elements_are_bf16_clean() {
        let w = Workload::generate(&LlmModel::Bert.config(), WorkloadSpec::paper(2));
        for &x in w.q.as_slice() {
            assert!(x.is_finite());
        }
    }

    #[test]
    fn sweep_variants_cover_distributions() {
        let variants = WorkloadSpec::sweep_variants(9);
        assert_eq!(variants.len(), 4);
        let cfg = LlmModel::Bert.config();
        for spec in variants {
            let w = Workload::generate(&cfg, spec);
            assert!(w.q.all_finite());
            assert_eq!(w.seq_len(), 256);
        }
    }

    #[test]
    #[should_panic(expected = "sequence length must be positive")]
    fn zero_seq_len_panics() {
        let mut spec = WorkloadSpec::paper(1);
        spec.seq_len = 0;
        let _ = Workload::generate(&LlmModel::Bert.config(), spec);
    }
}
