//! Workload statistics — validating the synthetic-prompt substitution.
//!
//! The checker's arithmetic behaviour depends on a handful of workload
//! statistics: the attention-score range (drives exp magnitudes), the
//! softmax concentration (drives weight distributions and ℓ), and the
//! value-matrix row sums (the checksum operands). This module computes
//! them so tests and reports can show the synthetic workloads land in
//! the same regimes as real post-LayerNorm activations.

use crate::Workload;
use fa_attention::AttentionConfig;

/// Summary statistics of one workload's attention computation.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadStats {
    /// Minimum scaled score over all query–key pairs.
    pub score_min: f64,
    /// Maximum scaled score.
    pub score_max: f64,
    /// Mean softmax entropy per query (nats); `ln N` = uniform,
    /// 0 = one-hot.
    pub mean_entropy: f64,
    /// Mean |sumrow(V)| — the typical checksum operand magnitude.
    pub mean_abs_sumrow: f64,
    /// Largest |sumrow(V)|.
    pub max_abs_sumrow: f64,
}

impl WorkloadStats {
    /// Computes the statistics for a workload under the model's standard
    /// scaled attention.
    pub fn compute(workload: &Workload) -> Self {
        let cfg = AttentionConfig::new(workload.head_dim());
        let q = workload.q.to_f64();
        let k = workload.k.to_f64();
        let scores = fa_attention::naive::softmax_scores(&q, &k, &cfg);

        // Raw score range needs the pre-softmax scores; recompute cheaply.
        let mut score_min = f64::INFINITY;
        let mut score_max = f64::NEG_INFINITY;
        for i in 0..q.rows() {
            for j in 0..k.rows() {
                let s = fa_tensor::ops::dot_f64(q.row(i), k.row(j)) * cfg.scale();
                score_min = score_min.min(s);
                score_max = score_max.max(s);
            }
        }

        let mut entropy_sum = 0.0;
        for i in 0..scores.rows() {
            let mut h = 0.0;
            for &p in scores.row(i) {
                if p > 0.0 {
                    h -= p * p.ln();
                }
            }
            entropy_sum += h;
        }

        let sumrows = workload.v.row_sums();
        let mean_abs_sumrow = sumrows.iter().map(|x| x.abs()).sum::<f64>() / sumrows.len() as f64;
        let max_abs_sumrow = sumrows.iter().map(|x| x.abs()).fold(0.0, f64::max);

        WorkloadStats {
            score_min,
            score_max,
            mean_entropy: entropy_sum / scores.rows() as f64,
            mean_abs_sumrow,
            max_abs_sumrow,
        }
    }

    /// Normalized softmax concentration in `[0, 1]`: 0 = uniform
    /// attention, 1 = one-hot.
    pub fn concentration(&self, seq_len: usize) -> f64 {
        let uniform = (seq_len as f64).ln();
        (1.0 - self.mean_entropy / uniform).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LlmModel, WorkloadSpec};
    use fa_tensor::random::ElementDist;

    fn stats_for(dist: ElementDist) -> (WorkloadStats, usize) {
        let spec = WorkloadSpec {
            seq_len: 48,
            dist,
            seed: 7,
        };
        let w = Workload::generate(&LlmModel::Bert.config(), spec);
        (WorkloadStats::compute(&w), 48)
    }

    #[test]
    fn gaussian_workload_is_in_the_realistic_regime() {
        let (s, n) = stats_for(ElementDist::Gaussian { std_dev: 1.0 });
        // Scaled scores of unit-Gaussian embeddings: O(±4) range.
        assert!(s.score_min > -10.0 && s.score_max < 10.0, "{s:?}");
        assert!(s.score_max > 0.5, "scores must have spread: {s:?}");
        // Attention neither uniform nor one-hot.
        let c = s.concentration(n);
        assert!(c > 0.02 && c < 0.9, "concentration {c}");
        // Checksum operands: |sumrow| ~ sqrt(d) = 8 for d=64.
        assert!(s.mean_abs_sumrow > 1.0 && s.mean_abs_sumrow < 40.0, "{s:?}");
        assert!(s.max_abs_sumrow >= s.mean_abs_sumrow);
    }

    #[test]
    fn wider_distributions_concentrate_attention() {
        let (narrow, n) = stats_for(ElementDist::Gaussian { std_dev: 0.5 });
        let (wide, _) = stats_for(ElementDist::Gaussian { std_dev: 2.0 });
        assert!(
            wide.concentration(n) > narrow.concentration(n),
            "wide {} vs narrow {}",
            wide.concentration(n),
            narrow.concentration(n)
        );
        assert!(wide.score_max > narrow.score_max);
    }

    #[test]
    fn concentration_bounds() {
        let (s, n) = stats_for(ElementDist::Uniform {
            lo: -0.01,
            hi: 0.01,
        });
        // Nearly-zero scores: attention ~uniform, concentration ~0.
        assert!(s.concentration(n) < 0.05, "{}", s.concentration(n));
    }
}
