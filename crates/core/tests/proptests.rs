//! Property tests for the fused online-checksum kernel: single-pass
//! checksum agreement with the closed forms, and bit-identical parallel
//! execution.

use fa_attention::AttentionConfig;
use fa_tensor::random::ElementDist;
use fa_tensor::Matrix;
use flash_abft::checksum::{predicted_checksum_eq5, predicted_checksum_eq8};
use flash_abft::{flash2_with_checksum, flash2_with_checksum_serial};
use proptest::prelude::*;

fn qkv(n: usize, d: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
    (
        Matrix::random_seeded(n, d, ElementDist::default(), seed),
        Matrix::random_seeded(n, d, ElementDist::default(), seed + 1),
        Matrix::random_seeded(n, d, ElementDist::default(), seed + 2),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The fused kernel's online prediction agrees with both closed forms
    /// (Eq. 5 and Eq. 8) within the existing test tolerances, with and
    /// without masking.
    #[test]
    fn fused_checksum_matches_closed_forms(
        seed in 0u64..1_000_000,
        causal in any::<bool>(),
    ) {
        let (q, k, v) = qkv(24, 8, seed);
        let cfg = AttentionConfig::new(8).with_causal(causal);
        let fused = flash2_with_checksum(&q, &k, &v, &cfg);
        let eq5 = predicted_checksum_eq5(&q, &k, &v, &cfg);
        let eq8 = predicted_checksum_eq8(&q, &k, &v, &cfg);
        prop_assert!((fused.predicted - eq5).abs() < 1e-10, "{} vs {eq5}", fused.predicted);
        prop_assert!((fused.predicted - eq8).abs() < 1e-10, "{} vs {eq8}", fused.predicted);
        prop_assert!(fused.residual().abs() < 1e-10);
    }

    /// Query-parallel execution of the fused kernel never changes a bit:
    /// per-query passes are independent and the cross-query Kahan
    /// reductions run serially in query order.
    #[test]
    fn fused_kernel_parallel_bit_identical(
        threads in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        // 64×64×16 crosses the parallelization threshold.
        let (q, k, v) = qkv(64, 16, seed);
        let cfg = AttentionConfig::new(16);
        let serial = flash2_with_checksum_serial(&q, &k, &v, &cfg);
        let parallel = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| flash2_with_checksum(&q, &k, &v, &cfg));
        prop_assert_eq!(serial.output, parallel.output);
        prop_assert_eq!(serial.predicted.to_bits(), parallel.predicted.to_bits());
        prop_assert_eq!(serial.actual.to_bits(), parallel.actual.to_bits());
        prop_assert_eq!(serial.per_query_checks, parallel.per_query_checks);
    }

    /// The fused kernel's output matches the plain flash2 kernel (the
    /// checksum lane must not perturb the attention output).
    #[test]
    fn fused_output_matches_flash2(seed in 0u64..1_000_000) {
        let (q, k, v) = qkv(20, 8, seed);
        let cfg = AttentionConfig::new(8);
        let fused = flash2_with_checksum(&q, &k, &v, &cfg);
        let plain = fa_attention::flash2::attention(&q, &k, &v, &cfg);
        prop_assert!(fused.output.max_abs_diff(&plain) < 1e-12);
    }
}
