//! Property tests for the fused online-checksum kernel: single-pass
//! checksum agreement with the closed forms, and bit-identical parallel
//! execution.

use fa_attention::AttentionConfig;
use fa_tensor::random::ElementDist;
use fa_tensor::Matrix;
use flash_abft::checksum::{predicted_checksum_eq5, predicted_checksum_eq8};
use flash_abft::{flash2_with_checksum, flash2_with_checksum_serial};
use proptest::prelude::*;

fn qkv(n: usize, d: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
    (
        Matrix::random_seeded(n, d, ElementDist::default(), seed),
        Matrix::random_seeded(n, d, ElementDist::default(), seed + 1),
        Matrix::random_seeded(n, d, ElementDist::default(), seed + 2),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The fused kernel's online prediction agrees with both closed forms
    /// (Eq. 5 and Eq. 8) within the existing test tolerances, with and
    /// without masking.
    #[test]
    fn fused_checksum_matches_closed_forms(
        seed in 0u64..1_000_000,
        causal in any::<bool>(),
    ) {
        let (q, k, v) = qkv(24, 8, seed);
        let cfg = AttentionConfig::new(8).with_causal(causal);
        let fused = flash2_with_checksum(&q, &k, &v, &cfg);
        let eq5 = predicted_checksum_eq5(&q, &k, &v, &cfg);
        let eq8 = predicted_checksum_eq8(&q, &k, &v, &cfg);
        prop_assert!((fused.predicted - eq5).abs() < 1e-10, "{} vs {eq5}", fused.predicted);
        prop_assert!((fused.predicted - eq8).abs() < 1e-10, "{} vs {eq8}", fused.predicted);
        prop_assert!(fused.residual().abs() < 1e-10);
    }

    /// Query-parallel execution of the fused kernel never changes a bit:
    /// per-query passes are independent and the cross-query Kahan
    /// reductions run serially in query order.
    #[test]
    fn fused_kernel_parallel_bit_identical(
        threads in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        // 64×64×16 crosses the parallelization threshold.
        let (q, k, v) = qkv(64, 16, seed);
        let cfg = AttentionConfig::new(16);
        let serial = flash2_with_checksum_serial(&q, &k, &v, &cfg);
        let parallel = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| flash2_with_checksum(&q, &k, &v, &cfg));
        prop_assert_eq!(serial.output, parallel.output);
        prop_assert_eq!(serial.predicted.to_bits(), parallel.predicted.to_bits());
        prop_assert_eq!(serial.actual.to_bits(), parallel.actual.to_bits());
        prop_assert_eq!(serial.per_query_checks, parallel.per_query_checks);
    }

    /// The fused kernel's output matches the plain flash2 kernel (the
    /// checksum lane must not perturb the attention output).
    #[test]
    fn fused_output_matches_flash2(seed in 0u64..1_000_000) {
        let (q, k, v) = qkv(20, 8, seed);
        let cfg = AttentionConfig::new(8);
        let fused = flash2_with_checksum(&q, &k, &v, &cfg);
        let plain = fa_attention::flash2::attention(&q, &k, &v, &cfg);
        prop_assert!(fused.output.max_abs_diff(&plain) < 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// THE serving-path equivalence: the head-major continuous-batching
    /// engine is bit-identical to the per-(sequence, head)
    /// `CheckedDecodeSession` golden model under random admit/retire
    /// schedules, thread counts, and cache block sizes — admitted prompt
    /// outputs match `flash2_with_checksum` per head (predicted checksums
    /// included, bit for bit), decode outputs match `step` token for
    /// token, and free-list block recycling never corrupts a live
    /// sequence's checksum state.
    #[test]
    fn continuous_batching_bit_identical_to_checked_sessions(
        threads in 1usize..6,
        block_rows in 1usize..10,
        seed in 0u64..1_000_000,
        epochs in 1usize..4,
    ) {
        use fa_attention::batch::DecodeBatch;
        use fa_attention::multihead::MultiHeadConfig;
        use fa_tensor::random::ElementDist;
        use flash_abft::CheckedDecodeSession;

        let heads = 2;
        let d = 4;
        let cfg = MultiHeadConfig::new(heads, AttentionConfig::new(d));
        let dim = cfg.model_dim();
        let rand = |rows: usize, s: u64| {
            Matrix::<f64>::random_seeded(rows, dim, ElementDist::default(), s)
        };
        let slice_head = |m: &Matrix<f64>, h: usize| {
            Matrix::from_fn(m.rows(), d, |r, c| m[(r, h * d + c)])
        };
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();

        let mut engine = DecodeBatch::<f64>::new(cfg, block_rows);
        // Golden model: one CheckedDecodeSession per (engine slot, head).
        let mut golden: Vec<Option<Vec<CheckedDecodeSession>>> = Vec::new();
        let mut live: Vec<usize> = Vec::new();
        let mut rng = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut next = move || {
            rng = rng.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            rng >> 33
        };

        for e in 0..epochs {
            // Admit 1–2 prompts; each must match flash2_with_checksum per
            // head (which is what CheckedDecodeSession::prefill_checked
            // runs), bit for bit.
            for _ in 0..1 + next() % 2 {
                let n = 1 + (next() % 5) as usize;
                let s = seed + 37 * e as u64 + next() % 1000;
                let (q, k, v) = (rand(n, s), rand(n, s + 1), rand(n, s + 2));
                let admitted = pool.install(|| engine.admit(&q, &k, &v));
                let mut sessions = Vec::with_capacity(heads);
                let mut predicted = 0.0f64;
                for h in 0..heads {
                    let mut session = CheckedDecodeSession::new(cfg.head);
                    let checked = session.prefill_checked(
                        &slice_head(&q, h),
                        &slice_head(&k, h),
                        &slice_head(&v, h),
                    );
                    for r in 0..n {
                        for c in 0..d {
                            prop_assert_eq!(
                                admitted.output[(r, h * d + c)].to_bits(),
                                checked.output[(r, c)].to_bits(),
                                "prompt row {} head {} lane {}", r, h, c
                            );
                        }
                    }
                    predicted += checked.predicted;
                    sessions.push(session);
                }
                prop_assert_eq!(
                    admitted.predicted.to_bits(),
                    predicted.to_bits(),
                    "prompt predicted checksum == Σ_h flash2_with_checksum"
                );
                if admitted.seq >= golden.len() {
                    golden.resize_with(admitted.seq + 1, || None);
                }
                golden[admitted.seq] = Some(sessions);
                live.push(admitted.seq);
            }

            // Decode 1–3 tokens for every live sequence.
            for t in 0..1 + next() % 3 {
                let s = seed + 211 * e as u64 + 13 * t;
                let qs = rand(live.len(), s + 3);
                let ks = rand(live.len(), s + 4);
                let vs = rand(live.len(), s + 5);
                let outs = pool.install(|| engine.step_all(&live, &qs, &ks, &vs));
                for (i, &id) in live.iter().enumerate() {
                    let sessions = golden[id].as_mut().expect("live slot has sessions");
                    for (h, session) in sessions.iter_mut().enumerate() {
                        let sub = |m: &Matrix<f64>| m.row(i)[h * d..(h + 1) * d].to_vec();
                        let step = session.step(&sub(&qs), &sub(&ks), &sub(&vs));
                        prop_assert!(!step.report.is_alarm());
                        for (c, val) in step.output.iter().enumerate() {
                            prop_assert_eq!(
                                outs[i].output[h * d + c].to_bits(),
                                val.to_bits(),
                                "epoch {} step {} seq {} head {} lane {}", e, t, id, h, c
                            );
                        }
                    }
                    prop_assert!(outs[i].residual().abs() < 1e-10);
                }
            }

            // Retire a random live sequence (keep at least one): its
            // blocks go back to the free list while the survivors keep
            // matching their golden sessions — recycling never corrupts
            // live checksum state.
            if live.len() > 1 {
                let victim = live.swap_remove((next() as usize) % live.len());
                engine.retire(victim);
                golden[victim] = None;
            }
        }

        for &id in &live {
            prop_assert!(
                engine.global_residual(id).abs() < 1e-9,
                "session verdict clean after churn: {}",
                engine.global_residual(id)
            );
        }
    }

    /// The policy layer preserves the PR-3 golden-model equivalence with
    /// the **checksum lane included**: a mixed-format engine (with
    /// optional sliding-window eviction) decodes bit-identically to
    /// per-(sequence, head) `CheckedDecodeSession`s whose cached rows get
    /// the same block demotions replayed (`demote_cached` recomputes the
    /// demoted rows' sumrows from the rounded values), and every
    /// per-token check passes on both sides — rows cross the format
    /// boundary without ever desynchronizing predicted from actual.
    /// `F64 + RetainAll` is included as a policy point, pinning the
    /// default path to PR-3 behaviour through the same machinery.
    #[test]
    fn mixed_format_engine_matches_checked_sessions_with_demotion_replayed(
        threads in 1usize..5,
        block_rows in 1usize..6,
        burst in 0usize..3,
        window_blocks in 0usize..4, // 0 = RetainAll
        layout_hm in any::<bool>(),
        plain_f64 in any::<bool>(),
        steps in 2usize..14,
        seed in 0u64..1_000_000,
    ) {
        use fa_attention::batch::{DecodeBatch, EvictionPolicy, KvFormat, KvLayout};
        use fa_attention::multihead::MultiHeadConfig;
        use fa_tensor::random::ElementDist;
        use flash_abft::CheckedDecodeSession;

        let heads = 2;
        let d = 4;
        let head = AttentionConfig::new(d);
        let cfg = MultiHeadConfig::new(heads, head);
        let dim = cfg.model_dim();
        let layout = if layout_hm { KvLayout::HeadMajor } else { KvLayout::TokenMajor };
        let format = if plain_f64 {
            KvFormat::F64
        } else {
            KvFormat::Mixed { burst_blocks: burst }
        };
        let eviction = if window_blocks == 0 {
            EvictionPolicy::RetainAll
        } else {
            EvictionPolicy::SlidingWindow { window_blocks }
        };
        let golden_head = match eviction.window_tokens(block_rows) {
            Some(w) => head.with_sliding_window(w),
            None => head,
        };
        let rand = |rows: usize, s: u64| {
            Matrix::<f64>::random_seeded(rows, dim, ElementDist::default(), s)
        };
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();

        let mut engine = DecodeBatch::<f64>::with_policy(cfg, block_rows, layout, format, eviction);
        let seq = engine.add_sequence();
        let mut sessions: Vec<CheckedDecodeSession> = (0..heads)
            .map(|_| CheckedDecodeSession::new(golden_head))
            .collect();

        for t in 0..steps {
            // Replay the engine's block-claim demotion rule before the
            // goldens see the new token: appending position t claims
            // block t/block_rows at block boundaries, demoting the oldest
            // not-yet-demoted full block beyond the burst.
            if !plain_f64 && t.is_multiple_of(block_rows) && t / block_rows > burst {
                let b = t / block_rows - burst - 1;
                for session in sessions.iter_mut() {
                    session.demote_cached(b * block_rows..(b + 1) * block_rows);
                }
            }
            let s = seed + 10 * t as u64;
            let qs = rand(1, s);
            let ks = rand(1, s + 1);
            let vs = rand(1, s + 2);
            let outs = pool.install(|| engine.step_all(&[seq], &qs, &ks, &vs));
            prop_assert!(outs[0].residual().abs() < 1e-10, "engine per-token check, step {}", t);
            for (h, session) in sessions.iter_mut().enumerate() {
                let sub = |m: &Matrix<f64>| m.row(0)[h * d..(h + 1) * d].to_vec();
                let step = session.step(&sub(&qs), &sub(&ks), &sub(&vs));
                prop_assert!(!step.report.is_alarm(), "golden per-token check, step {}", t);
                for (c, val) in step.output.iter().enumerate() {
                    prop_assert_eq!(
                        outs[0].output[h * d + c].to_bits(),
                        val.to_bits(),
                        "step {} head {} lane {}", t, h, c
                    );
                }
            }
        }
        prop_assert!(engine.global_residual(seq).abs() < 1e-9);
        for session in &sessions {
            prop_assert!(!session.global_report().is_alarm());
        }
        // With eviction outpacing the burst (window_blocks ≤ burst),
        // blocks leave the window before aging out of the burst and
        // nothing demotes — the goldens still match because those
        // positions are masked on both sides.
        let demotion_reachable = window_blocks == 0 || window_blocks > burst;
        if !plain_f64 && demotion_reachable && steps > block_rows * (burst + 1) {
            prop_assert!(engine.demoted_len(seq) > 0, "demotion exercised");
        }
    }

    /// The grouped engine preserves the checked-golden equivalence with
    /// the **checksum lane included**: under any `kv_heads` dividing the
    /// query heads, any policy combination, layout, block size and thread
    /// count, `DecodeBatch` decodes bit-identically to the GQA-aware
    /// `CheckedGqaDecodeSession` (one shared K/V + `sumrow` stream per kv
    /// head, exactly one demotion replay per boundary), every per-token
    /// per-query-head check passes on both sides, and the degenerate
    /// `kv_heads == query_heads` point runs the PR-4 arithmetic through
    /// the same machinery.
    #[test]
    fn gqa_engine_matches_checked_gqa_session_with_demotion_replayed(
        threads in 1usize..5,
        kv_sel in 0usize..3,
        block_rows in 1usize..6,
        burst in 0usize..3,
        window_blocks in 0usize..4, // 0 = RetainAll
        layout_hm in any::<bool>(),
        plain_f64 in any::<bool>(),
        steps in 2usize..14,
        seed in 0u64..1_000_000,
    ) {
        use fa_attention::batch::{DecodeBatch, EvictionPolicy, KvFormat, KvLayout};
        use fa_attention::HeadTopology;
        use fa_tensor::random::ElementDist;
        use flash_abft::CheckedGqaDecodeSession;

        let query_heads = 4;
        let kv_heads = [1usize, 2, 4][kv_sel];
        let d = 4;
        let head = AttentionConfig::new(d);
        let topo = HeadTopology::gqa(query_heads, kv_heads, head);
        let layout = if layout_hm { KvLayout::HeadMajor } else { KvLayout::TokenMajor };
        let format = if plain_f64 {
            KvFormat::F64
        } else {
            KvFormat::Mixed { burst_blocks: burst }
        };
        let eviction = if window_blocks == 0 {
            EvictionPolicy::RetainAll
        } else {
            EvictionPolicy::SlidingWindow { window_blocks }
        };
        let golden_head = match eviction.window_tokens(block_rows) {
            Some(w) => head.with_sliding_window(w),
            None => head,
        };
        let rand = |rows: usize, cols: usize, s: u64| {
            Matrix::<f64>::random_seeded(rows, cols, ElementDist::default(), s)
        };
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();

        let mut engine = DecodeBatch::<f64>::with_policy(topo, block_rows, layout, format, eviction);
        let seq = engine.add_sequence();
        let mut golden = CheckedGqaDecodeSession::new(
            HeadTopology::gqa(query_heads, kv_heads, golden_head),
        );

        for t in 0..steps {
            // Replay the engine's block-claim demotion rule before the
            // golden sees the new token.
            if !plain_f64 && t.is_multiple_of(block_rows) && t / block_rows > burst {
                let b = t / block_rows - burst - 1;
                golden.demote_cached(b * block_rows..(b + 1) * block_rows);
            }
            let s = seed + 10 * t as u64;
            let qs = rand(1, topo.q_dim(), s);
            let ks = rand(1, topo.kv_dim(), s + 1);
            let vs = rand(1, topo.kv_dim(), s + 2);
            let outs = pool.install(|| engine.step_all(&[seq], &qs, &ks, &vs));
            prop_assert!(outs[0].residual().abs() < 1e-10, "engine per-token check, step {}", t);
            let reference = golden.step(qs.row(0), ks.row(0), vs.row(0));
            for (h, step) in reference.iter().enumerate() {
                prop_assert!(!step.report.is_alarm(), "golden head {} check, step {}", h, t);
                for (c, val) in step.output.iter().enumerate() {
                    prop_assert_eq!(
                        outs[0].output[h * d + c].to_bits(),
                        val.to_bits(),
                        "kv {} step {} head {} lane {}", kv_heads, t, h, c
                    );
                }
            }
        }
        prop_assert!(engine.global_residual(seq).abs() < 1e-9);
        prop_assert!(!golden.global_report().is_alarm());
    }
}
