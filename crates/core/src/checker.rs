//! Detection: tolerance comparison and verification reports.

use crate::checksum::predicted_checksum_eq5;
use crate::online::OnlineChecked;
use fa_attention::AttentionConfig;
use fa_numerics::{CheckOutcome, Tolerance};
use fa_tensor::{Matrix, Scalar};

/// The verdict of one Flash-ABFT check.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChecksumReport {
    /// Predicted checksum (from the fused online computation).
    pub predicted: f64,
    /// Actual checksum (sum of the produced attention output).
    pub actual: f64,
    /// Comparison outcome under the configured tolerance.
    pub outcome: CheckOutcome,
}

impl ChecksumReport {
    /// Whether the checker raised an alarm.
    pub fn is_alarm(&self) -> bool {
        self.outcome.is_alarm()
    }

    /// The signed residual `predicted − actual`.
    pub fn residual(&self) -> f64 {
        self.predicted - self.actual
    }
}

/// The Flash-ABFT checker: a tolerance plus comparison plumbing.
///
/// # Example
///
/// ```
/// use flash_abft::FlashAbftChecker;
/// use fa_numerics::Tolerance;
///
/// let checker = FlashAbftChecker::new(Tolerance::PAPER);
/// let report = checker.compare(1.0, 1.0 + 1e-9);
/// assert!(!report.is_alarm());
/// let report = checker.compare(1.0, 1.5);
/// assert!(report.is_alarm());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlashAbftChecker {
    tolerance: Tolerance,
}

impl Default for FlashAbftChecker {
    /// The paper's operating point: absolute 10⁻⁶.
    fn default() -> Self {
        FlashAbftChecker {
            tolerance: Tolerance::PAPER,
        }
    }
}

impl FlashAbftChecker {
    /// Creates a checker with the given tolerance.
    pub fn new(tolerance: Tolerance) -> Self {
        FlashAbftChecker { tolerance }
    }

    /// The configured tolerance.
    pub fn tolerance(&self) -> Tolerance {
        self.tolerance
    }

    /// Compares a predicted/actual checksum pair.
    pub fn compare(&self, predicted: f64, actual: f64) -> ChecksumReport {
        ChecksumReport {
            predicted,
            actual,
            outcome: self.tolerance.check(predicted, actual),
        }
    }

    /// Checks the result of the fused online kernel.
    pub fn check_online<T: Scalar>(&self, result: &OnlineChecked<T>) -> ChecksumReport {
        self.compare(result.predicted, result.actual)
    }

    /// Post-hoc verification of an **externally produced** attention
    /// output (e.g. from an accelerator or a GPU kernel) against the
    /// checksum predicted from fault-free inputs. This is the software
    /// fallback deployment mode of Flash-ABFT: the prediction costs
    /// O(N·(N+d)) — it never materializes the softmax matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn verify_output<T: Scalar>(
        &self,
        q: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
        output: &Matrix<T>,
        cfg: &AttentionConfig,
    ) -> ChecksumReport {
        cfg.validate_shapes(q, k, v);
        assert_eq!(output.rows(), q.rows(), "output row count mismatch");
        assert_eq!(
            output.cols(),
            cfg.head_dim(),
            "output column count mismatch"
        );
        let predicted = crate::checksum::predicted_checksum_eq8(q, k, v, cfg);
        let actual = output.sum_all();
        self.compare(predicted, actual)
    }

    /// Like [`verify_output`](Self::verify_output) but predicting via the
    /// Eq. 5 closed form (materializes softmax; O(N²) — test/debug use).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn verify_output_eq5<T: Scalar>(
        &self,
        q: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
        output: &Matrix<T>,
        cfg: &AttentionConfig,
    ) -> ChecksumReport {
        cfg.validate_shapes(q, k, v);
        let predicted = predicted_checksum_eq5(q, k, v, cfg);
        let actual = output.sum_all();
        self.compare(predicted, actual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::attention_checked;
    use fa_attention::naive;
    use fa_tensor::random::ElementDist;

    fn rand_qkv(n: usize, d: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        (
            Matrix::random_seeded(n, d, ElementDist::default(), seed),
            Matrix::random_seeded(n, d, ElementDist::default(), seed + 1),
            Matrix::random_seeded(n, d, ElementDist::default(), seed + 2),
        )
    }

    #[test]
    fn fault_free_online_check_passes() {
        let (q, k, v) = rand_qkv(16, 8, 400);
        let cfg = AttentionConfig::new(8);
        let result = attention_checked(&q, &k, &v, &cfg);
        let report = FlashAbftChecker::default().check_online(&result);
        assert_eq!(report.outcome, CheckOutcome::Pass);
        assert!(report.residual().abs() < 1e-10);
    }

    #[test]
    fn corrupted_external_output_alarms() {
        let (q, k, v) = rand_qkv(12, 4, 401);
        let cfg = AttentionConfig::new(4);
        let mut output = naive::attention(&q, &k, &v, &cfg);
        output[(5, 2)] += 0.01;
        let report = FlashAbftChecker::default().verify_output(&q, &k, &v, &output, &cfg);
        assert!(report.is_alarm());
    }

    #[test]
    fn clean_external_output_passes() {
        let (q, k, v) = rand_qkv(12, 4, 402);
        let cfg = AttentionConfig::new(4);
        let output = naive::attention(&q, &k, &v, &cfg);
        let report = FlashAbftChecker::default().verify_output(&q, &k, &v, &output, &cfg);
        assert!(!report.is_alarm());
        let report5 = FlashAbftChecker::default().verify_output_eq5(&q, &k, &v, &output, &cfg);
        assert!(!report5.is_alarm());
    }

    #[test]
    fn softmax_level_fault_is_caught_unlike_two_step_abft() {
        // The headline coverage improvement: corrupt the softmax inside a
        // recomputed attention and verify Flash-ABFT sees what two-step
        // ABFT provably cannot (fa-abft::two_step tests the negative).
        let (q, k, v) = rand_qkv(8, 4, 403);
        let cfg = AttentionConfig::new(4);
        // Build attention from a softmax matrix with one corrupted weight.
        let mut s = naive::softmax_scores(&q, &k, &cfg);
        s[(2, 3)] += 0.2;
        let bad_output = s.matmul(&v);
        let report = FlashAbftChecker::default().verify_output(&q, &k, &v, &bad_output, &cfg);
        assert!(report.is_alarm(), "softmax corruption must be detected");
    }

    #[test]
    fn nan_output_is_nan_silent() {
        let (q, k, v) = rand_qkv(6, 4, 404);
        let cfg = AttentionConfig::new(4);
        let mut output = naive::attention(&q, &k, &v, &cfg);
        output[(0, 0)] = f64::NAN;
        let report = FlashAbftChecker::default().verify_output(&q, &k, &v, &output, &cfg);
        assert_eq!(report.outcome, CheckOutcome::NanSilent);
    }

    #[test]
    fn tolerance_is_configurable() {
        let checker = FlashAbftChecker::new(Tolerance::Absolute(0.5));
        assert!(!checker.compare(1.0, 1.3).is_alarm());
        assert!(checker.compare(1.0, 1.6).is_alarm());
        assert_eq!(checker.tolerance(), Tolerance::Absolute(0.5));
    }

    #[test]
    #[should_panic(expected = "output row count mismatch")]
    fn verify_shape_mismatch_panics() {
        let (q, k, v) = rand_qkv(6, 4, 405);
        let cfg = AttentionConfig::new(4);
        let wrong = Matrix::<f64>::zeros(3, 4);
        let _ = FlashAbftChecker::default().verify_output(&q, &k, &v, &wrong, &cfg);
    }
}
