//! Alg. 3 — FlashAttention-2 with online checksum computation.
//!
//! The full fused kernel: per query, **exactly one pass** over keys/values
//! computing scores, max, ℓ, the output vector **and** the per-query
//! checksum (line 7) — no post-hoc verification sweep like two-step ABFT —
//! then the final divisions (lines 9–10) and the cross-query checksum
//! accumulation (line 11). `sumrow_k(V)` (Eq. 4) is filled once per call
//! by the shared Σ adder of the paper's Fig. 3, amortized across every
//! query lane. The predicted checksum is compared against the actual sum
//! of the produced attention output.
//!
//! Queries are independent, so [`flash2_with_checksum`] fans them out over
//! the rayon pool; the cross-query reductions (lines 9–11) run on the
//! calling thread in query order, making the parallel kernel bit-identical
//! to [`flash2_with_checksum_serial`] at every thread count.

use crate::merged::MergedAccumulator;
use fa_attention::AttentionConfig;
use fa_numerics::KahanSum;
use fa_tensor::{Matrix, Scalar};
use rayon::prelude::*;

/// Everything Alg. 3 produces for one attention computation.
#[derive(Clone)]
pub struct OnlineChecked<T> {
    /// The attention output (N×d), rounded to the element format.
    pub output: Matrix<T>,
    /// Per-query checks `check(q_i) = c_N/ℓ_N` (Alg. 3 line 10).
    pub per_query_checks: Vec<f64>,
    /// The global predicted checksum (line 11): `Σ_i check(q_i)`.
    pub predicted: f64,
    /// The actual checksum: sum of all elements of `output`, accumulated
    /// in f64 after rounding to `T` (what a hardware output-sum unit
    /// reading the writeback bus would compute).
    pub actual: f64,
}

impl<T: Scalar> std::fmt::Debug for OnlineChecked<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineChecked")
            .field("predicted", &self.predicted)
            .field("actual", &self.actual)
            .field("queries", &self.per_query_checks.len())
            .finish()
    }
}

impl<T: Scalar> OnlineChecked<T> {
    /// Residual between prediction and actual checksum
    /// (`predicted − actual`; NaN if either side is NaN).
    pub fn residual(&self) -> f64 {
        self.predicted - self.actual
    }
}

/// Key rows scored per block in [`query_pass`]: score a whole block first
/// (one contiguous K stream), then fold the block's extended value rows
/// through the merged recurrence — the same two-stream structure as the
/// unchecked `flash2` kernel, so the checksum lane never costs extra
/// memory passes.
const SCORE_BLOCK: usize = 64;

/// Runs the Alg. 3 streaming loop for one query: one pass over K/V
/// computing scores, online softmax state, output lanes, and the checksum
/// lane. `vstar` is the packed extended value matrix — row `i` holds
/// `[v_i, sumrow_i(V)]` widened to f64 (`d+1` lanes per row). In hardware
/// the shared Σ adder of Fig. 3 fills the extra lane once per streamed V
/// row for every parallel query lane; the software analog stages the
/// matrix once per call, so each step is a single vectorized `d+1`-lane
/// rescale-accumulate with the checksum riding the SIMD lanes. Returns
/// the unnormalized state ready for finalization.
fn query_pass<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    cfg: &AttentionConfig,
    vstar: &[f64],
    qi: usize,
) -> MergedAccumulator {
    let d = cfg.head_dim();
    let mut acc = MergedAccumulator::new(d);
    let visible = cfg.visible_range(qi, k.rows());
    let q_row = q.row(qi);
    let mut scores = Vec::with_capacity(SCORE_BLOCK.min(visible.len()));
    let mut i = visible.start;
    while i < visible.end {
        let rows = SCORE_BLOCK.min(visible.end - i);
        // Line 3: scores — the SIMD inner kernel over one contiguous K
        // span (per-row bits identical to the row-interleaved loop).
        fa_tensor::ops::dot_then_scale_rows(
            q_row,
            &k.as_slice()[i * d..],
            d,
            rows,
            cfg.scale(),
            &mut scores,
        );
        for (j, &s) in scores.iter().enumerate() {
            // Lines 4–7 via the merged Eq. 9/10 update over the extended
            // row.
            let r = i + j;
            acc.step_ext(s, &vstar[r * (d + 1)..(r + 1) * (d + 1)]);
        }
        i += rows;
    }
    acc
}

/// Builds the packed extended value matrix `v* = [V | sumrow(V)]` in f64:
/// one widening sweep over V shared by every query (Eq. 4's shared adder,
/// plus the operand staging a register-file read port would provide).
fn extended_values<T: Scalar>(v: &Matrix<T>) -> Vec<f64> {
    let d = v.cols();
    let mut vstar = vec![0.0f64; v.rows() * (d + 1)];
    for (row, dst) in v.iter_rows().zip(vstar.chunks_exact_mut(d + 1)) {
        let mut sum = 0.0f64;
        for (lane, &x) in dst.iter_mut().zip(row) {
            let wide = x.to_f64();
            *lane = wide;
            sum += wide;
        }
        dst[d] = sum;
    }
    vstar
}

/// Runs Alg. 3: FlashAttention-2 with the fused online checksum,
/// parallelized across query rows.
///
/// This is the kernel entry point every checker in [`crate::api`] routes
/// through. Each query makes exactly one pass over K/V, with the checksum
/// lane riding the same merged accumulator. Score/exp/accumulator
/// arithmetic runs in f64
/// over operands rounded to `T` (the algorithm-level model; the bit-level
/// datapath lives in `fa-accel-sim`). The output matrix is rounded to `T`,
/// and the *actual* checksum is computed from those rounded values — so
/// for narrow `T` the caller must use a format-appropriate tolerance,
/// mirroring the paper's experimentally-determined bound.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn flash2_with_checksum<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    cfg: &AttentionConfig,
) -> OnlineChecked<T> {
    cfg.validate_shapes(q, k, v);
    let d = cfg.head_dim();
    let n_q = q.rows();

    // v* = [V | sumrow(V)] (Eq. 4 + operand staging): one widening sweep
    // over V shared by every query — the pipeline register the shared Σ
    // adder of Fig. 3 fills per cycle.
    let vstar = extended_values(v);

    // Fan the independent query passes out over the rayon pool. Small
    // shapes (simulator traffic) stay on the calling thread.
    let parallel = fa_tensor::par::worth_parallelizing(n_q, k.rows(), d);
    let states: Vec<MergedAccumulator> = if parallel {
        let vstar = &vstar;
        (0..n_q)
            .into_par_iter()
            .map(|qi| query_pass(q, k, cfg, vstar, qi))
            .collect()
    } else {
        (0..n_q)
            .map(|qi| query_pass(q, k, cfg, &vstar, qi))
            .collect()
    };

    // Lines 9–11: finalize in query order on one thread, so the Kahan
    // accumulations are identical regardless of thread count.
    let mut output = Matrix::zeros(n_q, d);
    let mut per_query_checks = Vec::with_capacity(n_q);
    let mut global = KahanSum::new(); // line 11 accumulator
    let mut actual = KahanSum::new();
    for (qi, acc) in states.iter().enumerate() {
        let (row_out, check_q) = acc
            .finalize()
            .expect("every query sees at least one key (causal j<=i)");
        for (c, val) in row_out.iter().enumerate() {
            let rounded = T::from_f64(*val);
            output[(qi, c)] = rounded;
            actual.add(rounded.to_f64());
        }
        per_query_checks.push(check_q);
        global.add(check_q);
    }

    OnlineChecked {
        output,
        per_query_checks,
        predicted: global.value(),
        actual: actual.value(),
    }
}

/// Serial reference form of [`flash2_with_checksum`]: identical
/// arithmetic, one thread — golden model for the parallel-equivalence
/// property tests.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn flash2_with_checksum_serial<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    cfg: &AttentionConfig,
) -> OnlineChecked<T> {
    rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("single-thread pool")
        .install(|| flash2_with_checksum(q, k, v, cfg))
}

/// Runs Alg. 3: FlashAttention-2 with the fused online checksum.
///
/// Alias for [`flash2_with_checksum`], kept for API continuity.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn attention_checked<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    cfg: &AttentionConfig,
) -> OnlineChecked<T> {
    flash2_with_checksum(q, k, v, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::{per_query_check_eq8, predicted_checksum_eq5};
    use fa_attention::naive;
    use fa_tensor::random::ElementDist;

    fn rand_qkv(n: usize, d: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        (
            Matrix::random_seeded(n, d, ElementDist::default(), seed),
            Matrix::random_seeded(n, d, ElementDist::default(), seed + 1),
            Matrix::random_seeded(n, d, ElementDist::default(), seed + 2),
        )
    }

    #[test]
    fn output_matches_naive_attention() {
        let (q, k, v) = rand_qkv(24, 8, 300);
        let cfg = AttentionConfig::new(8);
        let checked = attention_checked(&q, &k, &v, &cfg);
        let reference = naive::attention(&q, &k, &v, &cfg);
        assert!(checked.output.max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn online_prediction_matches_closed_form() {
        let (q, k, v) = rand_qkv(16, 4, 301);
        let cfg = AttentionConfig::new(4);
        let checked = attention_checked(&q, &k, &v, &cfg);
        let closed = predicted_checksum_eq5(&q, &k, &v, &cfg);
        assert!((checked.predicted - closed).abs() < 1e-10);
    }

    #[test]
    fn per_query_checks_match_eq8() {
        let (q, k, v) = rand_qkv(10, 4, 302);
        let cfg = AttentionConfig::new(4);
        let checked = attention_checked(&q, &k, &v, &cfg);
        for (i, &c) in checked.per_query_checks.iter().enumerate() {
            let expected = per_query_check_eq8(&q, &k, &v, &cfg, i);
            assert!((c - expected).abs() < 1e-11, "query {i}: {c} vs {expected}");
        }
    }

    #[test]
    fn fault_free_residual_is_tiny_in_f64() {
        for seed in [1, 2, 3, 4, 5] {
            let (q, k, v) = rand_qkv(32, 16, seed * 1000);
            let cfg = AttentionConfig::new(16);
            let checked = attention_checked(&q, &k, &v, &cfg);
            assert!(
                checked.residual().abs() < 1e-10,
                "seed {seed}: residual {}",
                checked.residual()
            );
        }
    }

    #[test]
    fn causal_masking_preserves_identity() {
        let (q, k, v) = rand_qkv(12, 4, 303);
        let cfg = AttentionConfig::new(4).with_causal(true);
        let checked = attention_checked(&q, &k, &v, &cfg);
        assert!(checked.residual().abs() < 1e-10);
        let reference = naive::attention(&q, &k, &v, &cfg);
        assert!(checked.output.max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn corrupted_output_produces_residual() {
        // Simulate a fault by corrupting the output after computation and
        // recomputing the actual checksum — the residual must expose it.
        let (q, k, v) = rand_qkv(8, 4, 304);
        let cfg = AttentionConfig::new(4);
        let mut checked = attention_checked(&q, &k, &v, &cfg);
        checked.output[(3, 2)] += 0.125;
        let new_actual = checked.output.sum_all();
        let residual = checked.predicted - new_actual;
        assert!(residual.abs() > 0.12, "residual {residual}");
    }

    #[test]
    fn bf16_datapath_residual_reflects_format_noise() {
        // With BF16 outputs the actual checksum carries BF16 rounding of
        // each element: the residual is format noise, far above f64 noise
        // but bounded — this drives the threshold-sweep experiment.
        use fa_numerics::BF16;
        let (q, k, v) = rand_qkv(32, 16, 305);
        let cfg = AttentionConfig::new(16);
        let qb: Matrix<BF16> = q.cast();
        let kb: Matrix<BF16> = k.cast();
        let vb: Matrix<BF16> = v.cast();
        let checked = attention_checked(&qb, &kb, &vb, &cfg);
        let r = checked.residual().abs();
        assert!(r > 1e-10, "BF16 noise should exceed f64 noise: {r}");
        assert!(r < 1.0, "but remain bounded: {r}");
    }

    #[test]
    fn single_query_single_key() {
        let q = Matrix::<f64>::from_rows(&[&[1.0, 2.0]]);
        let k = Matrix::<f64>::from_rows(&[&[0.5, 0.5]]);
        let v = Matrix::<f64>::from_rows(&[&[3.0, 4.0]]);
        let cfg = AttentionConfig::new(2);
        let checked = attention_checked(&q, &k, &v, &cfg);
        // One key: softmax weight 1, output = v, check = 7.
        assert_eq!(checked.output[(0, 0)], 3.0);
        assert_eq!(checked.output[(0, 1)], 4.0);
        assert!((checked.predicted - 7.0).abs() < 1e-12);
        assert!(checked.residual().abs() < 1e-12);
    }
}
