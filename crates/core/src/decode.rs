//! Checked autoregressive decoding.
//!
//! Each generated token's attention row is one query of Alg. 3: the
//! merged accumulator computes the output *and* its checksum lane in one
//! pass over the KV cache, and the per-token check `c_N/ℓ_N` is compared
//! against the row sum immediately — token-granular detection latency,
//! the tightest recovery loop the fused checksum enables.
//!
//! Scores go through the same SIMD [`fa_tensor::ops::dot_then_scale`]
//! kernel as the batched engines, so this session is the **bit-exact
//! golden model** for `fa_attention::batch::DecodeBatch`'s per-(sequence,
//! head) decode — the continuous-batching property tests pin the batched
//! path against it token for token. The cache itself stays deliberately
//! naive (one heap row per token): it is also the per-sequence serving
//! baseline the decode benchmarks measure the paged engine against.

use crate::checker::{ChecksumReport, FlashAbftChecker};
use crate::merged::MergedAccumulator;
use crate::online::OnlineChecked;
use fa_attention::{AttentionConfig, HeadTopology};
use fa_numerics::Tolerance;
use fa_tensor::{Matrix, Scalar};

/// One decode step's output and verification.
#[derive(Clone, Debug)]
pub struct CheckedDecodeStep {
    /// The attention row for the new token.
    pub output: Vec<f64>,
    /// The verification report (per-token check vs row sum).
    pub report: ChecksumReport,
}

/// A decoding session with per-token Flash-ABFT checking.
///
/// # Example
///
/// ```
/// use fa_attention::AttentionConfig;
/// use flash_abft::decode::CheckedDecodeSession;
///
/// let mut session = CheckedDecodeSession::new(AttentionConfig::new(2));
/// let step = session.step(&[1.0, 0.0], &[0.5, 0.5], &[2.0, 4.0]);
/// assert!(!step.report.is_alarm());
/// assert_eq!(step.output, vec![2.0, 4.0]);
/// ```
#[derive(Clone, Debug)]
pub struct CheckedDecodeSession {
    cfg: AttentionConfig,
    checker: FlashAbftChecker,
    keys: Vec<Vec<f64>>,
    values: Vec<Vec<f64>>,
    sumrows: Vec<f64>,
    /// Accumulated global check over all generated tokens (Alg. 3 line 11).
    global_check: f64,
    /// Accumulated actual output checksum over all tokens.
    global_actual: f64,
}

impl CheckedDecodeSession {
    /// Creates an empty checked session with the paper's tolerance.
    pub fn new(cfg: AttentionConfig) -> Self {
        CheckedDecodeSession {
            cfg,
            checker: FlashAbftChecker::default(),
            keys: Vec::new(),
            values: Vec::new(),
            sumrows: Vec::new(),
            global_check: 0.0,
            global_actual: 0.0,
        }
    }

    /// Overrides the tolerance.
    pub fn with_tolerance(mut self, tolerance: Tolerance) -> Self {
        self.checker = FlashAbftChecker::new(tolerance);
        self
    }

    /// Pre-fills the cache from prompt Q/K/V matrices (N×d) **and**
    /// checks the prompt's causal self-attention through
    /// [`crate::flash2_with_checksum`], folding the prompt's (predicted,
    /// actual) checksums into the session totals — so
    /// [`global_report`](Self::global_report) covers every prefill token
    /// as well as every generated one. The returned [`OnlineChecked`]
    /// carries the prompt output and its per-query checks.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, or if the session already holds cached
    /// positions (the kernel checks a whole prompt against an empty
    /// history).
    pub fn prefill_checked<T: Scalar>(
        &mut self,
        q: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
    ) -> OnlineChecked<T> {
        assert!(self.is_empty(), "prefill_checked requires an empty session");
        let checked = crate::online::flash2_with_checksum(q, k, v, &self.cfg.with_causal(true));
        self.prefill(k, v);
        self.global_check += checked.predicted;
        self.global_actual += checked.actual;
        checked
    }

    /// Pre-fills the cache from prompt K/V matrices (N×d) without
    /// computing attention — for prompts whose pass was checked elsewhere
    /// ([`prefill_checked`](Self::prefill_checked) is the self-contained
    /// form); this session then checks every *generated* token against
    /// that history.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn prefill<T: Scalar>(&mut self, k: &Matrix<T>, v: &Matrix<T>) {
        let d = self.cfg.head_dim();
        assert_eq!(k.cols(), d, "K width mismatch");
        assert_eq!(v.cols(), d, "V width mismatch");
        assert_eq!(k.rows(), v.rows(), "K/V row count mismatch");
        for i in 0..k.rows() {
            let kf: Vec<f64> = k.row(i).iter().map(|x| x.to_f64()).collect();
            let vf: Vec<f64> = v.row(i).iter().map(|x| x.to_f64()).collect();
            self.sumrows.push(vf.iter().sum());
            self.keys.push(kf);
            self.values.push(vf);
        }
    }

    /// Rounds the cached K/V rows in `range` through BF16
    /// (round-to-nearest-even, the `fa_numerics::bf16` helper) and
    /// **recomputes their checksum inputs** (`sumrow_i = Σ_c v_i[c]`)
    /// from the rounded values — the checked golden-model replay of
    /// `fa_attention::batch::KvCache` block demotion. Rows crossing the
    /// format boundary leave the full-precision checked window
    /// explicitly: every later per-token check predicts against the
    /// rounded values the output lanes actually consume, so verdicts
    /// stay exact (a mixed-format `DecodeBatch` that demoted exactly
    /// these positions keeps matching this session bit for bit,
    /// checksum lane included).
    ///
    /// # Panics
    ///
    /// Panics if `range` exceeds the cached length.
    pub fn demote_cached(&mut self, range: core::ops::Range<usize>) {
        for i in range {
            for x in self.keys[i].iter_mut() {
                *x = fa_numerics::BF16::from_f64(*x).to_f64();
            }
            for x in self.values[i].iter_mut() {
                *x = fa_numerics::BF16::from_f64(*x).to_f64();
            }
            self.sumrows[i] = self.values[i].iter().sum();
        }
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The running global check over all tokens so far (predicted,
    /// actual) — the session-level comparison of Alg. 3.
    pub fn global_report(&self) -> ChecksumReport {
        self.checker.compare(self.global_check, self.global_actual)
    }

    /// Residual of position `i`'s stored checksum input against its
    /// stored V row: `sumrow_i − Σ_c v_i[c]`. Exactly zero in a healthy
    /// session (both sides fold the same lanes in the same order), so a
    /// nonzero residual pins corruption to position `i`'s checker state
    /// or V storage — the per-position verdict the paged engine's
    /// block-checksum audit queries at block granularity.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sumrow_residual(&self, i: usize) -> f64 {
        self.sumrows[i] - self.values[i].iter().sum::<f64>()
    }

    /// Per-block verdicts over the cached history: chunks positions into
    /// blocks of `block_rows` (the paged engine's block size) and sums
    /// each block's [`sumrow_residual`](Self::sumrow_residual). A healthy
    /// session returns all-zero; a poisoned sumrow or V row perturbs
    /// exactly its own block's entry, localizing the fault to
    /// (block index, offset range) without touching the other blocks.
    ///
    /// # Panics
    ///
    /// Panics if `block_rows` is zero.
    pub fn block_residuals(&self, block_rows: usize) -> Vec<f64> {
        assert!(block_rows > 0, "block_rows must be nonzero");
        let mut out = Vec::with_capacity(self.len().div_ceil(block_rows));
        for start in (0..self.len()).step_by(block_rows) {
            let end = (start + block_rows).min(self.len());
            out.push((start..end).map(|i| self.sumrow_residual(i)).sum());
        }
        out
    }

    /// Appends the token's K/V and computes its checked attention row.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch with the head dimension.
    pub fn step<T: Scalar>(&mut self, q: &[T], k: &[T], v: &[T]) -> CheckedDecodeStep {
        let d = self.cfg.head_dim();
        assert_eq!(q.len(), d, "query length mismatch");
        assert_eq!(k.len(), d, "key length mismatch");
        assert_eq!(v.len(), d, "value length mismatch");
        let kf: Vec<f64> = k.iter().map(|x| x.to_f64()).collect();
        let vf: Vec<f64> = v.iter().map(|x| x.to_f64()).collect();
        self.sumrows.push(vf.iter().sum());
        self.keys.push(kf);
        self.values.push(vf);

        let qf: Vec<f64> = q.iter().map(|x| x.to_f64()).collect();
        let newest = self.keys.len() - 1;
        // Visible cache positions: the causal window interval ending at
        // the newest position.
        let lo = self
            .cfg
            .with_causal(true)
            .visible_range(newest, self.keys.len())
            .start;
        let mut acc = MergedAccumulator::new(d);
        for i in lo..self.keys.len() {
            // The same SIMD score kernel as the batched decode engines —
            // the widened operands make the products identical to dotting
            // the stored formats directly, so this session stays the
            // bit-exact golden model for `DecodeBatch`.
            let s = fa_tensor::ops::dot_then_scale(&qf, &self.keys[i], self.cfg.scale());
            acc.step_with_sumrow(s, &self.values[i], self.sumrows[i]);
        }
        let (output, check) = acc.finalize().expect("at least the new token is visible");
        let row_sum: f64 = output.iter().sum();
        self.global_check += check;
        self.global_actual += row_sum;
        CheckedDecodeStep {
            output,
            report: self.checker.compare(check, row_sum),
        }
    }
}

/// A grouped-query decoding session with per-token Flash-ABFT checking:
/// **one** K/V history (and one `sumrow(V)` stream) per kv head, shared
/// by all `group_size` query heads of its group — the checked GQA-aware
/// golden model for `fa_attention::batch::DecodeBatch` with a grouped
/// topology.
///
/// The shared per-group `sumrow(V)` is the hardware saving the paper
/// notes GQA inherits for free: the checksum lane's Eq. 4 input depends
/// only on the (shared) V rows, so one stream serves the whole group
/// while each query head keeps its own exact per-token verdict. Per
/// query head the arithmetic is exactly [`CheckedDecodeSession::step`]
/// against that head's group K/V, bit for bit.
#[derive(Clone, Debug)]
pub struct CheckedGqaDecodeSession {
    topo: HeadTopology,
    checker: FlashAbftChecker,
    /// `keys[g][i]` is kv head `g`'s cached key row at position `i`.
    keys: Vec<Vec<Vec<f64>>>,
    values: Vec<Vec<Vec<f64>>>,
    /// `sumrows[g][i] = Σ_c values[g][i][c]` — one entry per (kv head,
    /// position), read by every query head of group `g`.
    sumrows: Vec<Vec<f64>>,
    global_check: f64,
    global_actual: f64,
}

impl CheckedGqaDecodeSession {
    /// Creates an empty checked session with the paper's tolerance.
    pub fn new(topo: HeadTopology) -> Self {
        CheckedGqaDecodeSession {
            topo,
            checker: FlashAbftChecker::default(),
            keys: vec![Vec::new(); topo.kv_heads],
            values: vec![Vec::new(); topo.kv_heads],
            sumrows: vec![Vec::new(); topo.kv_heads],
            global_check: 0.0,
            global_actual: 0.0,
        }
    }

    /// Overrides the tolerance.
    pub fn with_tolerance(mut self, tolerance: Tolerance) -> Self {
        self.checker = FlashAbftChecker::new(tolerance);
        self
    }

    /// The head topology.
    pub fn topology(&self) -> HeadTopology {
        self.topo
    }

    /// Number of cached positions (identical for every kv head).
    pub fn len(&self) -> usize {
        self.keys[0].len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.keys[0].is_empty()
    }

    /// Pre-fills every kv head's cache from packed prompt K/V matrices
    /// (`N × kv_dim`) without computing attention.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn prefill<T: Scalar>(&mut self, k: &Matrix<T>, v: &Matrix<T>) {
        assert_eq!(k.cols(), self.topo.kv_dim(), "K width mismatch");
        assert_eq!(v.cols(), self.topo.kv_dim(), "V width mismatch");
        assert_eq!(k.rows(), v.rows(), "K/V row count mismatch");
        for i in 0..k.rows() {
            for g in 0..self.topo.kv_heads {
                let cols = self.topo.kv_head_cols(g);
                let kf: Vec<f64> = k.row(i)[cols.clone()].iter().map(|x| x.to_f64()).collect();
                let vf: Vec<f64> = v.row(i)[cols].iter().map(|x| x.to_f64()).collect();
                self.sumrows[g].push(vf.iter().sum());
                self.keys[g].push(kf);
                self.values[g].push(vf);
            }
        }
    }

    /// Rounds every kv head's cached K/V rows in `range` through BF16
    /// (RNE) and recomputes the shared per-group `sumrow` inputs from the
    /// rounded values — the checked golden-model replay of `KvCache`
    /// block demotion for grouped topologies.
    ///
    /// # Panics
    ///
    /// Panics if `range` exceeds the cached length.
    pub fn demote_cached(&mut self, range: core::ops::Range<usize>) {
        for i in range {
            for g in 0..self.topo.kv_heads {
                for x in self.keys[g][i].iter_mut() {
                    *x = fa_numerics::BF16::from_f64(*x).to_f64();
                }
                for x in self.values[g][i].iter_mut() {
                    *x = fa_numerics::BF16::from_f64(*x).to_f64();
                }
                self.sumrows[g][i] = self.values[g][i].iter().sum();
            }
        }
    }

    /// The running global check over all query heads and tokens so far.
    pub fn global_report(&self) -> ChecksumReport {
        self.checker.compare(self.global_check, self.global_actual)
    }

    /// Residual of kv head `g`'s stored checksum input at position `i`
    /// against its stored V row — the grouped form of
    /// [`CheckedDecodeSession::sumrow_residual`]. Exactly zero when
    /// healthy; nonzero pins corruption to (kv head `g`, position `i`).
    ///
    /// # Panics
    ///
    /// Panics if `g` or `i` is out of range.
    pub fn sumrow_residual(&self, g: usize, i: usize) -> f64 {
        self.sumrows[g][i] - self.values[g][i].iter().sum::<f64>()
    }

    /// Per-(kv head, block) verdicts: `out[g][b]` sums block `b`'s
    /// [`sumrow_residual`](Self::sumrow_residual) for kv head `g`. The
    /// grouped golden model of the paged engine's per-(sequence, kv_head,
    /// block) audit — a poisoned row perturbs exactly one entry.
    ///
    /// # Panics
    ///
    /// Panics if `block_rows` is zero.
    pub fn block_residuals(&self, block_rows: usize) -> Vec<Vec<f64>> {
        assert!(block_rows > 0, "block_rows must be nonzero");
        (0..self.topo.kv_heads)
            .map(|g| {
                let mut row = Vec::with_capacity(self.len().div_ceil(block_rows));
                for start in (0..self.len()).step_by(block_rows) {
                    let end = (start + block_rows).min(self.len());
                    row.push((start..end).map(|i| self.sumrow_residual(g, i)).sum());
                }
                row
            })
            .collect()
    }

    /// Appends the token's K/V (packed `kv_dim` rows) and computes every
    /// query head's checked attention row against its group's cache.
    /// Returns one [`CheckedDecodeStep`] per query head, in head order —
    /// a fault is localized to the query head whose report alarms.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn step<T: Scalar>(&mut self, q: &[T], k: &[T], v: &[T]) -> Vec<CheckedDecodeStep> {
        let d = self.topo.head.head_dim();
        assert_eq!(q.len(), self.topo.q_dim(), "query length mismatch");
        assert_eq!(k.len(), self.topo.kv_dim(), "key length mismatch");
        assert_eq!(v.len(), self.topo.kv_dim(), "value length mismatch");
        for g in 0..self.topo.kv_heads {
            let cols = self.topo.kv_head_cols(g);
            let kf: Vec<f64> = k[cols.clone()].iter().map(|x| x.to_f64()).collect();
            let vf: Vec<f64> = v[cols].iter().map(|x| x.to_f64()).collect();
            self.sumrows[g].push(vf.iter().sum());
            self.keys[g].push(kf);
            self.values[g].push(vf);
        }

        let newest = self.len() - 1;
        let lo = self
            .topo
            .head
            .with_causal(true)
            .visible_range(newest, self.len())
            .start;
        let mut steps = Vec::with_capacity(self.topo.query_heads);
        for h in 0..self.topo.query_heads {
            let g = self.topo.group_of(h);
            let qf: Vec<f64> = q[h * d..(h + 1) * d].iter().map(|x| x.to_f64()).collect();
            let mut acc = MergedAccumulator::new(d);
            for i in lo..self.len() {
                let s =
                    fa_tensor::ops::dot_then_scale(&qf, &self.keys[g][i], self.topo.head.scale());
                acc.step_with_sumrow(s, &self.values[g][i], self.sumrows[g][i]);
            }
            let (output, check) = acc.finalize().expect("at least the new token is visible");
            let row_sum: f64 = output.iter().sum();
            self.global_check += check;
            self.global_actual += row_sum;
            steps.push(CheckedDecodeStep {
                output,
                report: self.checker.compare(check, row_sum),
            });
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_attention::{decode::DecodeSession, naive};
    use fa_tensor::{random::ElementDist, Matrix};

    fn rand_qkv(n: usize, d: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        (
            Matrix::random_seeded(n, d, ElementDist::default(), seed),
            Matrix::random_seeded(n, d, ElementDist::default(), seed + 1),
            Matrix::random_seeded(n, d, ElementDist::default(), seed + 2),
        )
    }

    #[test]
    fn checked_decode_matches_unchecked_and_passes() {
        let (q, k, v) = rand_qkv(12, 4, 900);
        let cfg = AttentionConfig::new(4);
        let mut checked = CheckedDecodeSession::new(cfg);
        let mut plain = DecodeSession::new(cfg);
        for i in 0..12 {
            let step = checked.step(q.row(i), k.row(i), v.row(i));
            assert!(!step.report.is_alarm(), "token {i}");
            let reference = plain.step(q.row(i), k.row(i), v.row(i));
            for (a, b) in step.output.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-12);
            }
        }
        assert!(!checked.global_report().is_alarm());
        assert_eq!(checked.len(), 12);
    }

    #[test]
    fn decode_equals_causal_batch() {
        let (q, k, v) = rand_qkv(8, 4, 901);
        let cfg = AttentionConfig::new(4);
        let batch = naive::attention(&q, &k, &v, &cfg.with_causal(true));
        let mut session = CheckedDecodeSession::new(cfg);
        for i in 0..8 {
            let step = session.step(q.row(i), k.row(i), v.row(i));
            for (c, val) in step.output.iter().enumerate() {
                assert!((val - batch[(i, c)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn per_token_check_equals_row_sum_with_sliding_window() {
        let (q, k, v) = rand_qkv(10, 4, 902);
        let cfg = AttentionConfig::new(4).with_sliding_window(3);
        let mut session = CheckedDecodeSession::new(cfg);
        for i in 0..10 {
            let step = session.step(q.row(i), k.row(i), v.row(i));
            assert!(!step.report.is_alarm(), "token {i}");
        }
        assert!(!session.global_report().is_alarm());
    }

    #[test]
    fn prefill_then_step_matches_stepped_history() {
        let (q, k, v) = rand_qkv(8, 4, 905);
        let cfg = AttentionConfig::new(4);
        // Stepped session: decode all 8 tokens.
        let mut stepped = CheckedDecodeSession::new(cfg);
        let mut last = None;
        for i in 0..8 {
            last = Some(stepped.step(q.row(i), k.row(i), v.row(i)));
        }
        // Prefilled session: positions 0..7 as prompt, then token 7.
        let k_prompt = Matrix::from_fn(7, 4, |r, c| k[(r, c)]);
        let v_prompt = Matrix::from_fn(7, 4, |r, c| v[(r, c)]);
        let mut prefilled = CheckedDecodeSession::new(cfg);
        prefilled.prefill(&k_prompt, &v_prompt);
        assert_eq!(prefilled.len(), 7);
        let step = prefilled.step(q.row(7), k.row(7), v.row(7));
        assert!(!step.report.is_alarm());
        assert_eq!(step.output, last.unwrap().output);
    }

    #[test]
    fn prefill_checked_covers_prompt_and_matches_plain_prefill() {
        let (q, k, v) = rand_qkv(8, 4, 906);
        let cfg = AttentionConfig::new(4);
        let k_prompt = Matrix::from_fn(7, 4, |r, c| k[(r, c)]);
        let v_prompt = Matrix::from_fn(7, 4, |r, c| v[(r, c)]);
        let q_prompt = Matrix::from_fn(7, 4, |r, c| q[(r, c)]);

        let mut checked = CheckedDecodeSession::new(cfg);
        let prompt = checked.prefill_checked(&q_prompt, &k_prompt, &v_prompt);
        assert!(prompt.residual().abs() < 1e-10, "prompt check holds");
        assert_eq!(checked.len(), 7);
        assert!(!checked.global_report().is_alarm(), "totals absorb prompt");

        // The cached history is identical to a plain prefill: the next
        // generated token matches bit for bit.
        let mut plain = CheckedDecodeSession::new(cfg);
        plain.prefill(&k_prompt, &v_prompt);
        let a = checked.step(q.row(7), k.row(7), v.row(7));
        let b = plain.step(q.row(7), k.row(7), v.row(7));
        assert_eq!(a.output, b.output);
        assert!(!checked.global_report().is_alarm());
    }

    #[test]
    #[should_panic(expected = "requires an empty session")]
    fn prefill_checked_on_nonempty_session_panics() {
        let cfg = AttentionConfig::new(2);
        let mut session = CheckedDecodeSession::new(cfg);
        let _ = session.step(&[1.0, 0.0], &[0.5, 0.5], &[2.0, 4.0]);
        let m = Matrix::<f64>::zeros(1, 2);
        let _ = session.prefill_checked(&m, &m, &m);
    }

    #[test]
    fn corrupting_global_state_is_visible() {
        let (q, k, v) = rand_qkv(6, 4, 903);
        let cfg = AttentionConfig::new(4);
        let mut session = CheckedDecodeSession::new(cfg);
        for i in 0..6 {
            let _ = session.step(q.row(i), k.row(i), v.row(i));
        }
        // Simulate a fault on the global predicted accumulator.
        session.global_check += 0.5;
        assert!(session.global_report().is_alarm());
    }

    #[test]
    fn gqa_checked_session_equals_per_query_head_sessions_bitwise() {
        // One CheckedDecodeSession per query head, fed its group's K/V
        // slices, must match the grouped session token for token —
        // outputs, per-token checks, and global totals.
        let d = 4;
        for (qh, kv) in [(4usize, 2usize), (2, 1), (3, 3)] {
            let topo = HeadTopology::gqa(qh, kv, AttentionConfig::new(d));
            let mut grouped = CheckedGqaDecodeSession::new(topo);
            let mut singles: Vec<CheckedDecodeSession> = (0..qh)
                .map(|_| CheckedDecodeSession::new(topo.head))
                .collect();
            for t in 0..8u64 {
                let q = Matrix::<f64>::random_seeded(1, topo.q_dim(), ElementDist::default(), t);
                let k =
                    Matrix::<f64>::random_seeded(1, topo.kv_dim(), ElementDist::default(), 100 + t);
                let v =
                    Matrix::<f64>::random_seeded(1, topo.kv_dim(), ElementDist::default(), 200 + t);
                let steps = grouped.step(q.row(0), k.row(0), v.row(0));
                assert_eq!(steps.len(), qh);
                for (h, single) in singles.iter_mut().enumerate() {
                    let g = topo.group_of(h);
                    let reference = single.step(
                        &q.row(0)[topo.q_head_cols(h)],
                        &k.row(0)[topo.kv_head_cols(g)],
                        &v.row(0)[topo.kv_head_cols(g)],
                    );
                    assert!(!steps[h].report.is_alarm(), "head {h} token {t}");
                    for (a, b) in steps[h].output.iter().zip(&reference.output) {
                        assert_eq!(a.to_bits(), b.to_bits(), "{qh}/{kv} head {h} token {t}");
                    }
                }
            }
            assert!(!grouped.global_report().is_alarm());
            // Totals agree up to fold order (the grouped session folds
            // token-major, a bank of singles folds head-major).
            let singles_check: f64 = singles.iter().map(|s| s.global_check).sum();
            assert!(
                (grouped.global_check - singles_check).abs() < 1e-12,
                "global predicted totals agree: {} vs {singles_check}",
                grouped.global_check
            );
        }
    }

    #[test]
    fn gqa_checked_session_demotion_keeps_verdicts_exact() {
        let topo = HeadTopology::gqa(4, 2, AttentionConfig::new(4));
        let k = Matrix::<f64>::random_seeded(5, topo.kv_dim(), ElementDist::default(), 60);
        let v = Matrix::<f64>::random_seeded(5, topo.kv_dim(), ElementDist::default(), 61);
        let mut session = CheckedGqaDecodeSession::new(topo);
        session.prefill(&k, &v);
        session.demote_cached(0..4);
        for t in 0..4u64 {
            let q = Matrix::<f64>::random_seeded(1, topo.q_dim(), ElementDist::default(), 70 + t);
            let kn = Matrix::<f64>::random_seeded(1, topo.kv_dim(), ElementDist::default(), 80 + t);
            let vn = Matrix::<f64>::random_seeded(1, topo.kv_dim(), ElementDist::default(), 90 + t);
            for (h, step) in session
                .step(q.row(0), kn.row(0), vn.row(0))
                .iter()
                .enumerate()
            {
                assert!(!step.report.is_alarm(), "head {h} token {t}");
            }
        }
        assert!(!session.global_report().is_alarm());
    }

    #[test]
    fn block_residuals_are_zero_when_clean_and_localize_a_poke() {
        let (q, k, v) = rand_qkv(10, 4, 910);
        let cfg = AttentionConfig::new(4);
        let mut session = CheckedDecodeSession::new(cfg);
        for i in 0..10 {
            let _ = session.step(q.row(i), k.row(i), v.row(i));
        }
        // Demote a prefix so the mixed-format path is covered too: the
        // residuals are recomputed from the rounded rows, so they stay
        // exactly zero.
        session.demote_cached(0..4);
        for i in 0..10 {
            assert_eq!(session.sumrow_residual(i), 0.0, "position {i}");
        }
        let blocks = session.block_residuals(4);
        assert_eq!(blocks.len(), 3, "10 positions at 4 rows/block");
        assert!(blocks.iter().all(|r| *r == 0.0));

        // Poke position 6's sumrow: only block 1 flags, and the verdict
        // carries the exact perturbation.
        session.sumrows[6] += 0.25;
        let blocks = session.block_residuals(4);
        assert_eq!(blocks[0], 0.0);
        assert_eq!(blocks[1], 0.25);
        assert_eq!(blocks[2], 0.0);

        // A V-storage poke flags with the opposite sign (storage drifted
        // under the checksum input).
        session.sumrows[6] -= 0.25;
        session.values[9][2] += 1.0;
        let blocks = session.block_residuals(4);
        assert_eq!(blocks[2], -1.0);
        assert_eq!(blocks[1], 0.0);
    }

    #[test]
    fn gqa_block_residuals_pin_kv_head_and_block() {
        let topo = HeadTopology::gqa(4, 2, AttentionConfig::new(4));
        let k = Matrix::<f64>::random_seeded(9, topo.kv_dim(), ElementDist::default(), 62);
        let v = Matrix::<f64>::random_seeded(9, topo.kv_dim(), ElementDist::default(), 63);
        let mut session = CheckedGqaDecodeSession::new(topo);
        session.prefill(&k, &v);
        session.demote_cached(0..3);
        let blocks = session.block_residuals(4);
        assert_eq!(blocks.len(), 2);
        assert!(blocks
            .iter()
            .all(|g| g.len() == 3 && g.iter().all(|r| *r == 0.0)));

        session.sumrows[1][5] += 0.5;
        let blocks = session.block_residuals(4);
        assert!(blocks[0].iter().all(|r| *r == 0.0), "other kv head clean");
        assert_eq!(blocks[1][1], 0.5, "kv head 1, block 1 flags");
        assert_eq!(blocks[1][0], 0.0);
        assert_eq!(blocks[1][2], 0.0);
        assert_eq!(session.sumrow_residual(1, 5), 0.5);
    }

    #[test]
    #[should_panic(expected = "block_rows must be nonzero")]
    fn block_residuals_reject_zero_block_rows() {
        let session = CheckedDecodeSession::new(AttentionConfig::new(2));
        let _ = session.block_residuals(0);
    }

    #[test]
    fn bf16_decode_with_relative_tolerance() {
        use fa_numerics::BF16;
        let (q, k, v) = rand_qkv(8, 4, 904);
        let qb: Matrix<BF16> = q.cast();
        let kb: Matrix<BF16> = k.cast();
        let vb: Matrix<BF16> = v.cast();
        let cfg = AttentionConfig::new(4);
        let mut session = CheckedDecodeSession::new(cfg).with_tolerance(Tolerance::Relative {
            bound: 0.05,
            floor: 1e-3,
        });
        for i in 0..8 {
            let step = session.step(qb.row(i), kb.row(i), vb.row(i));
            assert!(!step.report.is_alarm(), "token {i}");
        }
    }
}
