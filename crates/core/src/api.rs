//! High-level public API: [`FlashAbft`] and checked multi-head attention.

use crate::checker::{ChecksumReport, FlashAbftChecker};
use crate::online::{attention_checked, OnlineChecked};
use fa_attention::gqa::GqaConfig;
use fa_attention::multihead::MultiHeadConfig;
use fa_attention::AttentionConfig;
use fa_numerics::Tolerance;
use fa_tensor::{Matrix, Scalar};

/// Attention output bundled with its verification report.
#[derive(Clone)]
pub struct CheckedAttention<T> {
    result: OnlineChecked<T>,
    report: ChecksumReport,
}

impl<T: Scalar> std::fmt::Debug for CheckedAttention<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckedAttention")
            .field("report", &self.report)
            .field("rows", &self.result.output.rows())
            .field("cols", &self.result.output.cols())
            .finish()
    }
}

impl<T: Scalar> CheckedAttention<T> {
    /// The attention output matrix.
    pub fn output(&self) -> &Matrix<T> {
        &self.result.output
    }

    /// Consumes self, returning the output matrix.
    pub fn into_output(self) -> Matrix<T> {
        self.result.output
    }

    /// The verification report.
    pub fn report(&self) -> ChecksumReport {
        self.report
    }

    /// Per-query checks (Alg. 3 line 10), for fine-grained localization:
    /// the query whose check deviates identifies the corrupted row.
    pub fn per_query_checks(&self) -> &[f64] {
        &self.result.per_query_checks
    }
}

/// The Flash-ABFT engine: computes attention with a fused online checksum
/// and verifies the result in a single call.
///
/// # Example
///
/// ```
/// use fa_tensor::{Matrix, random::ElementDist};
/// use fa_attention::AttentionConfig;
/// use flash_abft::FlashAbft;
/// use fa_numerics::Tolerance;
///
/// let d = 8;
/// let q = Matrix::<f64>::random_seeded(16, d, ElementDist::default(), 1);
/// let k = Matrix::<f64>::random_seeded(16, d, ElementDist::default(), 2);
/// let v = Matrix::<f64>::random_seeded(16, d, ElementDist::default(), 3);
///
/// let engine = FlashAbft::new(AttentionConfig::new(d))
///     .with_tolerance(Tolerance::Absolute(1e-6));
/// let checked = engine.compute(&q, &k, &v);
/// assert!(!checked.report().is_alarm());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlashAbft {
    cfg: AttentionConfig,
    checker: FlashAbftChecker,
}

impl FlashAbft {
    /// Creates an engine with the paper's default tolerance (absolute
    /// 10⁻⁶ — appropriate for f64 datapaths; use
    /// [`with_tolerance`](Self::with_tolerance) for narrow formats).
    pub fn new(cfg: AttentionConfig) -> Self {
        FlashAbft {
            cfg,
            checker: FlashAbftChecker::default(),
        }
    }

    /// Overrides the detection tolerance.
    pub fn with_tolerance(mut self, tolerance: Tolerance) -> Self {
        self.checker = FlashAbftChecker::new(tolerance);
        self
    }

    /// The attention configuration.
    pub fn config(&self) -> AttentionConfig {
        self.cfg
    }

    /// The underlying checker.
    pub fn checker(&self) -> FlashAbftChecker {
        self.checker
    }

    /// Computes attention with the fused checksum and verifies it.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn compute<T: Scalar>(
        &self,
        q: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
    ) -> CheckedAttention<T> {
        let result = attention_checked(q, k, v, &self.cfg);
        let report = self.checker.check_online(&result);
        CheckedAttention { result, report }
    }

    /// Verifies an externally produced output (deployment mode for
    /// checking accelerator results in software).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn verify<T: Scalar>(
        &self,
        q: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
        output: &Matrix<T>,
    ) -> ChecksumReport {
        self.checker.verify_output(q, k, v, output, &self.cfg)
    }
}

/// Checked multi-head attention: each head runs the fused kernel and is
/// verified independently; reports are returned per head (a fault is
/// thereby localized to its head).
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn multihead_checked<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    mh: &MultiHeadConfig,
    tolerance: Tolerance,
) -> (Matrix<T>, Vec<ChecksumReport>) {
    let d = mh.head.head_dim();
    let engine = FlashAbft::new(mh.head).with_tolerance(tolerance);
    let mut out = Matrix::zeros(q.rows(), mh.model_dim());
    let mut reports = Vec::with_capacity(mh.num_heads);
    for h in 0..mh.num_heads {
        let qh = mh.slice_head(q, h);
        let kh = mh.slice_head(k, h);
        let vh = mh.slice_head(v, h);
        let checked = engine.compute(&qh, &kh, &vh);
        for r in 0..out.rows() {
            for c in 0..d {
                out[(r, h * d + c)] = checked.output()[(r, c)];
            }
        }
        reports.push(checked.report());
    }
    (out, reports)
}

/// Checked grouped-query attention: each query head runs the fused
/// kernel against its group's K/V and is verified independently. GQA is
/// what Llama-3.1/Phi-3/Gemma2 actually deploy; the checksum identity is
/// unchanged per head because each head is an ordinary attention over
/// its group's K/V.
///
/// Each kv group's K/V is sliced **once** and shared by all
/// `group_size` query heads — the same shared-per-group structure the
/// serving stack's `DecodeBatch` prefill uses (where, with a causal head
/// config, batched admission is pinned bit-identical to this function by
/// regression test).
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn gqa_checked<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    gqa: &GqaConfig,
    tolerance: Tolerance,
) -> (Matrix<T>, Vec<ChecksumReport>) {
    assert_eq!(q.cols(), gqa.q_dim(), "packed Q width mismatch");
    assert_eq!(k.cols(), gqa.kv_dim(), "packed K width mismatch");
    assert_eq!(v.cols(), gqa.kv_dim(), "packed V width mismatch");
    let d = gqa.head.head_dim();
    let q_slicer = MultiHeadConfig::new(gqa.query_heads, gqa.head);
    let kv_slicer = MultiHeadConfig::new(gqa.kv_heads, gqa.head);
    let groups: Vec<(Matrix<T>, Matrix<T>)> = (0..gqa.kv_heads)
        .map(|g| (kv_slicer.slice_head(k, g), kv_slicer.slice_head(v, g)))
        .collect();
    let engine = FlashAbft::new(gqa.head).with_tolerance(tolerance);
    let mut out = Matrix::zeros(q.rows(), gqa.q_dim());
    let mut reports = Vec::with_capacity(gqa.query_heads);
    for h in 0..gqa.query_heads {
        let (kg, vg) = &groups[gqa.group_of(h)];
        let checked = engine.compute(&q_slicer.slice_head(q, h), kg, vg);
        for r in 0..out.rows() {
            for c in 0..d {
                out[(r, h * d + c)] = checked.output()[(r, c)];
            }
        }
        reports.push(checked.report());
    }
    (out, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_attention::naive;
    use fa_tensor::random::ElementDist;

    fn rand_qkv(n: usize, d: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        (
            Matrix::random_seeded(n, d, ElementDist::default(), seed),
            Matrix::random_seeded(n, d, ElementDist::default(), seed + 1),
            Matrix::random_seeded(n, d, ElementDist::default(), seed + 2),
        )
    }

    #[test]
    fn end_to_end_fault_free() {
        let (q, k, v) = rand_qkv(20, 8, 500);
        let engine = FlashAbft::new(AttentionConfig::new(8));
        let checked = engine.compute(&q, &k, &v);
        assert!(!checked.report().is_alarm());
        let reference = naive::attention(&q, &k, &v, &AttentionConfig::new(8));
        assert!(checked.output().max_abs_diff(&reference) < 1e-12);
        assert_eq!(checked.per_query_checks().len(), 20);
    }

    #[test]
    fn verify_detects_corruption_and_localizes_via_row_checks() {
        let (q, k, v) = rand_qkv(10, 4, 501);
        let cfg = AttentionConfig::new(4);
        let engine = FlashAbft::new(cfg);
        let clean = engine.compute(&q, &k, &v);
        let mut corrupted = clean.output().clone();
        corrupted[(7, 1)] += 0.02;
        let report = engine.verify(&q, &k, &v, &corrupted);
        assert!(report.is_alarm());
        // Localization: the corrupted row's sum deviates from its check.
        let row_sum: f64 = corrupted.row(7).iter().sum();
        let check7 = clean.per_query_checks()[7];
        assert!((row_sum - check7).abs() > 0.019);
        for i in 0..10 {
            if i == 7 {
                continue;
            }
            let rs: f64 = corrupted.row(i).iter().sum();
            assert!((rs - clean.per_query_checks()[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn multihead_reports_are_per_head() {
        let mh = MultiHeadConfig::new(2, AttentionConfig::new(4));
        let (q, k, v) = rand_qkv(8, 8, 502);
        let (out, reports) = multihead_checked(&q, &k, &v, &mh, Tolerance::PAPER);
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| !r.is_alarm()));
        assert_eq!((out.rows(), out.cols()), (8, 8));
        // Matches unchecked multi-head attention.
        let reference = fa_attention::multihead::attention(&q, &k, &v, &mh);
        assert!(out.max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn builder_roundtrip() {
        let engine =
            FlashAbft::new(AttentionConfig::new(16)).with_tolerance(Tolerance::Absolute(0.1));
        assert_eq!(engine.config().head_dim(), 16);
        assert_eq!(engine.checker().tolerance(), Tolerance::Absolute(0.1));
    }

    #[test]
    fn gqa_checked_verifies_clean_and_matches_unchecked() {
        let gqa = GqaConfig::new(4, 2, AttentionConfig::new(4));
        let q = Matrix::<f64>::random_seeded(6, 16, ElementDist::default(), 600);
        let k = Matrix::<f64>::random_seeded(6, 8, ElementDist::default(), 601);
        let v = Matrix::<f64>::random_seeded(6, 8, ElementDist::default(), 602);
        let (out, reports) = gqa_checked(&q, &k, &v, &gqa, Tolerance::PAPER);
        assert_eq!(reports.len(), 4);
        assert!(reports.iter().all(|r| !r.is_alarm()));
        let reference = fa_attention::gqa::attention(&q, &k, &v, &gqa);
        assert!(out.max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn gqa_checked_pinned_to_per_head_engine_loop() {
        // Regression pin for the shared-per-group refactor: gqa_checked
        // must stay bit-identical — outputs *and* reports — to the
        // original formulation (one engine.compute per query head over
        // per-member slices of the group's K/V).
        let head = AttentionConfig::new(4).with_causal(true).with_scale(0.3);
        let gqa = GqaConfig::new(6, 2, head);
        let q = Matrix::<f64>::random_seeded(9, gqa.q_dim(), ElementDist::default(), 610);
        let k = Matrix::<f64>::random_seeded(9, gqa.kv_dim(), ElementDist::default(), 611);
        let v = Matrix::<f64>::random_seeded(9, gqa.kv_dim(), ElementDist::default(), 612);
        let (out, reports) = gqa_checked(&q, &k, &v, &gqa, Tolerance::PAPER);

        let d = gqa.head.head_dim();
        let q_slicer = MultiHeadConfig::new(gqa.query_heads, gqa.head);
        let kv_slicer = MultiHeadConfig::new(gqa.kv_heads, gqa.head);
        let engine = FlashAbft::new(gqa.head).with_tolerance(Tolerance::PAPER);
        for h in 0..gqa.query_heads {
            let g = gqa.group_of(h);
            let checked = engine.compute(
                &q_slicer.slice_head(&q, h),
                &kv_slicer.slice_head(&k, g),
                &kv_slicer.slice_head(&v, g),
            );
            for r in 0..out.rows() {
                for c in 0..d {
                    assert_eq!(
                        out[(r, h * d + c)].to_bits(),
                        checked.output()[(r, c)].to_bits(),
                        "head {h} row {r} lane {c}"
                    );
                }
            }
            assert_eq!(reports[h], checked.report(), "head {h} report");
        }
    }

    #[test]
    fn gqa_admit_path_pinned_to_gqa_checked() {
        // The serving stack's batched admission IS the one-shot checked
        // GQA prefill: with a causal head config, DecodeBatch::admit over
        // a grouped topology produces gqa_checked's outputs bit for bit,
        // and its prompt checksum folds the per-query-head
        // flash2_with_checksum predictions in head order.
        use fa_attention::batch::DecodeBatch;

        let head = AttentionConfig::new(4).with_causal(true);
        let gqa = GqaConfig::new(4, 2, head);
        let n = 10;
        let q = Matrix::<f64>::random_seeded(n, gqa.q_dim(), ElementDist::default(), 620);
        let k = Matrix::<f64>::random_seeded(n, gqa.kv_dim(), ElementDist::default(), 621);
        let v = Matrix::<f64>::random_seeded(n, gqa.kv_dim(), ElementDist::default(), 622);

        let (reference, reports) = gqa_checked(&q, &k, &v, &gqa, Tolerance::PAPER);
        assert!(reports.iter().all(|r| !r.is_alarm()));

        for block_rows in [2, 16] {
            let mut batch = DecodeBatch::<f64>::new(gqa, block_rows);
            let admitted = batch.admit(&q, &k, &v);
            for r in 0..n {
                for c in 0..gqa.q_dim() {
                    assert_eq!(
                        admitted.output[(r, c)].to_bits(),
                        reference[(r, c)].to_bits(),
                        "block_rows {block_rows} row {r} lane {c}"
                    );
                }
            }
            // The prompt checksum is the head-order fold of the fused
            // kernel's per-head predictions over shared group K/V.
            let q_slicer = MultiHeadConfig::new(gqa.query_heads, gqa.head);
            let kv_slicer = MultiHeadConfig::new(gqa.kv_heads, gqa.head);
            let mut predicted = 0.0f64;
            for h in 0..gqa.query_heads {
                let g = gqa.group_of(h);
                let fused = crate::online::flash2_with_checksum(
                    &q_slicer.slice_head(&q, h),
                    &kv_slicer.slice_head(&k, g),
                    &kv_slicer.slice_head(&v, g),
                    &gqa.head,
                );
                predicted += fused.predicted;
            }
            assert_eq!(admitted.predicted.to_bits(), predicted.to_bits());
            assert!(admitted.residual().abs() < 1e-9);
        }
    }

    #[test]
    fn checksum_identity_holds_under_sliding_window() {
        let cfg = AttentionConfig::new(4)
            .with_causal(true)
            .with_sliding_window(3);
        let (q, k, v) = rand_qkv(12, 4, 700);
        let engine = FlashAbft::new(cfg);
        let checked = engine.compute(&q, &k, &v);
        assert!(!checked.report().is_alarm());
        let reference = naive::attention(&q, &k, &v, &cfg);
        assert!(checked.output().max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn bf16_inputs_with_format_appropriate_tolerance() {
        use fa_numerics::BF16;
        let (q, k, v) = rand_qkv(16, 8, 503);
        let qb: Matrix<BF16> = q.cast();
        let kb: Matrix<BF16> = k.cast();
        let vb: Matrix<BF16> = v.cast();
        // BF16 outputs carry ~1e-2 format noise into the actual checksum:
        // the paper's 1e-6 would false-alarm; a relative tolerance works.
        let engine = FlashAbft::new(AttentionConfig::new(8)).with_tolerance(Tolerance::Relative {
            bound: 0.05,
            floor: 1e-3,
        });
        let checked = engine.compute(&qb, &kb, &vb);
        assert!(!checked.report().is_alarm());
    }
}
