//! Closed-form attention checksum mathematics (paper Eq. 3–8).
//!
//! These functions compute the predicted checksum directly from the
//! definitions — materializing the softmax matrix and summing — with no
//! online tricks. They are the ground truth against which the online
//! implementation ([`crate::online`]) is validated, and they document the
//! derivation:
//!
//! * Eq. 3: `sumcol_k(S) = Σ_i e^{s_ik} / Σ_j e^{s_ij}` — column sums of
//!   the softmax matrix;
//! * Eq. 4: `sumrow_k(V) = Σ_j v_kj` — row sums of the value matrix;
//! * Eq. 5: `check = Σ_k sumcol_k(S) · sumrow_k(V)` — the Huang–Abraham
//!   dot product of the two checksum vectors;
//! * Eq. 7/8: after exchanging the order of summation, the same checksum
//!   decomposes into independent per-query terms
//!   `check(q_i) = (Σ_k e^{s_ik}·sumrow_k(V)) / Σ_j e^{s_ij}`,
//!   which is what makes an online computation possible.

use fa_attention::{naive, AttentionConfig};
use fa_numerics::KahanSum;
use fa_tensor::{Matrix, Scalar};

/// Predicted checksum of the whole attention output via Eq. 5: the dot
/// product of the softmax matrix's column sums with V's row sums.
///
/// Equals `Σ_ij attn(Q,K,V)_ij` up to floating-point reordering.
///
/// # Panics
///
/// Panics on shape mismatch.
///
/// ```
/// use fa_tensor::{Matrix, random::ElementDist};
/// use fa_attention::{naive, AttentionConfig};
/// use flash_abft::checksum::predicted_checksum_eq5;
///
/// let q = Matrix::<f64>::random_seeded(8, 4, ElementDist::default(), 1);
/// let k = Matrix::<f64>::random_seeded(8, 4, ElementDist::default(), 2);
/// let v = Matrix::<f64>::random_seeded(8, 4, ElementDist::default(), 3);
/// let cfg = AttentionConfig::new(4);
/// let predicted = predicted_checksum_eq5(&q, &k, &v, &cfg);
/// let actual = naive::attention(&q, &k, &v, &cfg).sum_all();
/// assert!((predicted - actual).abs() < 1e-10);
/// ```
pub fn predicted_checksum_eq5<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    cfg: &AttentionConfig,
) -> f64 {
    cfg.validate_shapes(q, k, v);
    let s = naive::softmax_scores(q, k, cfg); // Eq. 2/3 substrate
    let sumcols = s.col_sums(); // Eq. 3
    let sumrows = v.row_sums(); // Eq. 4
    let mut acc = KahanSum::new();
    for (c, r) in sumcols.iter().zip(&sumrows) {
        acc.add(c * r); // Eq. 5
    }
    acc.value()
}

/// Per-query checksum via Eq. 8:
/// `check(q_i) = (Σ_k e^{s_ik − m_i}·sumrow_k(V)) / Σ_j e^{s_ij − m_i}`
/// (max-shifted for stability exactly like the kernel).
///
/// # Panics
///
/// Panics on shape mismatch or `query_idx` out of bounds.
pub fn per_query_check_eq8<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    cfg: &AttentionConfig,
    query_idx: usize,
) -> f64 {
    cfg.validate_shapes(q, k, v);
    assert!(query_idx < q.rows(), "query index out of bounds");
    per_query_check_with_sumrows(q, k, cfg, &v.row_sums(), query_idx)
}

/// [`per_query_check_eq8`] with `sumrow_k(V)` precomputed, so callers
/// iterating all queries (the Eq. 7 sum, the checker's verify path) sweep
/// V once instead of once per query.
fn per_query_check_with_sumrows<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    cfg: &AttentionConfig,
    sumrows: &[f64],
    query_idx: usize,
) -> f64 {
    // Scores and max for this query.
    let mut scores = Vec::with_capacity(k.rows());
    let mut m = f64::NEG_INFINITY;
    for i in 0..k.rows() {
        if !cfg.visible(query_idx, i) {
            scores.push(f64::NEG_INFINITY);
            continue;
        }
        let s = fa_tensor::ops::dot_f64(q.row(query_idx), k.row(i)) * cfg.scale();
        m = m.max(s);
        scores.push(s);
    }

    let mut numerator = KahanSum::new();
    let mut denominator = KahanSum::new();
    for (i, &s) in scores.iter().enumerate() {
        let w = (s - m).exp();
        if w == 0.0 {
            continue;
        }
        numerator.add(w * sumrows[i]);
        denominator.add(w);
    }
    numerator.value() / denominator.value()
}

/// Predicted checksum via the per-query decomposition of Eq. 7/8:
/// `check = Σ_i check(q_i)`. Must agree with [`predicted_checksum_eq5`] —
/// the exchanged-summation identity the whole paper rests on.
///
/// Per-query checks are independent, so they fan out over the rayon pool;
/// the Kahan reduction runs in query order on the calling thread, making
/// the result thread-count-independent.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn predicted_checksum_eq8<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    cfg: &AttentionConfig,
) -> f64 {
    use rayon::prelude::*;
    cfg.validate_shapes(q, k, v);
    let n_q = q.rows();
    // Eq. 4 vector, swept once and shared by every per-query check.
    let sumrows = v.row_sums();
    let checks: Vec<f64> = if fa_tensor::par::worth_parallelizing(n_q, k.rows(), cfg.head_dim()) {
        let sumrows = &sumrows;
        (0..n_q)
            .into_par_iter()
            .map(|i| per_query_check_with_sumrows(q, k, cfg, sumrows, i))
            .collect()
    } else {
        (0..n_q)
            .map(|i| per_query_check_with_sumrows(q, k, cfg, &sumrows, i))
            .collect()
    };
    let mut acc = KahanSum::new();
    for c in checks {
        acc.add(c);
    }
    acc.value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_tensor::random::ElementDist;

    fn rand_qkv(n: usize, d: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        (
            Matrix::random_seeded(n, d, ElementDist::default(), seed),
            Matrix::random_seeded(n, d, ElementDist::default(), seed + 1),
            Matrix::random_seeded(n, d, ElementDist::default(), seed + 2),
        )
    }

    #[test]
    fn eq5_matches_actual_output_sum() {
        let (q, k, v) = rand_qkv(20, 8, 1);
        let cfg = AttentionConfig::new(8);
        let predicted = predicted_checksum_eq5(&q, &k, &v, &cfg);
        let actual = naive::attention(&q, &k, &v, &cfg).sum_all();
        assert!(
            (predicted - actual).abs() < 1e-10,
            "{predicted} vs {actual}"
        );
    }

    #[test]
    fn summation_exchange_identity_eq5_equals_eq8() {
        // The paper's central identity (Eq. 6 → Eq. 7).
        for seed in [10, 20, 30] {
            let (q, k, v) = rand_qkv(16, 4, seed);
            let cfg = AttentionConfig::new(4);
            let via5 = predicted_checksum_eq5(&q, &k, &v, &cfg);
            let via8 = predicted_checksum_eq8(&q, &k, &v, &cfg);
            assert!((via5 - via8).abs() < 1e-10, "{via5} vs {via8}");
        }
    }

    #[test]
    fn per_query_check_equals_output_row_sum() {
        // check(q_i) = Σ_j attn_ij — the row-level form of the identity.
        let (q, k, v) = rand_qkv(12, 6, 40);
        let cfg = AttentionConfig::new(6);
        let out = naive::attention(&q, &k, &v, &cfg);
        for i in 0..12 {
            let check = per_query_check_eq8(&q, &k, &v, &cfg, i);
            let row_sum: f64 = out.row(i).iter().sum();
            assert!((check - row_sum).abs() < 1e-11, "query {i}");
        }
    }

    #[test]
    fn holds_under_causal_masking() {
        let (q, k, v) = rand_qkv(10, 4, 50);
        let cfg = AttentionConfig::new(4).with_causal(true);
        let predicted = predicted_checksum_eq5(&q, &k, &v, &cfg);
        let actual = naive::attention(&q, &k, &v, &cfg).sum_all();
        assert!((predicted - actual).abs() < 1e-10);
        let via8 = predicted_checksum_eq8(&q, &k, &v, &cfg);
        assert!((predicted - via8).abs() < 1e-10);
    }

    #[test]
    fn holds_without_scaling() {
        // The paper's equations have no 1/sqrt(d); verify in that form too.
        let (q, k, v) = rand_qkv(8, 4, 60);
        let cfg = AttentionConfig::unscaled(4);
        let predicted = predicted_checksum_eq5(&q, &k, &v, &cfg);
        let actual = naive::attention(&q, &k, &v, &cfg).sum_all();
        assert!((predicted - actual).abs() < 1e-10);
    }

    #[test]
    fn checksum_scales_with_v() {
        // check is linear in V: doubling V doubles the checksum.
        let (q, k, v) = rand_qkv(8, 4, 70);
        let cfg = AttentionConfig::new(4);
        let base = predicted_checksum_eq5(&q, &k, &v, &cfg);
        let v2 = v.scale(2.0);
        let doubled = predicted_checksum_eq5(&q, &k, &v2, &cfg);
        assert!((doubled - 2.0 * base).abs() < 1e-9);
    }

    #[test]
    fn checksum_of_uniform_v_is_row_count_times_constant() {
        // If every element of V equals c, every attention row sums to d·c,
        // so the checksum is N·d·c regardless of Q and K.
        let (q, k, _) = rand_qkv(9, 5, 80);
        let v = Matrix::<f64>::from_fn(9, 5, |_, _| 0.3);
        let cfg = AttentionConfig::new(5);
        let predicted = predicted_checksum_eq5(&q, &k, &v, &cfg);
        assert!((predicted - 9.0 * 5.0 * 0.3).abs() < 1e-10);
    }

    #[test]
    fn extreme_scores_remain_finite() {
        let q = Matrix::<f64>::from_rows(&[&[30.0, 30.0]]);
        let k = Matrix::<f64>::from_rows(&[&[10.0, 10.0], &[-10.0, -10.0]]);
        let v = Matrix::<f64>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let cfg = AttentionConfig::unscaled(2);
        let predicted = predicted_checksum_eq5(&q, &k, &v, &cfg);
        assert!(predicted.is_finite());
        // Dominant key 0: checksum ≈ sumrow_0(V) = 3.
        assert!((predicted - 3.0).abs() < 1e-9);
    }
}
