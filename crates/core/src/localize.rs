//! Error localization and correction (extension).
//!
//! Alg. 3's per-query checks already identify the corrupted *row* for
//! free (line 10). This module adds the column dimension: the predicted
//! per-column checksum of the attention output is
//!
//! ```text
//! colcheck_j = Σ_i attn_ij = Σ_k a_k · v_kj,   a_k = Σ_i softmax(QKᵀ)_ik
//! ```
//!
//! where `a_k` — the column sums of the softmax matrix (paper Eq. 3) —
//! accumulate online with O(N) state (one accumulator per key position,
//! fed by the same `e^{s−m}/ℓ` weights the kernel computes). Row residual
//! × column residual localize a single corrupted element exactly, and
//! the residual magnitude corrects it — classic Huang–Abraham locate/
//! correct, now for the *whole fused attention* instead of one matmul.

use crate::checksum::per_query_check_eq8;
use fa_attention::{naive, AttentionConfig};
use fa_tensor::{Matrix, Scalar};

/// Predicted per-column checksums of the attention output:
/// `colcheck_j = Σ_k sumcol_k(S) · v_kj`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn predicted_column_checks<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    cfg: &AttentionConfig,
) -> Vec<f64> {
    cfg.validate_shapes(q, k, v);
    let s = naive::softmax_scores(q, k, cfg);
    let a = s.col_sums(); // Eq. 3 column sums, length N
    let d = cfg.head_dim();
    let mut checks = vec![0.0f64; d];
    for (ak, i) in a.iter().zip(0..v.rows()) {
        for (c, chk) in checks.iter_mut().enumerate() {
            *chk += ak * v[(i, c)].to_f64();
        }
    }
    checks
}

/// Predicted per-row checks (`check(q_i)` of Eq. 8) for all rows.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn predicted_row_checks<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    cfg: &AttentionConfig,
) -> Vec<f64> {
    cfg.validate_shapes(q, k, v);
    (0..q.rows())
        .map(|i| per_query_check_eq8(q, k, v, cfg, i))
        .collect()
}

/// A localized single error in an attention output.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LocatedError {
    /// Corrupted row (query index).
    pub row: usize,
    /// Corrupted column (output lane).
    pub col: usize,
    /// Signed deviation of the element from its correct value.
    pub delta: f64,
}

/// Localizes a single corrupted element of `output` from row/column
/// check residuals. Returns `None` when zero or multiple rows/columns
/// deviate beyond `tol` (not a locatable single error).
///
/// # Panics
///
/// Panics if check vector lengths disagree with the output shape.
pub fn localize_single_error<T: Scalar>(
    output: &Matrix<T>,
    row_checks: &[f64],
    col_checks: &[f64],
    tol: f64,
) -> Option<LocatedError> {
    assert_eq!(row_checks.len(), output.rows(), "row check length mismatch");
    assert_eq!(
        col_checks.len(),
        output.cols(),
        "column check length mismatch"
    );

    let mut bad_row = None;
    for (i, expected) in row_checks.iter().enumerate() {
        let actual: f64 = output.row(i).iter().map(|x| x.to_f64()).sum();
        let delta = actual - expected;
        if !delta.is_finite() || delta.abs() > tol {
            if bad_row.is_some() {
                return None;
            }
            bad_row = Some((i, delta));
        }
    }
    let mut bad_col = None;
    let actual_cols = output.col_sums();
    for (j, (actual, expected)) in actual_cols.iter().zip(col_checks).enumerate() {
        let delta = actual - expected;
        if !delta.is_finite() || delta.abs() > tol {
            if bad_col.is_some() {
                return None;
            }
            bad_col = Some((j, delta));
        }
    }
    match (bad_row, bad_col) {
        (Some((row, delta)), Some((col, _))) => Some(LocatedError { row, col, delta }),
        _ => None,
    }
}

/// Corrects a located error in place.
pub fn correct_error<T: Scalar>(output: &mut Matrix<T>, error: LocatedError) {
    let fixed = output[(error.row, error.col)].to_f64() - error.delta;
    output[(error.row, error.col)] = T::from_f64(fixed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_tensor::random::ElementDist;

    fn setup(
        seed: u64,
    ) -> (
        Matrix<f64>,
        Matrix<f64>,
        Matrix<f64>,
        AttentionConfig,
        Matrix<f64>,
    ) {
        let cfg = AttentionConfig::new(6);
        let q = Matrix::random_seeded(10, 6, ElementDist::default(), seed);
        let k = Matrix::random_seeded(10, 6, ElementDist::default(), seed + 1);
        let v = Matrix::random_seeded(10, 6, ElementDist::default(), seed + 2);
        let out = naive::attention(&q, &k, &v, &cfg);
        (q, k, v, cfg, out)
    }

    #[test]
    fn column_checks_match_actual_column_sums() {
        let (q, k, v, cfg, out) = setup(100);
        let predicted = predicted_column_checks(&q, &k, &v, &cfg);
        for (p, a) in predicted.iter().zip(out.col_sums()) {
            assert!((p - a).abs() < 1e-10, "{p} vs {a}");
        }
    }

    #[test]
    fn row_checks_match_actual_row_sums() {
        let (q, k, v, cfg, out) = setup(101);
        let predicted = predicted_row_checks(&q, &k, &v, &cfg);
        for (p, a) in predicted.iter().zip(out.row_sums()) {
            assert!((p - a).abs() < 1e-10);
        }
    }

    #[test]
    fn locate_and_correct_single_element() {
        let (q, k, v, cfg, clean) = setup(102);
        let row_checks = predicted_row_checks(&q, &k, &v, &cfg);
        let col_checks = predicted_column_checks(&q, &k, &v, &cfg);
        for (r, c, delta) in [(0, 0, 0.5), (7, 3, -1.25), (9, 5, 0.01)] {
            let mut corrupted = clean.clone();
            corrupted[(r, c)] += delta;
            let err = localize_single_error(&corrupted, &row_checks, &col_checks, 1e-6)
                .expect("must locate");
            assert_eq!((err.row, err.col), (r, c));
            assert!((err.delta - delta).abs() < 1e-9);
            correct_error(&mut corrupted, err);
            assert!(corrupted.max_abs_diff(&clean) < 1e-9);
        }
    }

    #[test]
    fn clean_output_locates_nothing() {
        let (q, k, v, cfg, out) = setup(103);
        let row_checks = predicted_row_checks(&q, &k, &v, &cfg);
        let col_checks = predicted_column_checks(&q, &k, &v, &cfg);
        assert_eq!(
            localize_single_error(&out, &row_checks, &col_checks, 1e-6),
            None
        );
    }

    #[test]
    fn double_error_in_distinct_rows_is_not_localized() {
        let (q, k, v, cfg, clean) = setup(104);
        let row_checks = predicted_row_checks(&q, &k, &v, &cfg);
        let col_checks = predicted_column_checks(&q, &k, &v, &cfg);
        let mut corrupted = clean.clone();
        corrupted[(1, 1)] += 1.0;
        corrupted[(4, 2)] += 1.0;
        assert_eq!(
            localize_single_error(&corrupted, &row_checks, &col_checks, 1e-6),
            None
        );
    }

    #[test]
    fn nan_corruption_is_flagged_in_its_row() {
        let (q, k, v, cfg, clean) = setup(105);
        let row_checks = predicted_row_checks(&q, &k, &v, &cfg);
        let col_checks = predicted_column_checks(&q, &k, &v, &cfg);
        let mut corrupted = clean.clone();
        corrupted[(2, 4)] = f64::NAN;
        // NaN poisons exactly one row sum and one column sum: locatable
        // coordinates (delta is NaN — correction impossible, flagged).
        let err = localize_single_error(&corrupted, &row_checks, &col_checks, 1e-6)
            .expect("NaN must localize");
        assert_eq!((err.row, err.col), (2, 4));
        assert!(err.delta.is_nan());
    }
}
