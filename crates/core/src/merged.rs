//! The merged accumulator of paper Eq. 9/10.
//!
//! Alg. 3's checksum update (line 7) and output update (line 6) are the
//! same recurrence:
//!
//! ```text
//! [c_i; o_i] = [c_{i−1}; o_{i−1}]·e^{m_{i−1}−m_i} + [sumrow_i(V); v_i]·e^{s_i−m_i}
//! ```
//!
//! so the checksum is just lane `d` of a (d+1)-wide output accumulator
//! processing the *extended value vector* `v*_i = [sumrow_i(V), v_i]`.
//! [`MergedAccumulator`] implements exactly this view; the hardware
//! simulator instantiates the identical structure as one extra MAC lane.

use fa_numerics::{OnlineSoftmax, RescaleStep};

/// A (d+1)-lane online-softmax accumulator: lanes `0..d` hold the output
/// vector `o_i`, lane `d` holds the running per-query checksum `c_i`.
///
/// # Example
///
/// ```
/// use flash_abft::MergedAccumulator;
///
/// let mut acc = MergedAccumulator::new(2);
/// // One step: score 0.0, value [1.0, 2.0] (sumrow = 3.0 computed inside).
/// acc.step(0.0, &[1.0, 2.0]);
/// assert_eq!(acc.checksum(), 3.0);
/// assert_eq!(acc.output(), &[1.0, 2.0]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MergedAccumulator {
    /// Lanes 0..d = output, lane d = checksum (the o* vector of Eq. 10).
    lanes: Vec<f64>,
    softmax: OnlineSoftmax,
}

impl MergedAccumulator {
    /// Creates a zeroed accumulator for output dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "output dimension must be positive");
        MergedAccumulator {
            lanes: vec![0.0; d + 1],
            softmax: OnlineSoftmax::new(),
        }
    }

    /// Output dimension `d`.
    pub fn dim(&self) -> usize {
        self.lanes.len() - 1
    }

    /// Feeds one (score, value-row) pair: computes `sumrow_i(V)` from the
    /// row, extends the value vector, and applies Eq. 10. Returns the
    /// rescale factors used (for hardware-trace comparison).
    ///
    /// # Panics
    ///
    /// Panics if `value_row.len() != self.dim()`.
    pub fn step(&mut self, score: f64, value_row: &[f64]) -> RescaleStep {
        assert_eq!(
            value_row.len(),
            self.dim(),
            "value row length {} != dimension {}",
            value_row.len(),
            self.dim()
        );
        let sumrow: f64 = value_row.iter().sum();
        self.step_with_sumrow(score, value_row, sumrow)
    }

    /// Like [`step`](Self::step) but with an externally supplied
    /// `sumrow_i(V)` — the form the hardware uses, where a shared adder
    /// tree computes the row sum once for all parallel query blocks.
    ///
    /// # Panics
    ///
    /// Panics if `value_row.len() != self.dim()`.
    pub fn step_with_sumrow(&mut self, score: f64, value_row: &[f64], sumrow: f64) -> RescaleStep {
        self.step_scalar(score, value_row, sumrow)
    }

    /// Like [`step_with_sumrow`](Self::step_with_sumrow) but consuming the
    /// value row in its storage format, widening each lane inside the
    /// update loop — the zero-copy form the fused kernel's hot loop uses
    /// (a staging buffer would double the per-step memory traffic).
    ///
    /// # Panics
    ///
    /// Panics if `value_row.len() != self.dim()`.
    pub fn step_scalar<T: fa_tensor::Scalar>(
        &mut self,
        score: f64,
        value_row: &[T],
        sumrow: f64,
    ) -> RescaleStep {
        assert_eq!(
            value_row.len(),
            self.dim(),
            "value row length {} != dimension {}",
            value_row.len(),
            self.dim()
        );
        let step = self.softmax.push(score);
        let d = self.dim();
        // Output lanes ride the SIMD rescale-accumulate; the checksum
        // lane is the same recurrence with the sumrow as its "value".
        fa_tensor::ops::axpy_f64(
            &mut self.lanes[..d],
            value_row,
            step.scale_old,
            step.weight_new,
        );
        self.lanes[d] = self.lanes[d] * step.scale_old + sumrow * step.weight_new;
        step
    }

    /// Feeds one (score, *extended* value row) pair, where the row is the
    /// paper's `v*_i = [v_i, sumrow_i(V)]` already widened to f64 — all
    /// `d+1` lanes (checksum included) ride one vectorized
    /// rescale-accumulate, the software analog of the extra MAC lane in
    /// Fig. 3. Bit-identical to [`step_with_sumrow`](Self::step_with_sumrow)
    /// on the unextended row: every lane performs the same two-rounding
    /// update. This is the fused kernel's hot-loop form; the staging
    /// matrix is built once per call, not per query.
    ///
    /// # Panics
    ///
    /// Panics if `extended_row.len() != self.dim() + 1`.
    pub fn step_ext(&mut self, score: f64, extended_row: &[f64]) -> RescaleStep {
        assert_eq!(
            extended_row.len(),
            self.lanes.len(),
            "extended value row length {} != dimension {} + 1",
            extended_row.len(),
            self.dim()
        );
        let step = self.softmax.push(score);
        fa_tensor::ops::axpy_f64(
            &mut self.lanes,
            extended_row,
            step.scale_old,
            step.weight_new,
        );
        step
    }

    /// The output lanes `o_i` (unnormalized).
    pub fn output(&self) -> &[f64] {
        &self.lanes[..self.lanes.len() - 1]
    }

    /// The checksum lane `c_i` (unnormalized).
    pub fn checksum(&self) -> f64 {
        self.lanes[self.lanes.len() - 1]
    }

    /// The running sum of exponentials `ℓ_i`.
    pub fn sum_exp(&self) -> f64 {
        self.softmax.sum_exp()
    }

    /// The running maximum `m_i`.
    pub fn max_score(&self) -> f64 {
        self.softmax.max()
    }

    /// Finalizes the query (Alg. 3 lines 9–10): returns the normalized
    /// attention row `o_N/ℓ_N` and the per-query check `c_N/ℓ_N`.
    ///
    /// Returns `None` if no step was taken (division by ℓ=0).
    pub fn finalize(&self) -> Option<(Vec<f64>, f64)> {
        if self.softmax.is_empty() {
            return None;
        }
        let l = self.softmax.sum_exp();
        let d = self.dim();
        let out = self.lanes[..d].iter().map(|&x| x / l).collect();
        Some((out, self.lanes[d] / l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_step_known_values() {
        let mut acc = MergedAccumulator::new(3);
        acc.step(1.5, &[1.0, 2.0, 3.0]);
        // First step: weight 1, scale 0.
        assert_eq!(acc.output(), &[1.0, 2.0, 3.0]);
        assert_eq!(acc.checksum(), 6.0);
        assert_eq!(acc.sum_exp(), 1.0);
        assert_eq!(acc.max_score(), 1.5);
    }

    #[test]
    fn checksum_lane_equals_sum_of_output_lanes_invariant() {
        // THE invariant: since c follows the same recurrence with
        // sumrow = Σ_j v_j, c_i == Σ_j o_i[j] at every step (in exact
        // arithmetic). This is why the predicted check equals the output
        // row sum.
        let mut acc = MergedAccumulator::new(4);
        let rows = [
            [0.5, -1.0, 2.0, 0.25],
            [1.0, 1.0, -3.0, 0.5],
            [0.0, 0.0, 1.0, -1.0],
        ];
        let scores = [0.2, 1.7, -0.4];
        for (s, row) in scores.iter().zip(&rows) {
            acc.step(*s, row);
            let lane_sum: f64 = acc.output().iter().sum();
            assert!(
                (acc.checksum() - lane_sum).abs() < 1e-12,
                "invariant broken: c={} Σo={lane_sum}",
                acc.checksum()
            );
        }
    }

    #[test]
    fn finalize_divides_by_sum_exp() {
        let mut acc = MergedAccumulator::new(2);
        acc.step(0.0, &[2.0, 4.0]);
        acc.step(0.0, &[4.0, 6.0]);
        // Equal scores: uniform weights, l = 2.
        let (out, check) = acc.finalize().expect("non-empty");
        assert!((out[0] - 3.0).abs() < 1e-12);
        assert!((out[1] - 5.0).abs() < 1e-12);
        assert!((check - 8.0).abs() < 1e-12);
    }

    #[test]
    fn finalize_empty_is_none() {
        assert_eq!(MergedAccumulator::new(2).finalize(), None);
    }

    #[test]
    fn rescaling_applies_to_all_lanes_equally() {
        let mut acc = MergedAccumulator::new(2);
        acc.step(0.0, &[1.0, 1.0]);
        // Score jump by 5 rescales old state by e^-5.
        let step = acc.step(5.0, &[0.0, 0.0]);
        assert!((step.scale_old - (-5.0f64).exp()).abs() < 1e-15);
        let expected = (-5.0f64).exp();
        assert!((acc.output()[0] - expected).abs() < 1e-15);
        assert!((acc.checksum() - 2.0 * expected).abs() < 1e-15);
    }

    #[test]
    fn external_sumrow_matches_internal() {
        let mut a = MergedAccumulator::new(3);
        let mut b = MergedAccumulator::new(3);
        let row = [1.5, -0.5, 2.0];
        a.step(0.7, &row);
        b.step_with_sumrow(0.7, &row, row.iter().sum());
        assert_eq!(a, b);
    }

    #[test]
    fn extended_row_step_matches_scalar_step_bitwise() {
        // The vectorized d+1-lane form must equal the per-lane scalar
        // update bit for bit, step after step.
        let rows = [
            [0.5, -1.0, 2.0, 0.25],
            [1.0, 1.0, -3.0, 0.5],
            [0.0, 0.0, 1.0, -1.0],
        ];
        let scores = [0.2, 1.7, -0.4];
        let mut scalar = MergedAccumulator::new(4);
        let mut ext = MergedAccumulator::new(4);
        for (s, row) in scores.iter().zip(&rows) {
            let sumrow: f64 = row.iter().sum();
            scalar.step_with_sumrow(*s, row, sumrow);
            let mut extended = row.to_vec();
            extended.push(sumrow);
            ext.step_ext(*s, &extended);
        }
        assert_eq!(scalar, ext);
    }

    #[test]
    #[should_panic(expected = "extended value row length")]
    fn wrong_extended_row_length_panics() {
        let mut acc = MergedAccumulator::new(3);
        acc.step_ext(0.0, &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "value row length")]
    fn wrong_row_length_panics() {
        let mut acc = MergedAccumulator::new(3);
        acc.step(0.0, &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dim_panics() {
        let _ = MergedAccumulator::new(0);
    }
}
