//! # flash-abft
//!
//! Fused algorithm-based fault tolerance for attention — the Rust
//! reproduction of *"Custom Algorithm-based Fault Tolerance for Attention
//! Layers in Transformers"* (Titopoulos, Alexandridis, Dimitrakopoulos).
//!
//! Traditional ABFT verifies each matrix multiplication of an attention
//! layer separately and cannot see inside the softmax between them.
//! Flash-ABFT computes **one** predicted checksum for the *entire*
//! attention operation `softmax(Q·Kᵀ)·V` — softmax included — and compares
//! it against the actual sum of the attention output. The prediction obeys
//! the same online recurrence as the FlashAttention-2 output itself
//! (paper Eq. 9/10), so it rides along the kernel at negligible cost.
//!
//! ## Module map
//!
//! * [`checksum`] — the closed-form checksum mathematics (paper Eq. 3–8):
//!   reference predictions computed directly from definitions, used as
//!   ground truth everywhere;
//! * [`online`] — Alg. 3: FlashAttention-2 with the online checksum
//!   computation fused into the kernel loop;
//! * [`merged`] — the merged accumulator of Eq. 9/10 (`o* = [c, o]`):
//!   checksum as an extra output lane;
//! * [`decode`] — checked autoregressive decoding: per-token Alg. 3
//!   checks over a growing KV cache, with checked prompt prefill through
//!   the fused kernel — the bit-exact golden model for the
//!   continuous-batching engine in `fa_attention::batch`;
//! * [`checker`] — detection: tolerance comparison, verification reports,
//!   and post-hoc verification of externally produced outputs;
//! * [`api`] — the high-level [`FlashAbft`] entry point and its multi-head
//!   wrapper.
//!
//! ## Quickstart
//!
//! ```
//! use fa_tensor::{Matrix, random::ElementDist};
//! use fa_attention::AttentionConfig;
//! use flash_abft::FlashAbft;
//!
//! let n = 32;
//! let d = 16;
//! let q = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 1);
//! let k = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 2);
//! let v = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 3);
//!
//! let engine = FlashAbft::new(AttentionConfig::new(d));
//! let checked = engine.compute(&q, &k, &v);
//! assert!(!checked.report().is_alarm(), "fault-free run must pass");
//! assert_eq!(checked.output().rows(), n);
//! ```

pub mod api;
pub mod checker;
pub mod checksum;
pub mod decode;
pub mod localize;
pub mod merged;
pub mod online;

pub use api::{CheckedAttention, FlashAbft};
pub use checker::{ChecksumReport, FlashAbftChecker};
pub use decode::{CheckedDecodeSession, CheckedDecodeStep, CheckedGqaDecodeSession};
pub use merged::MergedAccumulator;
pub use online::{attention_checked, flash2_with_checksum, flash2_with_checksum_serial};
