//! Property-based tests for the accelerator simulator: the fault-free
//! checksum identity, storage-map consistency and targeted-resim
//! equivalence over randomized geometries, seeds and policies.

use fa_accel_sim::config::{AcceleratorConfig, PrecisionPolicy};
use fa_accel_sim::fault::Fault;
use fa_accel_sim::storage::StorageMap;
use fa_accel_sim::Accelerator;
use fa_numerics::BF16;
use fa_tensor::{random::ElementDist, Matrix};
use proptest::prelude::*;

fn workload(n: usize, d: usize, seed: u64) -> (Matrix<BF16>, Matrix<BF16>, Matrix<BF16>) {
    (
        Matrix::random_seeded(n, d, ElementDist::default(), seed),
        Matrix::random_seeded(n, d, ElementDist::default(), seed + 1),
        Matrix::random_seeded(n, d, ElementDist::default(), seed + 2),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fault-free residual stays below the paper's 1e-6 bound for
    /// any geometry, seed and block count under the paper policy.
    #[test]
    fn golden_residual_below_tau(
        n in 4usize..40,
        d in 2usize..32,
        blocks in 1usize..8,
        seed in 0u64..1000,
    ) {
        let cfg = AcceleratorConfig::new(blocks, d);
        let (q, k, v) = workload(n, d, seed);
        let run = Accelerator::new(cfg).run(&q, &k, &v);
        prop_assert!(run.residual().abs() < 1e-6, "residual {}", run.residual());
        // And every per-query check equals its row sum:
        for (c, r) in run.per_query_checks.iter().zip(&run.per_query_row_sums) {
            prop_assert!((c - r).abs() < 1e-9, "{c} vs {r}");
        }
    }

    /// Storage-map bit accounting is exact: locating every bit index
    /// visits each register exactly width-many times, and checker bits
    /// match the checker-site filter.
    #[test]
    fn storage_map_accounting(blocks in 1usize..6, d in 1usize..16) {
        let cfg = AcceleratorConfig::new(blocks, d.max(1));
        let map = StorageMap::new(&cfg);
        let mut total = 0u64;
        let mut checker = 0u64;
        for e in map.entries() {
            total += e.width.bits() as u64;
            if e.addr.is_checker() {
                checker += e.width.bits() as u64;
            }
        }
        prop_assert_eq!(total, map.total_bits());
        prop_assert_eq!(checker, map.checker_bits());
        // Boundary bits locate into the right registers.
        let (first, b0) = map.locate_bit(0);
        prop_assert_eq!(first, map.entries()[0].addr);
        prop_assert_eq!(b0, 0);
        let (_, blast) = map.locate_bit(map.total_bits() - 1);
        let last_entry = map.entries().last().expect("non-empty");
        prop_assert_eq!(blast, last_entry.width.bits() - 1);
    }

    /// Targeted re-simulation is bit-exact with full simulation for any
    /// single fault (randomized over geometry, target and cycle).
    #[test]
    fn resim_equivalence(
        n in 4usize..24,
        blocks in 1usize..5,
        seed in 0u64..100,
        bit_frac in 0.0f64..1.0,
        cycle_frac in 0.0f64..1.0,
    ) {
        let d = 8;
        let cfg = AcceleratorConfig::new(blocks, d);
        let (q, k, v) = workload(n, d, seed);
        let accel = Accelerator::new(cfg);
        let golden = accel.run(&q, &k, &v);
        let map = accel.storage_map();
        let bit_index = ((map.total_bits() - 1) as f64 * bit_frac) as u64;
        let (target, bit) = map.locate_bit(bit_index);
        let total_cycles = cfg.total_cycles(n, n);
        let fault = Fault {
            cycle: ((total_cycles - 1) as f64 * cycle_frac) as u64,
            target,
            bit,
        };
        let full = accel.run_faulted(&q, &k, &v, &[fault], None);
        let fast = accel.run_faulted(&q, &k, &v, &[fault], Some(&golden));
        prop_assert_eq!(full.predicted.to_bits(), fast.predicted.to_bits());
        prop_assert_eq!(full.actual.to_bits(), fast.actual.to_bits());
        for (a, b) in full.output.as_slice().iter().zip(fast.output.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The narrow precision policy still computes correct attention (to
    /// BF16 accuracy) — only the checksum residual degrades.
    #[test]
    fn narrow_policy_output_is_sane(n in 4usize..20, seed in 0u64..50) {
        let d = 8;
        let cfg = AcceleratorConfig::new(2, d).with_precision(PrecisionPolicy::narrow());
        let (q, k, v) = workload(n, d, seed);
        let run = Accelerator::new(cfg).run(&q, &k, &v);
        let reference = fa_attention::flash2::attention(
            &q.to_f64(),
            &k.to_f64(),
            &v.to_f64(),
            &cfg.attention,
        );
        // BF16 accumulation over ≤20 steps: within a few percent.
        prop_assert!(run.output.to_f64().max_abs_diff(&reference) < 0.2);
    }
}

mod exp_unit_ablation {
    use super::*;
    use fa_accel_sim::config::ExpUnitKind;

    /// The exp-unit choice is checker-transparent: residuals stay below
    /// τ with every unit, and outputs agree with the libm build to the
    /// unit's accuracy.
    #[test]
    fn exp_units_are_checker_transparent() {
        let (q, k, v) = workload(24, 8, 99);
        let libm_run = Accelerator::new(AcceleratorConfig::new(4, 8)).run(&q, &k, &v);
        for kind in [ExpUnitKind::Poly, ExpUnitKind::Table] {
            let cfg = AcceleratorConfig::new(4, 8).with_exp_unit(kind);
            let run = Accelerator::new(cfg).run(&q, &k, &v);
            assert!(
                run.residual().abs() < 1e-6,
                "{kind:?} residual {}",
                run.residual()
            );
            for (a, b) in run
                .per_query_row_sums
                .iter()
                .zip(&libm_run.per_query_row_sums)
            {
                assert!((a - b).abs() < 1e-4, "{kind:?}: {a} vs {b}");
            }
        }
    }
}
