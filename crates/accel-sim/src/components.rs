//! Component cost library — the analytical substitute for the paper's
//! 28 nm standard-cell synthesis (see DESIGN.md).
//!
//! Costs are expressed in *relative units*: 1.0 area unit = one BF16
//! adder, 1.0 energy unit = one BF16 addition. Ratios are calibrated to
//! published 28 nm datapoints (a floating multiplier is ~8× an adder of
//! the same width; doubling operand width roughly quadruples multiplier
//! area and doubles adder area; a register bit with clocking is ~0.35
//! adder-equivalents). Absolute conversions to µm²/mW are provided as
//! documented constants so reports can print paper-style axes; only the
//! *shares* are meaningful for reproduction.

/// Relative area/energy costs of the primitive hardware components.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ComponentCosts {
    /// Area of a BF16 multiplier.
    pub area_mult_bf16: f64,
    /// Area of a BF16 adder (the unit).
    pub area_add_bf16: f64,
    /// Area of a double-precision adder.
    pub area_add_f64: f64,
    /// Area of a mixed 64×16-bit multiplier (checksum rescale MAC).
    pub area_mult_mixed: f64,
    /// Area of an exponential unit (LUT + multiply + add, see fa-numerics::exp).
    pub area_exp: f64,
    /// Area of a single-precision divider.
    pub area_div_f32: f64,
    /// Area of a double-precision divider.
    pub area_div_f64: f64,
    /// Area of a magnitude comparator.
    pub area_cmp: f64,
    /// Area of one register bit (flop + clock share).
    pub area_reg_bit: f64,

    /// Energy of a BF16 multiply.
    pub energy_mult_bf16: f64,
    /// Energy of a BF16 add (the unit).
    pub energy_add_bf16: f64,
    /// Energy of an f64 add.
    pub energy_add_f64: f64,
    /// Energy of a mixed 64×16 multiply.
    pub energy_mult_mixed: f64,
    /// Energy of one exponential evaluation.
    pub energy_exp: f64,
    /// Energy of one division.
    pub energy_div: f64,
    /// Energy of one comparison.
    pub energy_cmp: f64,
    /// Energy of writing one register bit.
    pub energy_reg_bit: f64,
}

impl Default for ComponentCosts {
    fn default() -> Self {
        ComponentCosts {
            area_mult_bf16: 8.0,
            area_add_bf16: 1.0,
            area_add_f64: 10.0,
            area_mult_mixed: 32.0,
            area_exp: 14.0,
            area_div_f32: 18.0,
            area_div_f64: 80.0,
            area_cmp: 1.0,
            area_reg_bit: 0.35,
            energy_mult_bf16: 4.0,
            energy_add_bf16: 1.0,
            energy_add_f64: 6.0,
            energy_mult_mixed: 7.0,
            energy_exp: 10.0,
            energy_div: 20.0,
            energy_cmp: 0.5,
            energy_reg_bit: 0.08,
        }
    }
}

/// Conversion constants from relative units to physical units, anchored
/// on a 28 nm BF16 adder ≈ 150 µm² and ≈ 0.15 pJ/op at 0.9 V. Only used
/// for printing paper-style axes; shares are unit-free.
pub mod physical {
    /// µm² per area unit.
    pub const UM2_PER_AREA_UNIT: f64 = 150.0;
    /// pJ per energy unit.
    pub const PJ_PER_ENERGY_UNIT: f64 = 0.15;
    /// Clock frequency assumed when converting energy/cycle to power (Hz).
    pub const CLOCK_HZ: f64 = 500.0e6;
}

/// Structural component inventory of one configuration, split into
/// kernel and checker contributions. Counts follow Fig. 2/3:
///
/// **Kernel, per block**: a d-wide BF16 dot-product unit (d multipliers,
/// d−1 adders), two exponential units, the d-lane output update (2d
/// multipliers, d adders), the ℓ update (2 mult, 1 add), a max
/// comparator, a divider, and registers (q, o, m, ℓ).
///
/// **Checker, per block**: the c-lane MAC (2 mixed multipliers, 1 f64
/// adder), the per-block check divider, the c register and its two
/// pipeline stages.
///
/// **Checker, shared**: the sumrow adder tree (d−1 BF16 adders feeding an
/// f64 accumulator), the global checksum and output-sum accumulators
/// (one f64 adder each), the final comparator, and their registers.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ComponentCounts {
    /// BF16 multipliers.
    pub mult_bf16: u64,
    /// BF16 adders.
    pub add_bf16: u64,
    /// f64 adders.
    pub add_f64: u64,
    /// Mixed-width multipliers.
    pub mult_mixed: u64,
    /// Exponential units.
    pub exp: u64,
    /// f32 dividers.
    pub div_f32: u64,
    /// f64 dividers.
    pub div_f64: u64,
    /// Comparators.
    pub cmp: u64,
    /// Register bits.
    pub reg_bits: u64,
}

impl ComponentCounts {
    /// Total area in relative units.
    pub fn area(&self, c: &ComponentCosts) -> f64 {
        self.mult_bf16 as f64 * c.area_mult_bf16
            + self.add_bf16 as f64 * c.area_add_bf16
            + self.add_f64 as f64 * c.area_add_f64
            + self.mult_mixed as f64 * c.area_mult_mixed
            + self.exp as f64 * c.area_exp
            + self.div_f32 as f64 * c.area_div_f32
            + self.div_f64 as f64 * c.area_div_f64
            + self.cmp as f64 * c.area_cmp
            + self.reg_bits as f64 * c.area_reg_bit
    }
}

/// Kernel component counts for one configuration (P blocks, dimension d).
pub fn kernel_components(parallel_queries: u64, d: u64) -> ComponentCounts {
    let p = parallel_queries;
    ComponentCounts {
        // dot product (d) + output update (2d) + l update (2)
        mult_bf16: p * (d + 2 * d + 2),
        // dot tree (d-1) + output accumulate (d) + l accumulate (1)
        add_bf16: p * ((d - 1) + d + 1),
        add_f64: 0,
        mult_mixed: 0,
        exp: p * 2,
        div_f32: p,
        div_f64: 0,
        cmp: p,
        // q (16d) + o (16d) + m (16) + l (32) bits per block
        reg_bits: p * (16 * d + 16 * d + 16 + 32),
    }
}

/// Checker component counts (per-block lanes plus shared logic).
pub fn checker_components(parallel_queries: u64, d: u64, shared_sumrow: bool) -> ComponentCounts {
    let p = parallel_queries;
    // Per block: c MAC (2 mixed mult + 1 f64 add), check divider, c
    // register + pipeline stage (2×64 bits).
    let mut counts = ComponentCounts {
        mult_bf16: 0,
        add_bf16: 0,
        add_f64: p,
        mult_mixed: p * 2,
        exp: 0,
        div_f32: 0,
        div_f64: p,
        cmp: 0,
        reg_bits: p * 3 * 64,
    };
    // Shared: sumrow tree + f64 accumulate stage, global + output-sum
    // accumulators, final comparator, registers.
    let tree_instances = if shared_sumrow { 1 } else { p };
    counts.add_bf16 += tree_instances * (d - 1);
    counts.add_f64 += tree_instances + 2;
    counts.cmp += 1;
    counts.reg_bits += tree_instances * 64 + 2 * 64;
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cost_ratios_are_sane() {
        let c = ComponentCosts::default();
        assert!(c.area_mult_bf16 > c.area_add_bf16);
        assert!(c.area_div_f64 > c.area_div_f32);
        assert!(c.area_add_f64 > c.area_add_bf16);
        assert!(c.energy_div > c.energy_mult_bf16);
    }

    #[test]
    fn kernel_counts_scale_linearly_with_blocks() {
        let one = kernel_components(1, 128);
        let sixteen = kernel_components(16, 128);
        assert_eq!(sixteen.mult_bf16, 16 * one.mult_bf16);
        assert_eq!(sixteen.reg_bits, 16 * one.reg_bits);
    }

    #[test]
    fn shared_sumrow_reduces_checker_area() {
        let c = ComponentCosts::default();
        let shared = checker_components(16, 128, true);
        let replicated = checker_components(16, 128, false);
        assert!(shared.area(&c) < replicated.area(&c));
        // The tree is (d−1) adders: replicating it 16× adds 15×127 bf16 adds.
        assert_eq!(replicated.add_bf16 - shared.add_bf16, 15 * 127);
    }

    #[test]
    fn area_computation_is_weighted_sum() {
        let c = ComponentCosts::default();
        let counts = ComponentCounts {
            mult_bf16: 2,
            add_bf16: 3,
            ..Default::default()
        };
        assert_eq!(counts.area(&c), 2.0 * 8.0 + 3.0);
    }

    #[test]
    fn physical_constants_exist() {
        const { assert!(physical::UM2_PER_AREA_UNIT > 0.0) }
        const { assert!(physical::PJ_PER_ENERGY_UNIT > 0.0) }
        assert_eq!(physical::CLOCK_HZ, 5.0e8);
    }
}
