//! The top-level block-parallel accelerator (Fig. 2/3 schedule).
//!
//! `parallel_queries` blocks serve one query each; keys/values stream one
//! row per cycle and are broadcast. Sequences with more queries than
//! blocks run in multiple passes, re-streaming K/V. After each pass the
//! divide epilogue produces the attention rows, and the checker
//! accumulates the per-query checks into the global predicted checksum
//! and the per-query row sums into the actual output checksum.
//!
//! Fault campaigns need many runs that differ from a golden run by one
//! bit flip, so [`Accelerator::run_faulted`] re-simulates **only** the
//! pass/blocks a fault can influence and splices golden results for the
//! rest — bit-exact with the full simulation (verified by tests).

use crate::block::{simulate_block_pass, BlockFault, BlockRegKind};
use crate::config::AcceleratorConfig;
use crate::fault::{Fault, RegAddr};
use crate::register::Register;
use crate::storage::StorageMap;
use fa_numerics::BF16;
use fa_tensor::Matrix;
use std::collections::HashMap;

/// The outcome of one accelerator execution.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Written-back attention output (BF16, N×d).
    pub output: Matrix<BF16>,
    /// Per-query checks `c_N/ℓ_N` (Alg. 3 line 10).
    pub per_query_checks: Vec<f64>,
    /// Per-query output row sums (pre-rounding) — contributions to the
    /// actual checksum.
    pub per_query_row_sums: Vec<f64>,
    /// Final global predicted checksum (GlobalCheck register).
    pub predicted: f64,
    /// Final actual output checksum (OutputSum register).
    pub actual: f64,
    /// Total cycles consumed.
    pub cycles: u64,
}

impl RunResult {
    /// The hardware comparator's residual `predicted − actual`.
    pub fn residual(&self) -> f64 {
        self.predicted - self.actual
    }
}

/// The simulated accelerator.
///
/// See the crate-level docs for an end-to-end example.
#[derive(Clone, Debug)]
pub struct Accelerator {
    cfg: AcceleratorConfig,
}

impl Accelerator {
    /// Creates an accelerator with the given configuration.
    pub fn new(cfg: AcceleratorConfig) -> Self {
        Accelerator { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.cfg
    }

    /// The storage inventory (for fault sampling).
    pub fn storage_map(&self) -> StorageMap {
        StorageMap::new(&self.cfg)
    }

    /// Fault-free (golden) execution.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn run(&self, q: &Matrix<BF16>, k: &Matrix<BF16>, v: &Matrix<BF16>) -> RunResult {
        self.run_faulted(q, k, v, &[], None)
    }

    /// Execution with injected faults. When `golden` is supplied, only
    /// the passes/blocks a fault can influence are re-simulated; results
    /// are bit-identical to a full simulation.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, a fault cycle beyond the run, or a fault
    /// lane/block outside the configured geometry.
    pub fn run_faulted(
        &self,
        q: &Matrix<BF16>,
        k: &Matrix<BF16>,
        v: &Matrix<BF16>,
        faults: &[Fault],
        golden: Option<&RunResult>,
    ) -> RunResult {
        self.cfg.attention.validate_shapes(q, k, v);
        let n_q = q.rows();
        let n_k = k.rows();
        let p_blocks = self.cfg.parallel_queries;
        let passes = self.cfg.passes(n_q);
        let cpp = self.cfg.cycles_per_pass(n_k);
        let total_cycles = passes as u64 * cpp;
        for f in faults {
            assert!(
                f.cycle < total_cycles,
                "fault cycle {} beyond run length {total_cycles}",
                f.cycle
            );
        }

        // Partition faults.
        let mut block_faults: HashMap<(usize, usize), Vec<BlockFault>> = HashMap::new();
        let mut sumrow_faults: HashMap<usize, Vec<(u64, u32)>> = HashMap::new();
        let mut global_check_flips: Vec<(u64, u32)> = Vec::new();
        let mut output_sum_flips: Vec<(u64, u32)> = Vec::new();
        for f in faults {
            let pass = (f.cycle / cpp) as usize;
            let t = f.cycle % cpp;
            match f.target {
                RegAddr::Query { block, lane } => {
                    assert!(block < p_blocks && lane < self.cfg.head_dim());
                    block_faults
                        .entry((pass, block))
                        .or_default()
                        .push(BlockFault {
                            in_pass_cycle: t,
                            kind: BlockRegKind::Query,
                            lane,
                            bit: f.bit,
                        });
                }
                RegAddr::Output { block, lane } => {
                    assert!(block < p_blocks && lane < self.cfg.head_dim());
                    block_faults
                        .entry((pass, block))
                        .or_default()
                        .push(BlockFault {
                            in_pass_cycle: t,
                            kind: BlockRegKind::Output,
                            lane,
                            bit: f.bit,
                        });
                }
                RegAddr::MaxScore { block } => {
                    assert!(block < p_blocks);
                    block_faults
                        .entry((pass, block))
                        .or_default()
                        .push(BlockFault {
                            in_pass_cycle: t,
                            kind: BlockRegKind::MaxScore,
                            lane: 0,
                            bit: f.bit,
                        });
                }
                RegAddr::SumExp { block } => {
                    assert!(block < p_blocks);
                    block_faults
                        .entry((pass, block))
                        .or_default()
                        .push(BlockFault {
                            in_pass_cycle: t,
                            kind: BlockRegKind::SumExp,
                            lane: 0,
                            bit: f.bit,
                        });
                }
                RegAddr::Check { block } => {
                    assert!(block < p_blocks);
                    block_faults
                        .entry((pass, block))
                        .or_default()
                        .push(BlockFault {
                            in_pass_cycle: t,
                            kind: BlockRegKind::Check,
                            lane: 0,
                            bit: f.bit,
                        });
                }
                RegAddr::SumRow => {
                    // The sumrow pipeline register is consumed during
                    // streaming cycles only.
                    if t < n_k as u64 {
                        sumrow_faults.entry(pass).or_default().push((t, f.bit));
                    }
                }
                RegAddr::GlobalCheck => global_check_flips.push((f.cycle, f.bit)),
                RegAddr::OutputSum => output_sum_flips.push((f.cycle, f.bit)),
            }
        }

        let base_sumrows = v.row_sums();

        let mut output = Matrix::<BF16>::zeros(n_q, self.cfg.head_dim());
        let mut per_query_checks = vec![0.0f64; n_q];
        let mut per_query_row_sums = vec![0.0f64; n_q];

        for pass in 0..passes {
            let pass_has_sumrow_faults = sumrow_faults.contains_key(&pass);
            // Effective sumrow stream for this pass.
            let sumrows: Vec<f64> = if pass_has_sumrow_faults {
                let mut eff = base_sumrows.clone();
                for &(t, bit) in &sumrow_faults[&pass] {
                    let mut r = Register::with_value(self.cfg.precision.sumrow, eff[t as usize]);
                    r.flip_bit(bit);
                    eff[t as usize] = r.read();
                }
                eff
            } else {
                base_sumrows.clone()
            };

            for block in 0..p_blocks {
                let qi = pass * p_blocks + block;
                if qi >= n_q {
                    break; // partial final pass: idle blocks
                }
                let private = block_faults.get(&(pass, block));
                let must_sim = golden.is_none() || private.is_some() || pass_has_sumrow_faults;
                if must_sim {
                    let empty = Vec::new();
                    let result = simulate_block_pass(
                        &self.cfg,
                        q.row(qi),
                        k,
                        v,
                        &sumrows,
                        private.unwrap_or(&empty),
                    );
                    for (c, val) in result.output.iter().enumerate() {
                        output[(qi, c)] = *val;
                    }
                    per_query_checks[qi] = result.check_q;
                    per_query_row_sums[qi] = result.row_sum;
                } else {
                    let g = golden.expect("must_sim is false only with golden");
                    for c in 0..self.cfg.head_dim() {
                        output[(qi, c)] = g.output[(qi, c)];
                    }
                    per_query_checks[qi] = g.per_query_checks[qi];
                    per_query_row_sums[qi] = g.per_query_row_sums[qi];
                }
            }
        }

        // Global accumulator replay: one accumulation event per pass at
        // the pass's final epilogue cycle, with bit flips interleaved by
        // cycle (a flip at cycle c applies before any event at cycle >= c).
        let accumulate = |per_query: &[f64], flips: &mut Vec<(u64, u32)>| -> f64 {
            flips.sort_unstable();
            let mut reg = Register::new(self.cfg.precision.global);
            let mut flip_idx = 0;
            for pass in 0..passes {
                let event_cycle = pass as u64 * cpp + n_k as u64 + 1;
                while flip_idx < flips.len() && flips[flip_idx].0 <= event_cycle {
                    reg.flip_bit(flips[flip_idx].1);
                    flip_idx += 1;
                }
                let mut pass_sum = reg.read();
                for block in 0..p_blocks {
                    let qi = pass * p_blocks + block;
                    if qi >= n_q {
                        break;
                    }
                    pass_sum += per_query[qi];
                }
                reg.write(pass_sum);
            }
            while flip_idx < flips.len() {
                reg.flip_bit(flips[flip_idx].1);
                flip_idx += 1;
            }
            reg.read()
        };

        let predicted = if self.cfg.checker_enabled {
            accumulate(&per_query_checks, &mut global_check_flips)
        } else {
            0.0
        };
        let actual = if self.cfg.checker_enabled {
            accumulate(&per_query_row_sums, &mut output_sum_flips)
        } else {
            per_query_row_sums.iter().sum()
        };

        RunResult {
            output,
            per_query_checks,
            per_query_row_sums,
            predicted,
            actual,
            cycles: total_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_tensor::random::ElementDist;

    fn setup(
        n: usize,
        d: usize,
        blocks: usize,
        seed: u64,
    ) -> (Accelerator, Matrix<BF16>, Matrix<BF16>, Matrix<BF16>) {
        let accel = Accelerator::new(AcceleratorConfig::new(blocks, d));
        let q = Matrix::random_seeded(n, d, ElementDist::default(), seed);
        let k = Matrix::random_seeded(n, d, ElementDist::default(), seed + 1);
        let v = Matrix::random_seeded(n, d, ElementDist::default(), seed + 2);
        (accel, q, k, v)
    }

    #[test]
    fn golden_run_matches_reference_kernel() {
        let (accel, q, k, v) = setup(12, 8, 4, 1);
        let run = accel.run(&q, &k, &v);
        let reference = fa_attention::flash2::attention(
            &q.to_f64(),
            &k.to_f64(),
            &v.to_f64(),
            &accel.config().attention,
        );
        assert!(
            run.output.to_f64().max_abs_diff(&reference) < 0.01,
            "BF16 writeback"
        );
        // Pre-rounding row sums match exactly.
        for (i, rs) in run.per_query_row_sums.iter().enumerate() {
            let expected: f64 = reference.row(i).iter().sum();
            assert!((rs - expected).abs() < 1e-10, "row {i}");
        }
    }

    #[test]
    fn golden_residual_is_below_paper_threshold() {
        for seed in [1, 7, 99] {
            let (accel, q, k, v) = setup(32, 16, 8, seed);
            let run = accel.run(&q, &k, &v);
            assert!(
                run.residual().abs() < 1e-6,
                "fault-free residual {} must satisfy the paper's bound",
                run.residual()
            );
        }
    }

    #[test]
    fn multi_pass_equals_reference() {
        // 3 passes with a partial final pass (10 queries on 4 blocks).
        let (accel, q, k, v) = setup(10, 4, 4, 5);
        let run = accel.run(&q, &k, &v);
        assert_eq!(run.cycles, 3 * (10 + 2));
        let reference = fa_attention::flash2::attention(
            &q.to_f64(),
            &k.to_f64(),
            &v.to_f64(),
            &accel.config().attention,
        );
        for i in 0..10 {
            let expected: f64 = reference.row(i).iter().sum();
            assert!((run.per_query_row_sums[i] - expected).abs() < 1e-10);
        }
        assert!(run.residual().abs() < 1e-6);
    }

    #[test]
    fn targeted_resim_is_bit_exact_with_full_sim() {
        let (accel, q, k, v) = setup(12, 4, 4, 20);
        let golden = accel.run(&q, &k, &v);
        let map = accel.storage_map();
        // Exercise every register class.
        let faults = [
            Fault {
                cycle: 3,
                target: RegAddr::Query { block: 1, lane: 2 },
                bit: 13,
            },
            Fault {
                cycle: 17,
                target: RegAddr::Output { block: 0, lane: 3 },
                bit: 60,
            },
            Fault {
                cycle: 8,
                target: RegAddr::MaxScore { block: 2 },
                bit: 40,
            },
            Fault {
                cycle: 30,
                target: RegAddr::SumExp { block: 3 },
                bit: 50,
            },
            Fault {
                cycle: 22,
                target: RegAddr::Check { block: 1 },
                bit: 55,
            },
            Fault {
                cycle: 5,
                target: RegAddr::SumRow,
                bit: 51,
            },
            Fault {
                cycle: 13,
                target: RegAddr::GlobalCheck,
                bit: 52,
            },
            Fault {
                cycle: 27,
                target: RegAddr::OutputSum,
                bit: 33,
            },
        ];
        let _ = map;
        for f in faults {
            let full = accel.run_faulted(&q, &k, &v, &[f], None);
            let fast = accel.run_faulted(&q, &k, &v, &[f], Some(&golden));
            assert_eq!(
                full.predicted.to_bits(),
                fast.predicted.to_bits(),
                "predicted mismatch for {f:?}"
            );
            assert_eq!(
                full.actual.to_bits(),
                fast.actual.to_bits(),
                "actual mismatch for {f:?}"
            );
            let bits_equal = full
                .output
                .as_slice()
                .iter()
                .zip(fast.output.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(bits_equal, "output mismatch for {f:?}");
        }
    }

    #[test]
    fn output_register_fault_trips_hardware_comparator() {
        let (accel, q, k, v) = setup(8, 4, 4, 30);
        let golden = accel.run(&q, &k, &v);
        let fault = Fault {
            cycle: 2,
            target: RegAddr::Output { block: 0, lane: 1 },
            bit: 62,
        };
        let run = accel.run_faulted(&q, &k, &v, &[fault], Some(&golden));
        let residual = run.residual().abs();
        assert!(
            residual > 1e-6 || residual.is_nan(),
            "output fault must produce a residual, got {residual}"
        );
    }

    #[test]
    fn check_register_fault_is_false_positive_material() {
        let (accel, q, k, v) = setup(8, 4, 4, 31);
        let golden = accel.run(&q, &k, &v);
        let fault = Fault {
            cycle: 4,
            target: RegAddr::Check { block: 2 },
            bit: 58,
        };
        let run = accel.run_faulted(&q, &k, &v, &[fault], Some(&golden));
        // Output is untouched...
        assert_eq!(run.output, golden.output);
        // ...but the comparator fires: false positive.
        assert!(run.residual().abs() > 1e-6);
    }

    #[test]
    fn coherent_weight_fault_evades_comparator_but_not_discrepancy_criterion() {
        // The architectural subtlety: an ℓ-register fault scales output
        // and checksum identically — the runtime comparator stays silent
        // even though the output is wrong. The paper's "checksum-level
        // discrepancy" criterion (predicted vs TRUE checksum) does flag
        // it. Both signals are exposed; fa-fault classifies with either.
        let (accel, q, k, v) = setup(8, 4, 4, 32);
        let golden = accel.run(&q, &k, &v);
        let fault = Fault {
            cycle: 7,
            target: RegAddr::SumExp { block: 1 },
            bit: 56,
        };
        let run = accel.run_faulted(&q, &k, &v, &[fault], Some(&golden));
        // Output corrupted:
        assert!(run.output.to_f64().max_abs_diff(&golden.output.to_f64()) > 1e-6);
        // Hardware comparator silent (coherence):
        assert!(run.residual().abs() < 1e-6);
        // Discrepancy vs the true (golden) checksum flags it:
        assert!((run.predicted - golden.predicted).abs() > 1e-6);
    }

    #[test]
    fn global_check_fault_only_moves_prediction() {
        let (accel, q, k, v) = setup(8, 4, 4, 33);
        let golden = accel.run(&q, &k, &v);
        let fault = Fault {
            cycle: 15, // after the first pass accumulated: register is non-zero
            target: RegAddr::GlobalCheck,
            bit: 51, // mantissa MSB: ~50 % relative change
        };
        let run = accel.run_faulted(&q, &k, &v, &[fault], Some(&golden));
        assert_eq!(run.output, golden.output);
        assert_eq!(run.actual.to_bits(), golden.actual.to_bits());
        assert_ne!(run.predicted.to_bits(), golden.predicted.to_bits());
    }

    #[test]
    fn sumrow_fault_corrupts_prediction_for_that_pass() {
        let (accel, q, k, v) = setup(4, 4, 4, 34);
        let golden = accel.run(&q, &k, &v);
        let fault = Fault {
            cycle: 1,
            target: RegAddr::SumRow,
            bit: 62,
        };
        let run = accel.run_faulted(&q, &k, &v, &[fault], Some(&golden));
        assert_eq!(run.output, golden.output, "sumrow feeds only the checker");
        assert!((run.predicted - golden.predicted).abs() > 1e-6 || run.predicted.is_nan());
    }

    #[test]
    fn checker_disabled_accelerator_still_computes_attention() {
        let cfg = AcceleratorConfig::new(4, 4).with_checker(false);
        let accel = Accelerator::new(cfg);
        let q = Matrix::random_seeded(4, 4, ElementDist::default(), 40);
        let k = Matrix::random_seeded(4, 4, ElementDist::default(), 41);
        let v = Matrix::random_seeded(4, 4, ElementDist::default(), 42);
        let run = accel.run(&q, &k, &v);
        assert_eq!(run.predicted, 0.0);
        assert!(run.actual.is_finite());
        assert!(run.output.all_finite());
    }

    #[test]
    #[should_panic(expected = "beyond run length")]
    fn fault_cycle_out_of_range_panics() {
        let (accel, q, k, v) = setup(4, 4, 4, 50);
        let fault = Fault {
            cycle: 1000,
            target: RegAddr::SumRow,
            bit: 0,
        };
        let _ = accel.run_faulted(&q, &k, &v, &[fault], None);
    }
}

/// Multi-head execution: runs each head's slice of packed `N × (H·d)`
/// matrices through the accelerator sequentially (heads share the
/// hardware in time, as a single-head accelerator serves a multi-head
/// layer). Returns per-head results.
///
/// # Panics
///
/// Panics if the packed width is not a multiple of the configured head
/// dimension.
pub fn run_multihead(
    accel: &Accelerator,
    q: &Matrix<BF16>,
    k: &Matrix<BF16>,
    v: &Matrix<BF16>,
) -> Vec<RunResult> {
    let d = accel.config().head_dim();
    assert_eq!(
        q.cols() % d,
        0,
        "packed width {} not a multiple of d={d}",
        q.cols()
    );
    assert_eq!(k.cols(), q.cols(), "K width mismatch");
    assert_eq!(v.cols(), q.cols(), "V width mismatch");
    let heads = q.cols() / d;
    let slice = |m: &Matrix<BF16>, h: usize| Matrix::from_fn(m.rows(), d, |r, c| m[(r, h * d + c)]);
    (0..heads)
        .map(|h| accel.run(&slice(q, h), &slice(k, h), &slice(v, h)))
        .collect()
}

#[cfg(test)]
mod multihead_tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use fa_tensor::random::ElementDist;

    #[test]
    fn multihead_runs_verify_per_head() {
        let accel = Accelerator::new(AcceleratorConfig::new(4, 8));
        let q = Matrix::random_seeded(12, 24, ElementDist::default(), 1); // 3 heads
        let k = Matrix::random_seeded(12, 24, ElementDist::default(), 2);
        let v = Matrix::random_seeded(12, 24, ElementDist::default(), 3);
        let results = run_multihead(&accel, &q, &k, &v);
        assert_eq!(results.len(), 3);
        for (h, r) in results.iter().enumerate() {
            assert!(r.residual().abs() < 1e-6, "head {h}");
            assert_eq!(r.output.cols(), 8);
        }
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn ragged_packing_panics() {
        let accel = Accelerator::new(AcceleratorConfig::new(2, 8));
        let m = Matrix::random_seeded(4, 20, ElementDist::default(), 1);
        let _ = run_multihead(&accel, &m, &m, &m);
    }
}
