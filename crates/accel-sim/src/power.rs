//! Power model — regenerates the power half of the paper's Fig. 4.
//!
//! Average power = (energy per streaming cycle, steady state) ×
//! clock frequency, with the divide epilogue amortized over the pass.
//! Activity counts come from the Fig. 2/3 schedule: every streaming cycle
//! each block performs one d-wide dot product, two exponentials, the
//! (d+1)-lane merged update and the ℓ update, while the shared checker
//! logic computes one sumrow. Like the paper's PowerPro methodology,
//! memory power is excluded: "memory power is not affected by the
//! presence of the error-checking logic" (§IV-A).

use crate::components::{physical, ComponentCosts};

/// Per-cycle energy breakdown for one configuration.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PowerReport {
    /// Parallel query blocks.
    pub parallel_queries: u64,
    /// Head dimension.
    pub head_dim: u64,
    /// Kernel energy per streaming cycle (relative units).
    pub kernel_energy_per_cycle: f64,
    /// Checker energy per streaming cycle (relative units).
    pub checker_energy_per_cycle: f64,
}

impl PowerReport {
    /// Computes the steady-state report. `keys_per_pass` amortizes the
    /// divide epilogue (dividers only fire once per pass).
    ///
    /// # Panics
    ///
    /// Panics if any geometry parameter is zero.
    pub fn compute(
        parallel_queries: u64,
        head_dim: u64,
        keys_per_pass: u64,
        costs: &ComponentCosts,
    ) -> Self {
        assert!(
            parallel_queries > 0 && head_dim > 0 && keys_per_pass > 0,
            "geometry must be positive"
        );
        let p = parallel_queries as f64;
        let d = head_dim as f64;
        let n = keys_per_pass as f64;
        let c = costs;

        // Kernel per block per streaming cycle.
        let dot = d * c.energy_mult_bf16 + (d - 1.0) * c.energy_add_bf16;
        let exps = 2.0 * c.energy_exp;
        let out_update = 2.0 * d * c.energy_mult_bf16 + d * c.energy_add_bf16;
        let l_update = 2.0 * c.energy_mult_bf16 + c.energy_add_bf16;
        let max_cmp = c.energy_cmp;
        // Register writes: o (16d bits), m (16), l (32).
        let reg_writes = (16.0 * d + 48.0) * c.energy_reg_bit;
        // Epilogue divisions amortized: d divisions per block per pass.
        let div_amortized = d * c.energy_div / n;
        let kernel_block =
            dot + exps + out_update + l_update + max_cmp + reg_writes + div_amortized;

        // Checker per block per streaming cycle: the c-lane MAC + c write.
        let c_mac = 2.0 * c.energy_mult_mixed + c.energy_add_f64;
        let c_write = 64.0 * c.energy_reg_bit;
        let check_div_amortized = c.energy_div / n;
        let checker_block = c_mac + c_write + check_div_amortized;

        // Shared checker logic per cycle: sumrow tree + register, plus
        // the two global accumulators and comparison amortized per pass.
        let sumrow = (d - 1.0) * c.energy_add_bf16 + c.energy_add_f64 + 64.0 * c.energy_reg_bit;
        let global_amortized =
            (2.0 * c.energy_add_f64 + c.energy_cmp + 128.0 * c.energy_reg_bit) / n;

        PowerReport {
            parallel_queries,
            head_dim,
            kernel_energy_per_cycle: p * kernel_block,
            checker_energy_per_cycle: p * checker_block + sumrow + global_amortized,
        }
    }

    /// Total energy per cycle.
    pub fn total_energy_per_cycle(&self) -> f64 {
        self.kernel_energy_per_cycle + self.checker_energy_per_cycle
    }

    /// The checker's share of average power — the paper's metric
    /// (Fig. 4: <1.9 %, average 1.53 %).
    pub fn checker_share(&self) -> f64 {
        self.checker_energy_per_cycle / self.total_energy_per_cycle()
    }

    /// Average power in mW at the documented clock/energy anchors.
    pub fn total_mw(&self) -> f64 {
        self.total_energy_per_cycle() * physical::PJ_PER_ENERGY_UNIT * physical::CLOCK_HZ * 1e-9
    }

    /// Checker average power in mW.
    pub fn checker_mw(&self) -> f64 {
        self.checker_energy_per_cycle * physical::PJ_PER_ENERGY_UNIT * physical::CLOCK_HZ * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(p: u64) -> PowerReport {
        PowerReport::compute(p, 128, 256, &ComponentCosts::default())
    }

    #[test]
    fn checker_power_share_matches_paper_band() {
        // Paper Fig. 4: power overhead < 1.9 %, average 1.53 %.
        let r16 = report(16);
        let r32 = report(32);
        let avg = (r16.checker_share() + r32.checker_share()) / 2.0;
        assert!(
            r16.checker_share() < 0.035 && r16.checker_share() > 0.005,
            "16q power share {}",
            r16.checker_share()
        );
        assert!(avg > 0.005 && avg < 0.03, "average power share {avg}");
    }

    #[test]
    fn power_share_below_area_share() {
        // The paper's pattern: 1.53 % power vs 4.55 % area — checker
        // state is area-heavy (registers, dividers) but activity-light.
        use crate::area::AreaReport;
        use crate::components::ComponentCosts;
        let costs = ComponentCosts::default();
        for p in [16, 32] {
            let power = PowerReport::compute(p, 128, 256, &costs).checker_share();
            let area = AreaReport::compute(p, 128, true, &costs).checker_share();
            assert!(power < area, "power {power} must be below area {area}");
        }
    }

    #[test]
    fn share_shrinks_with_more_blocks() {
        let r16 = report(16);
        let r32 = report(32);
        assert!(r32.checker_share() < r16.checker_share());
    }

    #[test]
    fn kernel_energy_scales_with_blocks() {
        let r16 = report(16);
        let r32 = report(32);
        assert!((r32.kernel_energy_per_cycle / r16.kernel_energy_per_cycle - 2.0).abs() < 1e-12);
    }

    #[test]
    fn longer_passes_amortize_dividers() {
        let costs = ComponentCosts::default();
        let short = PowerReport::compute(16, 128, 64, &costs);
        let long = PowerReport::compute(16, 128, 1024, &costs);
        assert!(long.kernel_energy_per_cycle < short.kernel_energy_per_cycle);
    }

    #[test]
    fn physical_power_is_positive_and_consistent() {
        let r = report(16);
        assert!(r.total_mw() > 0.0);
        assert!(r.checker_mw() < r.total_mw());
        let ratio = r.checker_mw() / r.total_mw();
        assert!((ratio - r.checker_share()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "geometry must be positive")]
    fn zero_geometry_panics() {
        let _ = PowerReport::compute(16, 0, 256, &ComponentCosts::default());
    }
}
