//! # fa-accel-sim
//!
//! Cycle-level simulator and hardware cost model of the block-parallel
//! FlashAttention-2 accelerator with the Flash-ABFT checker (paper
//! Fig. 2/3) — the substitute for the paper's Catapult-HLS/28 nm flow
//! (see DESIGN.md).
//!
//! ## What is modelled
//!
//! * **Datapath** — `parallel_queries` query blocks, each holding a query
//!   vector, output accumulator, running max `m`, sum-of-exponentials `ℓ`
//!   and (checker) per-query checksum `c` in *named, bit-accurate
//!   registers*. Keys and values stream one row per cycle, broadcast to
//!   all blocks; a shared adder computes `sumrow_i(V)` for the checker.
//!   When the sequence has more queries than blocks, the accelerator runs
//!   multiple passes, re-streaming K/V (exactly the schedule of Fig. 2).
//! * **Faults** — a [`Fault`](fault::Fault) flips one bit of one register
//!   at one cycle. Every storage bit is enumerable
//!   ([`storage::StorageMap`]) so campaigns can sample uniformly over
//!   bits, matching the paper's §IV-B methodology.
//! * **Cost** — an analytical area/power model ([`area`], [`power`],
//!   [`components`]) with per-component 28 nm-style relative costs. The
//!   checker *share* — the number the paper reports — is computed from
//!   structural component counts, not hard-coded.
//!
//! ## Precision policy
//!
//! Register widths are configurable per register class
//! ([`config::PrecisionPolicy`]). The default matches the paper's stated
//! design (BF16 datapath operands, double-precision checksum
//! accumulators) with wide output/ℓ accumulators — required for the
//! paper's 10⁻⁶ fault-free bound to hold; the narrow-accumulator ablation
//! is available as [`config::PrecisionPolicy::narrow`].
//!
//! # Example
//!
//! ```
//! use fa_tensor::{Matrix, random::ElementDist};
//! use fa_numerics::BF16;
//! use fa_accel_sim::{Accelerator, config::AcceleratorConfig};
//!
//! let cfg = AcceleratorConfig::new(4, 8); // 4 parallel queries, d=8
//! let accel = Accelerator::new(cfg);
//! let q = Matrix::<BF16>::random_seeded(8, 8, ElementDist::default(), 1);
//! let k = Matrix::<BF16>::random_seeded(8, 8, ElementDist::default(), 2);
//! let v = Matrix::<BF16>::random_seeded(8, 8, ElementDist::default(), 3);
//! let run = accel.run(&q, &k, &v);
//! assert!((run.predicted - run.actual).abs() < 1e-6, "fault-free check holds");
//! ```

pub mod activity;
pub mod area;
pub mod components;
pub mod config;
pub mod fault;
pub mod power;
pub mod register;
pub mod storage;
pub mod trace;

mod accelerator;
pub mod block;

pub use accelerator::{run_multihead, Accelerator, RunResult};
pub use block::{BlockResult, CycleEvent};
pub use register::{RegWidth, Register};
