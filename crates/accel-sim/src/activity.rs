//! Workload-measured switching activity.
//!
//! The paper derives power from real switching activity ("switching
//! activity was derived by running attention kernels for various Large
//! Language Models and benchmarks from PromptBench", §IV-A). The static
//! `PowerReport` assumes every unit toggles
//! every cycle; this module measures how often the datapath actually
//! works from a simulated run and scales the energy terms accordingly:
//!
//! * the **rescale path** (the `e^{m_{i−1}−m_i}` multipliers on every
//!   output/checksum lane) only does work on cycles where the running
//!   maximum changes — typically a small fraction once the max settles;
//! * the incoming-weight multipliers always fire, but with operand
//!   magnitudes distributed like softmax weights.

use crate::block::{BlockObserver, CycleEvent};
use crate::components::ComponentCosts;
use crate::config::AcceleratorConfig;
use crate::power::PowerReport;
use fa_numerics::BF16;
use fa_tensor::Matrix;

/// Activity factors measured from a workload run (all in `[0, 1]`).
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ActivityProfile {
    /// Fraction of streaming cycles on which the running max changed
    /// (the rescale multipliers do real work only then; otherwise the
    /// factor is exactly 1 and the multiplier's output doesn't toggle).
    pub rescale_active: f64,
    /// Mean incoming weight `e^{s−m}` — a proxy for value-path operand
    /// toggle rates (tiny weights keep product bits mostly zero).
    pub mean_weight: f64,
    /// Cycles observed.
    pub cycles: u64,
}

/// Observer that accumulates activity statistics.
#[derive(Clone, Debug, Default)]
struct ActivityObserver {
    cycles: u64,
    max_updates: u64,
    weight_sum: f64,
    last_max: f64,
}

impl BlockObserver for ActivityObserver {
    fn on_cycle(&mut self, event: &CycleEvent) {
        if self.cycles == 0 || event.max_score != self.last_max {
            self.max_updates += 1;
            self.last_max = event.max_score;
        }
        self.weight_sum += event.weight_new.clamp(0.0, 1.0);
        self.cycles += 1;
    }
}

/// Measures switching activity by running every query of a workload
/// through the block datapath.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn measure_activity(
    cfg: &AcceleratorConfig,
    q: &Matrix<BF16>,
    k: &Matrix<BF16>,
    v: &Matrix<BF16>,
) -> ActivityProfile {
    cfg.attention.validate_shapes(q, k, v);
    let sumrows = v.row_sums();
    let mut obs = ActivityObserver::default();
    for qi in 0..q.rows() {
        // Each query starts a fresh max sequence.
        obs.last_max = f64::NEG_INFINITY;
        let before = obs.cycles;
        crate::block::simulate_block_pass_observed(cfg, q.row(qi), k, v, &sumrows, &[], &mut obs);
        debug_assert_eq!(obs.cycles - before, k.rows() as u64);
    }
    ActivityProfile {
        rescale_active: obs.max_updates as f64 / obs.cycles.max(1) as f64,
        mean_weight: obs.weight_sum / obs.cycles.max(1) as f64,
        cycles: obs.cycles,
    }
}

/// Scales a static [`PowerReport`] by measured activity: the rescale
/// multipliers (half the output-update multiplier energy, and half the
/// checksum MAC) are gated by `rescale_active`; value-path multiplier
/// energy scales with operand activity (bounded below at 30 % for
/// clock/control overhead that toggles regardless).
pub fn activity_scaled_power(
    report: &PowerReport,
    profile: &ActivityProfile,
    costs: &ComponentCosts,
) -> PowerReport {
    let _ = costs;
    let gate = |fraction_rescale: f64, energy: f64| -> f64 {
        // Half the multiplier energy sits on the rescale path.
        let rescale_part = energy * fraction_rescale;
        let value_part = energy * (1.0 - fraction_rescale);
        rescale_part * profile.rescale_active.max(0.05)
            + value_part * (0.3 + 0.7 * profile.mean_weight)
    };
    PowerReport {
        parallel_queries: report.parallel_queries,
        head_dim: report.head_dim,
        kernel_energy_per_cycle: gate(0.5, report.kernel_energy_per_cycle),
        checker_energy_per_cycle: gate(0.5, report.checker_energy_per_cycle),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_tensor::random::ElementDist;

    fn workload(n: usize, d: usize) -> (Matrix<BF16>, Matrix<BF16>, Matrix<BF16>) {
        (
            Matrix::random_seeded(n, d, ElementDist::default(), 1),
            Matrix::random_seeded(n, d, ElementDist::default(), 2),
            Matrix::random_seeded(n, d, ElementDist::default(), 3),
        )
    }

    #[test]
    fn activity_is_bounded_and_plausible() {
        let cfg = AcceleratorConfig::new(4, 8);
        let (q, k, v) = workload(16, 8);
        let profile = measure_activity(&cfg, &q, &k, &v);
        assert_eq!(profile.cycles, 16 * 16);
        assert!(profile.rescale_active > 0.0 && profile.rescale_active <= 1.0);
        assert!(profile.mean_weight > 0.0 && profile.mean_weight <= 1.0);
        // With random scores, the running max follows the record-value
        // law: E[#records over n draws] = H_n ≈ ln n, so the active
        // fraction must be well below 1 for n=16 (H_16/16 ≈ 0.21).
        assert!(
            profile.rescale_active < 0.6,
            "rescale fraction {} should reflect record statistics",
            profile.rescale_active
        );
    }

    #[test]
    fn sorted_keys_maximize_rescale_activity() {
        // Keys engineered so scores strictly increase: every cycle is a
        // record and the rescale path never idles.
        let cfg = AcceleratorConfig::new(1, 2);
        let q = Matrix::from_fn(1, 2, |_, _| BF16::from_f32(1.0));
        let k = Matrix::from_fn(12, 2, |r, _| BF16::from_f32(0.25 * (r as f32 + 1.0)));
        let v = Matrix::from_fn(12, 2, |_, _| BF16::from_f32(0.5));
        let profile = measure_activity(&cfg, &q, &k, &v);
        assert_eq!(profile.rescale_active, 1.0);
    }

    #[test]
    fn activity_scaling_reduces_power_but_preserves_positive_share() {
        let cfg = AcceleratorConfig::new(16, 128);
        let (q, k, v) = workload(32, 128);
        let profile = measure_activity(&cfg, &q, &k, &v);
        let costs = ComponentCosts::default();
        let static_report = PowerReport::compute(16, 128, 256, &costs);
        let scaled = activity_scaled_power(&static_report, &profile, &costs);
        assert!(scaled.total_energy_per_cycle() < static_report.total_energy_per_cycle());
        assert!(scaled.checker_share() > 0.0 && scaled.checker_share() < 0.1);
    }

    #[test]
    fn activity_share_stays_in_paper_band() {
        // The checker share must remain ~1-2% after activity scaling —
        // the paper's power numbers come from activity-based estimation.
        let cfg = AcceleratorConfig::new(16, 128);
        let (q, k, v) = workload(64, 128);
        let profile = measure_activity(&cfg, &q, &k, &v);
        let costs = ComponentCosts::default();
        let scaled = activity_scaled_power(
            &PowerReport::compute(16, 128, 256, &costs),
            &profile,
            &costs,
        );
        assert!(
            scaled.checker_share() > 0.005 && scaled.checker_share() < 0.04,
            "share {}",
            scaled.checker_share()
        );
    }
}
