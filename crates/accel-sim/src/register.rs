//! Bit-accurate storage elements.
//!
//! Every named register in the simulated accelerator stores a raw bit
//! pattern in its physical width. Reads decode to `f64` for the value
//! pipeline; writes encode (and therefore **round**) to the register's
//! format. Fault injection flips stored bits directly, so a flipped
//! pattern decodes to exactly the value the corresponding hardware
//! register would hold.

use fa_numerics::BF16;

/// Physical width/format of a register.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum RegWidth {
    /// 16-bit BFloat16.
    Bf16,
    /// 32-bit IEEE binary32.
    F32,
    /// 64-bit IEEE binary64.
    F64,
}

impl RegWidth {
    /// Number of stored bits.
    #[inline]
    pub const fn bits(self) -> u32 {
        match self {
            RegWidth::Bf16 => 16,
            RegWidth::F32 => 32,
            RegWidth::F64 => 64,
        }
    }
}

/// One bit-accurate storage element.
///
/// ```
/// use fa_accel_sim::{Register, RegWidth};
///
/// let mut r = Register::new(RegWidth::Bf16);
/// r.write(1.0);
/// assert_eq!(r.read(), 1.0);
/// r.flip_bit(15); // sign bit
/// assert_eq!(r.read(), -1.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Register {
    bits: u64,
    width: RegWidth,
}

impl Register {
    /// Creates a register holding +0.0.
    pub fn new(width: RegWidth) -> Self {
        Register { bits: 0, width }
    }

    /// Creates a register holding the encoding of `value`.
    pub fn with_value(width: RegWidth, value: f64) -> Self {
        let mut r = Register::new(width);
        r.write(value);
        r
    }

    /// The register's width.
    #[inline]
    pub fn width(&self) -> RegWidth {
        self.width
    }

    /// The raw stored bits (low `width.bits()` bits are meaningful).
    #[inline]
    pub fn raw_bits(&self) -> u64 {
        self.bits
    }

    /// Decodes the stored pattern to `f64` (exact for all three formats).
    #[inline]
    pub fn read(&self) -> f64 {
        match self.width {
            RegWidth::Bf16 => BF16::from_bits(self.bits as u16).to_f64(),
            RegWidth::F32 => f32::from_bits(self.bits as u32) as f64,
            RegWidth::F64 => f64::from_bits(self.bits),
        }
    }

    /// Encodes `value` into the register, rounding to the format. This is
    /// where narrow accumulators lose precision, bit-for-bit as hardware
    /// would.
    #[inline]
    pub fn write(&mut self, value: f64) {
        self.bits = match self.width {
            RegWidth::Bf16 => BF16::from_f64(value).to_bits() as u64,
            RegWidth::F32 => (value as f32).to_bits() as u64,
            RegWidth::F64 => value.to_bits(),
        };
    }

    /// Flips stored bit `bit` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= self.width().bits()`.
    #[inline]
    pub fn flip_bit(&mut self, bit: u32) {
        assert!(
            bit < self.width.bits(),
            "bit {bit} out of range for {:?} register",
            self.width
        );
        self.bits ^= 1u64 << bit;
    }

    /// Whether the stored value is NaN.
    pub fn is_nan(&self) -> bool {
        self.read().is_nan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_bits() {
        assert_eq!(RegWidth::Bf16.bits(), 16);
        assert_eq!(RegWidth::F32.bits(), 32);
        assert_eq!(RegWidth::F64.bits(), 64);
    }

    #[test]
    fn f64_register_is_exact() {
        let mut r = Register::new(RegWidth::F64);
        r.write(0.1);
        assert_eq!(r.read(), 0.1);
        r.write(f64::NEG_INFINITY);
        assert_eq!(r.read(), f64::NEG_INFINITY);
    }

    #[test]
    fn bf16_register_rounds_on_write() {
        let mut r = Register::new(RegWidth::Bf16);
        r.write(1.001);
        // 1.001 is not representable in BF16: rounds to 1.0.
        assert_eq!(r.read(), 1.0);
        r.write(0.1);
        assert!((r.read() - 0.1).abs() < 1e-3);
        assert_ne!(r.read(), 0.1);
    }

    #[test]
    fn f32_register_rounds_on_write() {
        let mut r = Register::new(RegWidth::F32);
        r.write(0.1);
        assert_eq!(r.read(), 0.1f32 as f64);
    }

    #[test]
    fn flip_bit_roundtrip() {
        for width in [RegWidth::Bf16, RegWidth::F32, RegWidth::F64] {
            let mut r = Register::with_value(width, 1.5);
            let before = r.read();
            for bit in [0, width.bits() - 1] {
                r.flip_bit(bit);
                assert_ne!(r.read().to_bits(), before.to_bits());
                r.flip_bit(bit);
                assert_eq!(r.read(), before);
            }
        }
    }

    #[test]
    fn sign_bit_flip_negates() {
        let mut r = Register::with_value(RegWidth::F32, 2.5);
        r.flip_bit(31);
        assert_eq!(r.read(), -2.5);
        let mut r = Register::with_value(RegWidth::Bf16, 2.5);
        r.flip_bit(15);
        assert_eq!(r.read(), -2.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_out_of_range_panics() {
        let mut r = Register::new(RegWidth::Bf16);
        r.flip_bit(16);
    }

    #[test]
    fn exponent_flip_can_produce_nan_or_inf() {
        // BF16 value just below the NaN boundary: flipping an exponent bit
        // of MAX gives inf-class patterns.
        let mut r = Register::new(RegWidth::Bf16);
        r.write(f64::INFINITY);
        assert!(r.read().is_infinite());
        r.flip_bit(0); // inf mantissa +1 => NaN
        assert!(r.is_nan());
    }

    #[test]
    fn with_value_constructor() {
        let r = Register::with_value(RegWidth::F64, -7.25);
        assert_eq!(r.read(), -7.25);
    }
}
