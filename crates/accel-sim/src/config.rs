//! Accelerator configuration: geometry and register precision policy.

use crate::register::RegWidth;
use fa_attention::AttentionConfig;

/// Which exponential implementation the datapath uses (see
/// `fa_numerics::exp`). All three are coherent between the output and
/// checksum lanes (the same unit feeds both), so checker behaviour is
/// identical; only absolute output accuracy differs — an ablation the
/// test-suite pins down.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ExpUnitKind {
    /// Reference libm `exp` (default).
    #[default]
    Libm,
    /// Range-reduced degree-9 polynomial (HLS-style shared FP pipeline).
    Poly,
    /// Dual 64-entry LUT with degree-2 residual polynomial.
    Table,
}

impl ExpUnitKind {
    /// Evaluates e^x with the selected unit.
    #[inline]
    pub fn eval(self, x: f64) -> f64 {
        use fa_numerics::exp::{ExpUnit, PolyExp, TableExp};
        match self {
            ExpUnitKind::Libm => x.exp(),
            ExpUnitKind::Poly => PolyExp::new().eval(x),
            ExpUnitKind::Table => {
                thread_local! {
                    static TABLE: TableExp = TableExp::new();
                }
                TABLE.with(|t| t.eval(x))
            }
        }
    }
}

/// Per-register-class width assignment.
///
/// The paper states: operands in BFloat16, "all checksum accumulators ...
/// built with double-precision floats" (§IV-A). It is silent on the width
/// of the output/ℓ accumulators; for the stated 10⁻⁶ fault-free bound to
/// hold they must be wide (see DESIGN.md "Numerics & fault semantics"),
/// which [`PrecisionPolicy::paper`] adopts. [`PrecisionPolicy::narrow`]
/// makes every kernel register BF16 — the ablation showing why narrow
/// accumulators break the absolute threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PrecisionPolicy {
    /// Query vector registers (loaded from BF16 memory).
    pub query: RegWidth,
    /// Output accumulator registers `o`.
    pub output: RegWidth,
    /// Running-maximum register `m`.
    pub max_score: RegWidth,
    /// Sum-of-exponentials register `ℓ`.
    pub sum_exp: RegWidth,
    /// Per-query checksum register `c` (checker).
    pub check: RegWidth,
    /// Shared `sumrow_i(V)` pipeline register (checker).
    pub sumrow: RegWidth,
    /// Global checksum accumulator (checker).
    pub global: RegWidth,
}

impl PrecisionPolicy {
    /// The paper-faithful policy: BF16 query registers, wide (f64)
    /// kernel accumulators, double-precision checksum state.
    pub const fn paper() -> Self {
        PrecisionPolicy {
            query: RegWidth::Bf16,
            output: RegWidth::F64,
            max_score: RegWidth::F64,
            sum_exp: RegWidth::F64,
            check: RegWidth::F64,
            sumrow: RegWidth::F64,
            global: RegWidth::F64,
        }
    }

    /// Narrow ablation: every kernel register BF16 (checksum state stays
    /// f64 as the paper requires). Fault-free residuals balloon to BF16
    /// format noise — the threshold-sweep experiment quantifies it.
    pub const fn narrow() -> Self {
        PrecisionPolicy {
            query: RegWidth::Bf16,
            output: RegWidth::Bf16,
            max_score: RegWidth::Bf16,
            sum_exp: RegWidth::F64,
            check: RegWidth::F64,
            sumrow: RegWidth::F64,
            global: RegWidth::F64,
        }
    }

    /// Intermediate policy: f32 kernel accumulators.
    pub const fn f32_accumulators() -> Self {
        PrecisionPolicy {
            query: RegWidth::Bf16,
            output: RegWidth::F32,
            max_score: RegWidth::F32,
            sum_exp: RegWidth::F32,
            check: RegWidth::F64,
            sumrow: RegWidth::F64,
            global: RegWidth::F64,
        }
    }
}

impl Default for PrecisionPolicy {
    fn default() -> Self {
        Self::paper()
    }
}

/// Full accelerator configuration.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AcceleratorConfig {
    /// Number of query vectors served in parallel (16 or 32 in the paper).
    pub parallel_queries: usize,
    /// Attention kernel configuration (head dimension, scaling).
    pub attention: AttentionConfig,
    /// Register precision policy.
    pub precision: PrecisionPolicy,
    /// Whether the Flash-ABFT checker hardware is instantiated. Disabling
    /// it models the baseline accelerator for overhead comparisons.
    pub checker_enabled: bool,
    /// Epilogue cycles per pass (division + global accumulation).
    pub epilogue_cycles: u64,
    /// Exponential unit implementation.
    pub exp_unit: ExpUnitKind,
}

impl AcceleratorConfig {
    /// Creates a configuration with the defaults: standard 1/√d-scaled
    /// attention, paper precision policy, checker enabled, two epilogue
    /// cycles.
    ///
    /// # Panics
    ///
    /// Panics if `parallel_queries == 0` or `head_dim == 0`.
    pub fn new(parallel_queries: usize, head_dim: usize) -> Self {
        assert!(parallel_queries > 0, "parallel_queries must be positive");
        AcceleratorConfig {
            parallel_queries,
            attention: AttentionConfig::new(head_dim),
            precision: PrecisionPolicy::paper(),
            checker_enabled: true,
            epilogue_cycles: 2,
            exp_unit: ExpUnitKind::Libm,
        }
    }

    /// Overrides the attention configuration.
    pub fn with_attention(mut self, attention: AttentionConfig) -> Self {
        self.attention = attention;
        self
    }

    /// Overrides the precision policy.
    pub fn with_precision(mut self, precision: PrecisionPolicy) -> Self {
        self.precision = precision;
        self
    }

    /// Enables or disables the checker hardware.
    pub fn with_checker(mut self, enabled: bool) -> Self {
        self.checker_enabled = enabled;
        self
    }

    /// Selects the exponential unit implementation.
    pub fn with_exp_unit(mut self, exp_unit: ExpUnitKind) -> Self {
        self.exp_unit = exp_unit;
        self
    }

    /// Head dimension shortcut.
    pub fn head_dim(&self) -> usize {
        self.attention.head_dim()
    }

    /// Number of passes needed to serve `n_queries`.
    pub fn passes(&self, n_queries: usize) -> usize {
        n_queries.div_ceil(self.parallel_queries)
    }

    /// Cycles per pass for a sequence of `n_keys` keys: one streaming
    /// cycle per key plus the epilogue.
    pub fn cycles_per_pass(&self, n_keys: usize) -> u64 {
        n_keys as u64 + self.epilogue_cycles
    }

    /// Total cycles to compute attention for `n_queries` × `n_keys`.
    pub fn total_cycles(&self, n_queries: usize, n_keys: usize) -> u64 {
        self.passes(n_queries) as u64 * self.cycles_per_pass(n_keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_policy_widths() {
        let p = PrecisionPolicy::paper();
        assert_eq!(p.query, RegWidth::Bf16);
        assert_eq!(p.output, RegWidth::F64);
        assert_eq!(p.check, RegWidth::F64);
        assert_eq!(PrecisionPolicy::default(), p);
    }

    #[test]
    fn narrow_policy_is_bf16_kernel() {
        let p = PrecisionPolicy::narrow();
        assert_eq!(p.output, RegWidth::Bf16);
        assert_eq!(p.max_score, RegWidth::Bf16);
        assert_eq!(p.check, RegWidth::F64, "checksum stays f64 per the paper");
    }

    #[test]
    fn pass_and_cycle_arithmetic() {
        let cfg = AcceleratorConfig::new(16, 128);
        assert_eq!(cfg.passes(256), 16);
        assert_eq!(cfg.passes(250), 16, "partial final pass");
        assert_eq!(cfg.passes(16), 1);
        assert_eq!(cfg.cycles_per_pass(256), 258);
        assert_eq!(cfg.total_cycles(256, 256), 16 * 258);
    }

    #[test]
    fn builders() {
        let cfg = AcceleratorConfig::new(4, 8)
            .with_checker(false)
            .with_precision(PrecisionPolicy::narrow());
        assert!(!cfg.checker_enabled);
        assert_eq!(cfg.precision, PrecisionPolicy::narrow());
        assert_eq!(cfg.head_dim(), 8);
    }

    #[test]
    #[should_panic(expected = "parallel_queries must be positive")]
    fn zero_blocks_panics() {
        let _ = AcceleratorConfig::new(0, 8);
    }
}
