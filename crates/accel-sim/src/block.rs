//! One query block of the accelerator (Fig. 2/3): the per-query datapath.
//!
//! A block holds one query vector and processes one key/value row per
//! cycle, maintaining the output accumulator, running max `m`, sum of
//! exponentials `ℓ` and — when the checker is instantiated — the per-query
//! checksum `c` as the extra lane of the merged Eq. 9/10 update.
//!
//! Per-cycle semantics (hardware-plausible, used consistently by the fault
//! model): fault flips apply at the **start** of a cycle; reads happen
//! during the cycle; writes commit at the end. A fault therefore corrupts
//! the very cycle it lands in plus everything downstream, while a fault to
//! a register that is rewritten later in the same pass survives only
//! through the dataflow.

use crate::config::AcceleratorConfig;
use crate::register::Register;
use fa_numerics::BF16;
use fa_tensor::Matrix;

/// Which block-private register a fault targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum BlockRegKind {
    /// Query vector element.
    Query,
    /// Output accumulator element.
    Output,
    /// Running-maximum register.
    MaxScore,
    /// Sum-of-exponentials register.
    SumExp,
    /// Per-query checksum register (checker).
    Check,
}

/// A fault localized to one block within one pass.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BlockFault {
    /// In-pass cycle (0..n_keys = streaming, n_keys = divide epilogue).
    pub in_pass_cycle: u64,
    /// Which register class.
    pub kind: BlockRegKind,
    /// Lane for vector registers (ignored for scalars).
    pub lane: usize,
    /// Bit to flip.
    pub bit: u32,
}

/// Result of one block processing one pass.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockResult {
    /// Division results `o_N/ℓ_N` before writeback rounding — the values
    /// the checker's output-sum unit taps.
    pub pre_round_output: Vec<f64>,
    /// The written-back attention row (rounded to BF16).
    pub output: Vec<BF16>,
    /// The per-query check `c_N/ℓ_N` (Alg. 3 line 10); 0 when the checker
    /// is disabled.
    pub check_q: f64,
    /// Sum of `pre_round_output` (this query's contribution to the actual
    /// checksum).
    pub row_sum: f64,
}

/// Per-cycle observation of the block datapath, delivered to a
/// [`BlockObserver`] after the cycle's writes commit.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CycleEvent {
    /// In-pass cycle index.
    pub cycle: u64,
    /// The score `s_t` computed this cycle.
    pub score: f64,
    /// The running maximum after the update.
    pub max_score: f64,
    /// The rescale factor `e^{m_{t−1}−m_t}` applied to accumulators.
    pub scale_old: f64,
    /// The weight `e^{s_t−m_t}` of the incoming value row.
    pub weight_new: f64,
    /// The sum of exponentials after the update.
    pub sum_exp: f64,
    /// The checksum lane after the update (0 with checker disabled).
    pub check: f64,
    /// Sum of the output lanes after the update (for invariant checks).
    pub output_sum: f64,
}

/// Receives per-cycle events from [`simulate_block_pass_observed`].
/// The no-op implementation compiles away in the campaign hot path.
pub trait BlockObserver {
    /// Whether this observer consumes events; `false` lets the compiler
    /// remove event construction (including the O(d) output sum) from
    /// the campaign hot path entirely.
    const ACTIVE: bool = true;

    /// Called once per streaming cycle after writes commit.
    fn on_cycle(&mut self, event: &CycleEvent);
}

/// The no-op observer used by [`simulate_block_pass`].
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl BlockObserver for NullObserver {
    const ACTIVE: bool = false;

    #[inline]
    fn on_cycle(&mut self, _event: &CycleEvent) {}
}

/// Simulates one block for one pass.
///
/// `sumrows` holds the (possibly fault-corrupted) shared `sumrow_i(V)`
/// value for each streaming cycle. `faults` lists this block's private
/// faults mapped to in-pass cycles; faults with `in_pass_cycle` past the
/// divide epilogue hit dead registers and are ignored (masked).
///
/// # Panics
///
/// Panics on shape mismatch between `q_row`, `k`, `v` and the config.
pub fn simulate_block_pass(
    cfg: &AcceleratorConfig,
    q_row: &[BF16],
    k: &Matrix<BF16>,
    v: &Matrix<BF16>,
    sumrows: &[f64],
    faults: &[BlockFault],
) -> BlockResult {
    simulate_block_pass_observed(cfg, q_row, k, v, sumrows, faults, &mut NullObserver)
}

/// [`simulate_block_pass`] with a per-cycle observer (used by the trace
/// module and the invariant test-suites).
///
/// # Panics
///
/// Panics on shape mismatch between `q_row`, `k`, `v` and the config.
pub fn simulate_block_pass_observed<O: BlockObserver>(
    cfg: &AcceleratorConfig,
    q_row: &[BF16],
    k: &Matrix<BF16>,
    v: &Matrix<BF16>,
    sumrows: &[f64],
    faults: &[BlockFault],
    observer: &mut O,
) -> BlockResult {
    let d = cfg.head_dim();
    assert_eq!(q_row.len(), d, "query row length mismatch");
    assert_eq!(k.cols(), d, "key width mismatch");
    assert_eq!(v.cols(), d, "value width mismatch");
    assert_eq!(k.rows(), v.rows(), "K/V row count mismatch");
    assert_eq!(sumrows.len(), k.rows(), "sumrow per key row required");
    let n = k.rows() as u64;
    let p = cfg.precision;

    // Register file.
    let mut q_regs: Vec<Register> = q_row
        .iter()
        .map(|x| Register::with_value(p.query, x.to_f64()))
        .collect();
    let mut o_regs: Vec<Register> = (0..d).map(|_| Register::new(p.output)).collect();
    let mut m_reg = Register::with_value(p.max_score, f64::NEG_INFINITY);
    let mut l_reg = Register::new(p.sum_exp);
    let mut c_reg = Register::new(p.check);

    let apply_faults = |cycle: u64,
                        q_regs: &mut [Register],
                        o_regs: &mut [Register],
                        m_reg: &mut Register,
                        l_reg: &mut Register,
                        c_reg: &mut Register| {
        for f in faults.iter().filter(|f| f.in_pass_cycle == cycle) {
            match f.kind {
                BlockRegKind::Query => q_regs[f.lane].flip_bit(f.bit),
                BlockRegKind::Output => o_regs[f.lane].flip_bit(f.bit),
                BlockRegKind::MaxScore => m_reg.flip_bit(f.bit),
                BlockRegKind::SumExp => l_reg.flip_bit(f.bit),
                BlockRegKind::Check => {
                    if cfg.checker_enabled {
                        c_reg.flip_bit(f.bit);
                    }
                }
            }
        }
    };

    for t in 0..n {
        apply_faults(
            t,
            &mut q_regs,
            &mut o_regs,
            &mut m_reg,
            &mut l_reg,
            &mut c_reg,
        );
        let ti = t as usize;

        // Score: dot(q, k_t) · scale, accumulated in the (wide) MAC pipeline.
        let mut s = 0.0f64;
        let k_row = k.row(ti);
        for (qr, kx) in q_regs.iter().zip(k_row) {
            s += qr.read() * kx.to_f64();
        }
        s *= cfg.attention.scale();

        // Max update. Hardware comparator: selects s only when s > m
        // (false for NaN operands, so a NaN max sticks).
        let m_old = m_reg.read();
        let new_m = if s > m_old { s } else { m_old };
        let scale_old = if m_old == f64::NEG_INFINITY {
            0.0
        } else {
            cfg.exp_unit.eval(m_old - new_m)
        };
        let w = cfg.exp_unit.eval(s - new_m);

        // Merged Eq. 9/10 update: output lanes + checksum lane.
        let v_row = v.row(ti);
        for (or, vx) in o_regs.iter_mut().zip(v_row) {
            let updated = or.read() * scale_old + vx.to_f64() * w;
            or.write(updated);
        }
        if cfg.checker_enabled {
            c_reg.write(c_reg.read() * scale_old + sumrows[ti] * w);
        }
        l_reg.write(l_reg.read() * scale_old + w);
        m_reg.write(new_m);

        if O::ACTIVE {
            observer.on_cycle(&CycleEvent {
                cycle: t,
                score: s,
                max_score: new_m,
                scale_old,
                weight_new: w,
                sum_exp: l_reg.read(),
                check: c_reg.read(),
                output_sum: o_regs.iter().map(Register::read).sum(),
            });
        }
    }

    // Divide epilogue (in-pass cycle n).
    apply_faults(
        n,
        &mut q_regs,
        &mut o_regs,
        &mut m_reg,
        &mut l_reg,
        &mut c_reg,
    );
    let l = l_reg.read();
    let mut pre_round_output = Vec::with_capacity(d);
    let mut output = Vec::with_capacity(d);
    let mut row_sum = 0.0f64;
    for or in &o_regs {
        let val = or.read() / l;
        row_sum += val;
        pre_round_output.push(val);
        output.push(BF16::from_f64(val));
    }
    let check_q = if cfg.checker_enabled {
        c_reg.read() / l
    } else {
        0.0
    };

    BlockResult {
        pre_round_output,
        output,
        check_q,
        row_sum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_tensor::random::ElementDist;

    fn setup(
        n: usize,
        d: usize,
        seed: u64,
    ) -> (
        AcceleratorConfig,
        Vec<BF16>,
        Matrix<BF16>,
        Matrix<BF16>,
        Vec<f64>,
    ) {
        let cfg = AcceleratorConfig::new(1, d);
        let q: Matrix<BF16> = Matrix::random_seeded(1, d, ElementDist::default(), seed);
        let k: Matrix<BF16> = Matrix::random_seeded(n, d, ElementDist::default(), seed + 1);
        let v: Matrix<BF16> = Matrix::random_seeded(n, d, ElementDist::default(), seed + 2);
        let sumrows = v.row_sums();
        (cfg, q.row(0).to_vec(), k, v, sumrows)
    }

    #[test]
    fn fault_free_matches_reference_flash2() {
        let (cfg, q_row, k, v, sumrows) = setup(12, 8, 42);
        let result = simulate_block_pass(&cfg, &q_row, &k, &v, &sumrows, &[]);
        // Reference: f64 flash2 on the BF16-rounded inputs.
        let qm = Matrix::from_vec(1, 8, q_row.clone()).to_f64();
        let reference =
            fa_attention::flash2::attention(&qm, &k.to_f64(), &v.to_f64(), &cfg.attention);
        for (j, &val) in result.pre_round_output.iter().enumerate() {
            assert!(
                (val - reference[(0, j)]).abs() < 1e-12,
                "lane {j}: {val} vs {}",
                reference[(0, j)]
            );
        }
    }

    #[test]
    fn fault_free_check_equals_row_sum() {
        let (cfg, q_row, k, v, sumrows) = setup(16, 4, 7);
        let r = simulate_block_pass(&cfg, &q_row, &k, &v, &sumrows, &[]);
        assert!(
            (r.check_q - r.row_sum).abs() < 1e-12,
            "check {} vs row sum {}",
            r.check_q,
            r.row_sum
        );
    }

    #[test]
    fn query_fault_corrupts_output_and_is_visible_in_residual() {
        let (cfg, q_row, k, v, sumrows) = setup(16, 4, 8);
        let clean = simulate_block_pass(&cfg, &q_row, &k, &v, &sumrows, &[]);
        let fault = BlockFault {
            in_pass_cycle: 0,
            kind: BlockRegKind::Query,
            lane: 1,
            bit: 14, // exponent MSB: large value change
        };
        let faulty = simulate_block_pass(&cfg, &q_row, &k, &v, &sumrows, &[fault]);
        assert!(
            (faulty.row_sum - clean.row_sum).abs() > 1e-6 || faulty.row_sum.is_nan(),
            "query fault must corrupt the output"
        );
        // The residual |check - row_sum| exposes it (prediction unaffected
        // by the corrupted query? No: the same corrupted q feeds both
        // paths IDENTICALLY for scores... but the c update uses the same
        // weights, so check and row sum stay consistent!). A query fault
        // at cycle 0 corrupts all scores coherently: check_q still equals
        // the row sum of the *corrupted* attention — both sides move
        // together. Detection of query faults comes from mid-stream
        // injection: see `mid_stream_query_fault_detected`.
        let _ = faulty.check_q;
    }

    #[test]
    fn mid_stream_query_fault_detected() {
        // A query fault at cycle t corrupts scores for keys >= t only.
        // The checksum computed from the earlier (clean) scores no longer
        // matches the output: residual appears.
        let (cfg, q_row, k, v, sumrows) = setup(16, 4, 9);
        let fault = BlockFault {
            in_pass_cycle: 8,
            kind: BlockRegKind::Query,
            lane: 0,
            bit: 13,
        };
        let faulty = simulate_block_pass(&cfg, &q_row, &k, &v, &sumrows, &[fault]);
        // check_q == row_sum is the no-fault invariant; a mid-stream
        // score change keeps them consistent (both derive from the same
        // weights). Query faults are detected at the OUTPUT level against
        // the golden run instead.
        let clean = simulate_block_pass(&cfg, &q_row, &k, &v, &sumrows, &[]);
        assert!((faulty.row_sum - clean.row_sum).abs() > 1e-9 || faulty.row_sum.is_nan());
    }

    #[test]
    fn output_fault_breaks_check_rowsum_invariant() {
        let (cfg, q_row, k, v, sumrows) = setup(16, 4, 10);
        let fault = BlockFault {
            in_pass_cycle: 12,
            kind: BlockRegKind::Output,
            lane: 2,
            bit: 60, // high exponent bit of f64 accumulator
        };
        let faulty = simulate_block_pass(&cfg, &q_row, &k, &v, &sumrows, &[fault]);
        let divergence = (faulty.check_q - faulty.row_sum).abs();
        assert!(
            divergence > 1e-6 || divergence.is_nan(),
            "output fault must break the invariant: {divergence}"
        );
    }

    #[test]
    fn check_register_fault_breaks_invariant_without_corrupting_output() {
        let (cfg, q_row, k, v, sumrows) = setup(16, 4, 11);
        let clean = simulate_block_pass(&cfg, &q_row, &k, &v, &sumrows, &[]);
        let fault = BlockFault {
            in_pass_cycle: 5,
            kind: BlockRegKind::Check,
            lane: 0,
            bit: 55,
        };
        let faulty = simulate_block_pass(&cfg, &q_row, &k, &v, &sumrows, &[fault]);
        // Output untouched...
        for (a, b) in faulty.pre_round_output.iter().zip(&clean.pre_round_output) {
            assert_eq!(a, b);
        }
        // ...but the check moved: a false positive in the making.
        assert!((faulty.check_q - clean.check_q).abs() > 1e-6);
    }

    #[test]
    fn sum_exp_fault_corrupts_both_coherently_or_not() {
        // l divides both output and check: a fault in l changes both by
        // the same factor, so |check − rowsum| stays ~0 — but the output
        // itself is wrong vs golden (detected via output corruption with
        // residual... this is the cancellation-style case the paper
        // searches for and cannot find at the *global* level, because the
        // global comparison is against the independently accumulated
        // OutputSum — both taps sit after the same divider. See the
        // fa-fault classification tests for the full-system behaviour.
        let (cfg, q_row, k, v, sumrows) = setup(16, 4, 12);
        let clean = simulate_block_pass(&cfg, &q_row, &k, &v, &sumrows, &[]);
        let fault = BlockFault {
            in_pass_cycle: 15,
            kind: BlockRegKind::SumExp,
            lane: 0,
            bit: 54,
        };
        let faulty = simulate_block_pass(&cfg, &q_row, &k, &v, &sumrows, &[fault]);
        assert!((faulty.row_sum - clean.row_sum).abs() > 1e-9);
        assert!((faulty.check_q - faulty.row_sum).abs() < 1e-9);
    }

    #[test]
    fn late_epilogue_faults_are_masked() {
        let (cfg, q_row, k, v, sumrows) = setup(8, 4, 13);
        let clean = simulate_block_pass(&cfg, &q_row, &k, &v, &sumrows, &[]);
        let fault = BlockFault {
            in_pass_cycle: 9, // past the divide epilogue (cycle 8)
            kind: BlockRegKind::Output,
            lane: 0,
            bit: 62,
        };
        let faulty = simulate_block_pass(&cfg, &q_row, &k, &v, &sumrows, &[fault]);
        assert_eq!(faulty, clean, "dead-register fault has no effect");
    }

    #[test]
    fn checker_disabled_produces_zero_check() {
        let (mut cfg, q_row, k, v, sumrows) = setup(8, 4, 14);
        cfg.checker_enabled = false;
        let r = simulate_block_pass(&cfg, &q_row, &k, &v, &sumrows, &[]);
        assert_eq!(r.check_q, 0.0);
        assert!(r.row_sum.is_finite());
    }

    #[test]
    fn narrow_policy_changes_numerics() {
        use crate::config::PrecisionPolicy;
        let (cfg, q_row, k, v, sumrows) = setup(32, 8, 15);
        let wide = simulate_block_pass(&cfg, &q_row, &k, &v, &sumrows, &[]);
        let narrow_cfg = cfg.with_precision(PrecisionPolicy::narrow());
        let narrow = simulate_block_pass(&narrow_cfg, &q_row, &k, &v, &sumrows, &[]);
        // BF16 output accumulation: |check − rowsum| is format noise, far
        // above the wide policy's ~1e-13.
        let wide_res = (wide.check_q - wide.row_sum).abs();
        let narrow_res = (narrow.check_q - narrow.row_sum).abs();
        assert!(wide_res < 1e-10);
        assert!(
            narrow_res > wide_res,
            "narrow {narrow_res} vs wide {wide_res}"
        );
    }
}
