//! Cycle-level execution traces.
//!
//! A [`BlockTrace`] records every [`CycleEvent`]
//! of one block-pass, enabling waveform-style debugging of the datapath
//! and strong per-cycle invariant checks (the test-suites assert the
//! Eq. 9 identity `c_t = Σ_j o_t[j]` on *every* cycle, not just at the
//! end).

use crate::block::{BlockObserver, CycleEvent};
use std::fmt;

/// An observer that records all cycle events.
#[derive(Clone, Debug, Default)]
pub struct BlockTrace {
    events: Vec<CycleEvent>,
}

impl BlockTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        BlockTrace { events: Vec::new() }
    }

    /// The recorded events, in cycle order.
    pub fn events(&self) -> &[CycleEvent] {
        &self.events
    }

    /// Number of recorded cycles.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Largest per-cycle violation of the Eq. 9 invariant
    /// `|c_t − Σ_j o_t[j]|`, relative to the output magnitude — ~1e-15
    /// for fault-free wide-accumulator runs, large once a fault lands in
    /// the output or checksum registers.
    pub fn max_invariant_violation(&self) -> f64 {
        self.events
            .iter()
            .map(|e| {
                let scale = e.output_sum.abs().max(1.0);
                (e.check - e.output_sum).abs() / scale
            })
            .fold(0.0, f64::max)
    }

    /// Whether the running maximum was monotone non-decreasing (it must
    /// be in any fault-free execution).
    pub fn max_is_monotone(&self) -> bool {
        self.events
            .windows(2)
            .all(|w| w[1].max_score >= w[0].max_score || w[1].max_score.is_nan())
    }
}

impl BlockObserver for BlockTrace {
    fn on_cycle(&mut self, event: &CycleEvent) {
        self.events.push(*event);
    }
}

impl fmt::Display for BlockTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>5}  {:>12}  {:>12}  {:>10}  {:>10}  {:>12}  {:>12}",
            "cycle", "score", "max", "rescale", "weight", "sum_exp", "check"
        )?;
        for e in &self.events {
            writeln!(
                f,
                "{:>5}  {:>12.5e}  {:>12.5e}  {:>10.4e}  {:>10.4e}  {:>12.5e}  {:>12.5e}",
                e.cycle, e.score, e.max_score, e.scale_old, e.weight_new, e.sum_exp, e.check
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{simulate_block_pass_observed, BlockFault, BlockRegKind};
    use crate::config::AcceleratorConfig;
    use fa_numerics::BF16;
    use fa_tensor::{random::ElementDist, Matrix};

    fn traced_run(faults: &[BlockFault]) -> (BlockTrace, crate::BlockResult) {
        let cfg = AcceleratorConfig::new(1, 8);
        let q: Matrix<BF16> = Matrix::random_seeded(1, 8, ElementDist::default(), 1);
        let k: Matrix<BF16> = Matrix::random_seeded(20, 8, ElementDist::default(), 2);
        let v: Matrix<BF16> = Matrix::random_seeded(20, 8, ElementDist::default(), 3);
        let sumrows = v.row_sums();
        let mut trace = BlockTrace::new();
        let result =
            simulate_block_pass_observed(&cfg, q.row(0), &k, &v, &sumrows, faults, &mut trace);
        (trace, result)
    }

    #[test]
    fn trace_records_every_streaming_cycle() {
        let (trace, _) = traced_run(&[]);
        assert_eq!(trace.len(), 20);
        assert!(!trace.is_empty());
        for (i, e) in trace.events().iter().enumerate() {
            assert_eq!(e.cycle, i as u64);
        }
    }

    #[test]
    fn fault_free_trace_satisfies_invariants() {
        let (trace, _) = traced_run(&[]);
        assert!(trace.max_is_monotone());
        assert!(
            trace.max_invariant_violation() < 1e-12,
            "violation {}",
            trace.max_invariant_violation()
        );
        // Sum of exponentials is positive and non-decreasing only when
        // the max doesn't move; at least it stays positive:
        assert!(trace.events().iter().all(|e| e.sum_exp > 0.0));
        // Weights are probabilities-ish: in (0, 1].
        assert!(trace
            .events()
            .iter()
            .all(|e| e.weight_new > 0.0 && e.weight_new <= 1.0));
    }

    #[test]
    fn output_fault_shows_up_as_invariant_violation_mid_trace() {
        let fault = BlockFault {
            in_pass_cycle: 10,
            kind: BlockRegKind::Output,
            lane: 3,
            bit: 62,
        };
        let (trace, _) = traced_run(&[fault]);
        // Before the fault: clean. After: violated.
        let before: f64 = trace.events()[..10]
            .iter()
            .map(|e| (e.check - e.output_sum).abs())
            .fold(0.0, f64::max);
        let after = trace.events()[10..]
            .iter()
            .map(|e| (e.check - e.output_sum).abs())
            .fold(0.0, f64::max);
        assert!(before < 1e-12, "clean before injection: {before}");
        assert!(after > 1e-6 || after.is_nan(), "violated after: {after}");
        assert!(trace.max_invariant_violation() > 1e-6);
    }

    #[test]
    fn display_renders_rows() {
        let (trace, _) = traced_run(&[]);
        let text = format!("{trace}");
        assert!(text.contains("cycle"));
        assert_eq!(text.lines().count(), 21); // header + 20 cycles
    }
}
