//! Fault descriptions: which bit of which register at which cycle.

/// Address of one named storage element in the accelerator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum RegAddr {
    /// Element `lane` of block `block`'s query vector register.
    Query {
        /// Block index (0..parallel_queries).
        block: usize,
        /// Element index (0..d).
        lane: usize,
    },
    /// Element `lane` of block `block`'s output accumulator.
    Output {
        /// Block index.
        block: usize,
        /// Element index.
        lane: usize,
    },
    /// Block `block`'s running-maximum register `m`.
    MaxScore {
        /// Block index.
        block: usize,
    },
    /// Block `block`'s sum-of-exponentials register `ℓ`.
    SumExp {
        /// Block index.
        block: usize,
    },
    /// Block `block`'s per-query checksum register `c` (checker logic).
    Check {
        /// Block index.
        block: usize,
    },
    /// The shared `sumrow_i(V)` pipeline register (checker logic).
    SumRow,
    /// The global predicted-checksum accumulator (checker logic).
    GlobalCheck,
    /// The actual-output-checksum accumulator (checker logic).
    OutputSum,
}

impl RegAddr {
    /// Whether this register belongs to the checker ("checking logic")
    /// rather than the FlashAttention-2 kernel — the paper's site
    /// attribution for the False Positive category.
    pub fn is_checker(&self) -> bool {
        matches!(
            self,
            RegAddr::Check { .. } | RegAddr::SumRow | RegAddr::GlobalCheck | RegAddr::OutputSum
        )
    }
}

/// One injected fault: flip `bit` of `target` at the start of absolute
/// cycle `cycle`.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fault {
    /// Absolute cycle index (0-based) at which the flip occurs.
    pub cycle: u64,
    /// The storage element hit.
    pub target: RegAddr,
    /// Bit position within the register (0 = LSB).
    pub bit: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checker_attribution() {
        assert!(RegAddr::Check { block: 0 }.is_checker());
        assert!(RegAddr::SumRow.is_checker());
        assert!(RegAddr::GlobalCheck.is_checker());
        assert!(RegAddr::OutputSum.is_checker());
        assert!(!RegAddr::Query { block: 0, lane: 0 }.is_checker());
        assert!(!RegAddr::Output { block: 1, lane: 2 }.is_checker());
        assert!(!RegAddr::MaxScore { block: 0 }.is_checker());
        assert!(!RegAddr::SumExp { block: 0 }.is_checker());
    }

    #[test]
    fn fault_is_plain_copyable_data() {
        let f = Fault {
            cycle: 100,
            target: RegAddr::Output { block: 3, lane: 7 },
            bit: 12,
        };
        let g = f;
        assert_eq!(f, g);
        assert!(!format!("{:?}", f).is_empty());
    }
}
