//! Area model — regenerates the area half of the paper's Fig. 4.

use crate::components::{checker_components, kernel_components, physical, ComponentCosts};

/// Area breakdown for one accelerator configuration.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AreaReport {
    /// Parallel query blocks.
    pub parallel_queries: u64,
    /// Head dimension.
    pub head_dim: u64,
    /// Kernel area in relative units.
    pub kernel_area: f64,
    /// Checker area in relative units.
    pub checker_area: f64,
    /// Whether the sumrow adder tree is shared (Fig. 3) or per-block.
    pub shared_sumrow: bool,
}

impl AreaReport {
    /// Computes the report for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `parallel_queries` or `head_dim` is zero.
    pub fn compute(
        parallel_queries: u64,
        head_dim: u64,
        shared_sumrow: bool,
        costs: &ComponentCosts,
    ) -> Self {
        assert!(
            parallel_queries > 0 && head_dim > 0,
            "geometry must be positive"
        );
        let kernel = kernel_components(parallel_queries, head_dim);
        let checker = checker_components(parallel_queries, head_dim, shared_sumrow);
        AreaReport {
            parallel_queries,
            head_dim,
            kernel_area: kernel.area(costs),
            checker_area: checker.area(costs),
            shared_sumrow,
        }
    }

    /// Total area (kernel + checker) in relative units.
    pub fn total(&self) -> f64 {
        self.kernel_area + self.checker_area
    }

    /// The checker's share of total area — the paper's headline metric
    /// (Fig. 4: ≤5.3 %, average 4.55 % across the 16/32-query designs).
    pub fn checker_share(&self) -> f64 {
        self.checker_area / self.total()
    }

    /// Total area in µm² via the documented 28 nm anchor.
    pub fn total_um2(&self) -> f64 {
        self.total() * physical::UM2_PER_AREA_UNIT
    }

    /// Checker area in µm².
    pub fn checker_um2(&self) -> f64 {
        self.checker_area * physical::UM2_PER_AREA_UNIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(p: u64) -> AreaReport {
        AreaReport::compute(p, 128, true, &ComponentCosts::default())
    }

    #[test]
    fn checker_share_matches_paper_band() {
        // Paper Fig. 4: checker area overhead ≤ 5.3 %, average 4.55 %
        // over the 16- and 32-query designs at d = 128. Our structural
        // model must land in the same band.
        let r16 = report(16);
        let r32 = report(32);
        let avg = (r16.checker_share() + r32.checker_share()) / 2.0;
        assert!(
            r16.checker_share() < 0.08 && r16.checker_share() > 0.02,
            "16q share {}",
            r16.checker_share()
        );
        assert!(avg > 0.02 && avg < 0.07, "average share {avg}");
    }

    #[test]
    fn shared_tree_contributes_less_with_more_blocks() {
        // "Left checksum summation is shared across the blocks, thus
        // making it contribute less to the total area overhead."
        let r16 = report(16);
        let r32 = report(32);
        assert!(
            r32.checker_share() < r16.checker_share(),
            "share must shrink as blocks amortize the shared tree: {} vs {}",
            r32.checker_share(),
            r16.checker_share()
        );
    }

    #[test]
    fn unshared_tree_ablation_costs_more() {
        let shared = report(16);
        let unshared = AreaReport::compute(16, 128, false, &ComponentCosts::default());
        assert!(unshared.checker_area > shared.checker_area);
        assert_eq!(unshared.kernel_area, shared.kernel_area);
    }

    #[test]
    fn kernel_area_doubles_with_blocks() {
        let r16 = report(16);
        let r32 = report(32);
        assert!((r32.kernel_area / r16.kernel_area - 2.0).abs() < 1e-12);
    }

    #[test]
    fn physical_units_are_consistent() {
        let r = report(16);
        assert!((r.total_um2() / r.total() - physical::UM2_PER_AREA_UNIT).abs() < 1e-9);
        assert!(r.checker_um2() < r.total_um2());
    }

    #[test]
    #[should_panic(expected = "geometry must be positive")]
    fn zero_geometry_panics() {
        let _ = AreaReport::compute(0, 128, true, &ComponentCosts::default());
    }
}
