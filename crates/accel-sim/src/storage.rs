//! Storage enumeration for uniform fault sampling.
//!
//! The paper injects each fault into a uniformly random bit of a uniformly
//! random storage element: "Whether a fault will be injected on the
//! FlashAttention-2 hardware or the checker depends on the amount of their
//! storage elements" (§IV-B). [`StorageMap`] enumerates every register
//! with its width so a campaign can sample bits uniformly and report the
//! kernel/checker storage split.

use crate::config::AcceleratorConfig;
use crate::fault::RegAddr;
use crate::register::RegWidth;

/// One enumerable storage element.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StorageEntry {
    /// The register's address.
    pub addr: RegAddr,
    /// Its physical width.
    pub width: RegWidth,
}

/// The complete storage inventory of a configured accelerator.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct StorageMap {
    entries: Vec<StorageEntry>,
    total_bits: u64,
    checker_bits: u64,
}

impl StorageMap {
    /// Enumerates all storage of `cfg` (checker registers included only
    /// when the checker is enabled).
    pub fn new(cfg: &AcceleratorConfig) -> Self {
        let d = cfg.head_dim();
        let p = cfg.precision;
        let mut entries = Vec::new();
        for block in 0..cfg.parallel_queries {
            for lane in 0..d {
                entries.push(StorageEntry {
                    addr: RegAddr::Query { block, lane },
                    width: p.query,
                });
            }
            for lane in 0..d {
                entries.push(StorageEntry {
                    addr: RegAddr::Output { block, lane },
                    width: p.output,
                });
            }
            entries.push(StorageEntry {
                addr: RegAddr::MaxScore { block },
                width: p.max_score,
            });
            entries.push(StorageEntry {
                addr: RegAddr::SumExp { block },
                width: p.sum_exp,
            });
            if cfg.checker_enabled {
                entries.push(StorageEntry {
                    addr: RegAddr::Check { block },
                    width: p.check,
                });
            }
        }
        if cfg.checker_enabled {
            entries.push(StorageEntry {
                addr: RegAddr::SumRow,
                width: p.sumrow,
            });
            entries.push(StorageEntry {
                addr: RegAddr::GlobalCheck,
                width: p.global,
            });
            entries.push(StorageEntry {
                addr: RegAddr::OutputSum,
                width: p.global,
            });
        }
        let total_bits = entries.iter().map(|e| e.width.bits() as u64).sum();
        let checker_bits = entries
            .iter()
            .filter(|e| e.addr.is_checker())
            .map(|e| e.width.bits() as u64)
            .sum();
        StorageMap {
            entries,
            total_bits,
            checker_bits,
        }
    }

    /// All storage entries.
    pub fn entries(&self) -> &[StorageEntry] {
        &self.entries
    }

    /// Total storage bits.
    pub fn total_bits(&self) -> u64 {
        self.total_bits
    }

    /// Storage bits belonging to the checker.
    pub fn checker_bits(&self) -> u64 {
        self.checker_bits
    }

    /// The fraction of storage bits in the checker — the structural
    /// quantity behind the paper's false-positive trend (Table I: FP
    /// shrinks as d grows).
    pub fn checker_bit_fraction(&self) -> f64 {
        self.checker_bits as f64 / self.total_bits as f64
    }

    /// Maps a uniform bit index in `[0, total_bits)` to (register, bit) —
    /// the uniform-over-bits fault sampler.
    ///
    /// # Panics
    ///
    /// Panics if `bit_index >= self.total_bits()`.
    pub fn locate_bit(&self, bit_index: u64) -> (RegAddr, u32) {
        assert!(
            bit_index < self.total_bits,
            "bit index {bit_index} out of {} total bits",
            self.total_bits
        );
        let mut remaining = bit_index;
        for e in &self.entries {
            let w = e.width.bits() as u64;
            if remaining < w {
                return (e.addr, remaining as u32);
            }
            remaining -= w;
        }
        unreachable!("bit index within total_bits must land in an entry");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formula() {
        // With the paper policy: per block 16d (q) + 64d (o) + 64 (m) +
        // 64 (l) + 64 (c); shared: 3×64.
        let cfg = AcceleratorConfig::new(4, 8);
        let map = StorageMap::new(&cfg);
        let per_block = 16 * 8 + 64 * 8 + 64 + 64 + 64;
        assert_eq!(map.total_bits(), 4 * per_block + 3 * 64);
        assert_eq!(map.checker_bits(), 4 * 64 + 3 * 64);
    }

    #[test]
    fn checker_fraction_decreases_with_d() {
        // The structural cause of the paper's FP-vs-d trend.
        let f64_ = |d| StorageMap::new(&AcceleratorConfig::new(16, d)).checker_bit_fraction();
        let fractions: Vec<f64> = [64, 96, 128, 256].into_iter().map(f64_).collect();
        for w in fractions.windows(2) {
            assert!(w[1] < w[0], "fraction must shrink with d: {fractions:?}");
        }
        // Same order of magnitude as Table I's FP rates (0.6%–2.7%).
        assert!(fractions[0] < 0.03 && fractions[3] > 0.001, "{fractions:?}");
    }

    #[test]
    fn disabling_checker_removes_its_storage() {
        let cfg = AcceleratorConfig::new(4, 8).with_checker(false);
        let map = StorageMap::new(&cfg);
        assert_eq!(map.checker_bits(), 0);
        assert!(map.entries().iter().all(|e| !e.addr.is_checker()));
    }

    #[test]
    fn locate_bit_walks_entries() {
        let cfg = AcceleratorConfig::new(2, 4);
        let map = StorageMap::new(&cfg);
        // First entry is Query{0,0}, BF16 (16 bits).
        assert_eq!(map.locate_bit(0), (RegAddr::Query { block: 0, lane: 0 }, 0));
        assert_eq!(
            map.locate_bit(15),
            (RegAddr::Query { block: 0, lane: 0 }, 15)
        );
        assert_eq!(
            map.locate_bit(16),
            (RegAddr::Query { block: 0, lane: 1 }, 0)
        );
        // Last bit belongs to the OutputSum register.
        let (addr, bit) = map.locate_bit(map.total_bits() - 1);
        assert_eq!(addr, RegAddr::OutputSum);
        assert_eq!(bit, 63);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn locate_bit_out_of_range_panics() {
        let map = StorageMap::new(&AcceleratorConfig::new(1, 2));
        let _ = map.locate_bit(map.total_bits());
    }

    #[test]
    fn every_bit_locates_consistently() {
        let cfg = AcceleratorConfig::new(2, 3);
        let map = StorageMap::new(&cfg);
        let mut counts = std::collections::HashMap::new();
        for i in 0..map.total_bits() {
            let (addr, _) = map.locate_bit(i);
            *counts.entry(format!("{addr:?}")).or_insert(0u64) += 1;
        }
        // Each register receives exactly width-many bits.
        for e in map.entries() {
            assert_eq!(counts[&format!("{:?}", e.addr)], e.width.bits() as u64);
        }
    }
}
