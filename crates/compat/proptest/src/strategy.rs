//! The [`Strategy`] trait and combinators.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of a type.
///
/// Object-safe (no shrinking machinery), so strategies can be boxed for
/// heterogeneous unions ([`crate::prop_oneof!`]).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, resampling until `f` accepts (bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Boxes the strategy for storage in heterogeneous collections.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// [`Strategy::prop_filter`] adapter.
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        // Bounded resampling: a filter that rejects everything is a test
        // bug, surfaced as a panic rather than a hang.
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.whence
        )
    }
}

/// Uniform choice between boxed sub-strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union from its arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}
