//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so this crate implements the
//! subset of proptest's API the workspace's property tests use: the
//! [`Strategy`] trait over numeric ranges, tuples, [`collection::vec`],
//! `prop_map`, [`prop_oneof!`], [`any`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assume!`] macros. Cases are generated from a
//! per-test deterministic RNG (seeded from the test name), so failures are
//! reproducible run to run.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! sampled values unreduced) and no persisted failure regressions. Both are
//! debugging conveniences, not soundness properties.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Map, Strategy, Union};

/// Per-test configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Machinery used by the generated test bodies.
pub mod test_runner {
    use super::*;

    /// Deterministic RNG for one property, derived from the test name so
    /// every property explores an independent stream.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen_range(0u8..2) == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen_range(<$ty>::MIN..=<$ty>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy producing arbitrary values of `T`.
pub struct AnyStrategy<T>(core::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;

    /// Acceptable length specifications for [`vec`].
    pub trait IntoVecLen {
        /// Samples a concrete length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoVecLen for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoVecLen for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoVecLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector strategy with the given element strategy and length.
    pub fn vec<S: Strategy, L: IntoVecLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Everything a `use proptest::prelude::*` should bring in.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

/// Defines property tests. Each function body runs `config.cases` times
/// with fresh samples of its `name in strategy` arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::rng_for(stringify!($name));
                for _case in 0..config.cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )*
                    // The closure gives `prop_assume!` an early exit that
                    // skips just this case.
                    (|| { $body })();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics with the condition text).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// A strategy choosing uniformly between the given sub-strategies (all must
/// produce the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ( $( $arm:expr ),+ $(,)? ) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -8.0f64..8.0, n in 1usize..10) {
            prop_assert!((-8.0..8.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn tuples_and_vec(pair in (0u64..5, 0u64..5), v in crate::collection::vec(0u32..100, 7)) {
            prop_assert!(pair.0 < 5 && pair.1 < 5);
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn oneof_picks_either_arm(delta in prop_oneof![0.5f64..1.0, -1.0f64..-0.5]) {
            prop_assert!((0.5..1.0).contains(&delta) || (-1.0..-0.5).contains(&delta));
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn map_and_any(flag in any::<bool>(), doubled in (0u32..8).prop_map(|x| x * 2)) {
            let _: bool = flag;
            prop_assert_eq!(doubled % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::rng_for("some_test");
        let mut b = crate::test_runner::rng_for("some_test");
        let sa = crate::Strategy::sample(&(0.0f64..1.0), &mut a);
        let sb = crate::Strategy::sample(&(0.0f64..1.0), &mut b);
        assert_eq!(sa, sb);
    }
}
