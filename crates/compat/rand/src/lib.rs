//! Offline stand-in for `rand`.
//!
//! The build environment has no network access, so this crate implements the
//! subset of rand's API the workspace uses — `rngs::StdRng` (here
//! xoshiro256**), `SeedableRng::seed_from_u64`, `Rng::gen_range` over
//! integer/float ranges, and `distributions::Distribution` — on top of std
//! only. Streams are deterministic per seed (the reproducibility property
//! every experiment relies on) but are **not** bit-compatible with upstream
//! rand's ChaCha12-based `StdRng`; seeds produce different (equally valid)
//! workloads.

use core::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Samples a value from `distr`.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Lemire-style unbiased-enough bounded integer: maps 64 random bits onto
/// `[0, span)` via a 128-bit multiply (bias < 2⁻⁶⁴·span, irrelevant here).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded_u64(rng, span) as $ty)
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every pattern is valid.
                    return rng.next_u64() as $ty;
                }
                lo.wrapping_add(bounded_u64(rng, span) as $ty)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + unit * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        let v = self.start + unit * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via SplitMix64.
    ///
    /// Fast, equidistributed far beyond this workload's needs, and fully
    /// deterministic per seed.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small RNG is the same generator in this stub.
    pub type SmallRng = StdRng;
}

/// Value distributions.
pub mod distributions {
    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: usize = (0..100)
            .filter(|_| a.gen_range(0u64..1_000_000) == c.gen_range(0u64..1_000_000))
            .count();
        assert!(
            same < 5,
            "different seeds should diverge, {same} collisions"
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3i64..17);
            assert!((-3..17).contains(&x));
            let y = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(g > 0.0 && g < 1.0);
        }
    }

    #[test]
    fn uniform_f64_covers_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        // `Rng + ?Sized` receivers are used throughout the workspace.
        let mut rng = StdRng::seed_from_u64(3);
        fn takes_dyn(r: &mut dyn super::RngCore) -> u64 {
            r.gen_range(0u64..10)
        }
        assert!(takes_dyn(&mut rng) < 10);
    }
}
