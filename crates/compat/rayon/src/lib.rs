//! Offline stand-in for `rayon`.
//!
//! The build environment has no network access, so this crate implements the
//! subset of rayon's API the workspace uses on top of `std::thread::scope`:
//!
//! * [`prelude`] — `into_par_iter()` on `usize` ranges, `par_iter()` /
//!   `par_chunks_mut()` on slices, with `map` / `enumerate` / `for_each` /
//!   `collect` / `reduce` terminals;
//! * [`join`] — two-way fork/join;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — thread-count control
//!   (implemented as a scoped override, which is all the tests need);
//! * [`current_num_threads`].
//!
//! Execution model: terminals split the item list into one contiguous span
//! per worker and run each span on a scoped thread. There is no work
//! stealing; the kernels this workspace parallelizes are uniform across
//! items, where eager contiguous splitting is within noise of a stealing
//! scheduler. Worker threads are flagged so *nested* parallel calls run
//! inline instead of oversubscribing — rayon's pool reuse, approximated.
//!
//! Ordering guarantees match rayon's: `collect` and `reduce` combine span
//! results in item order, so any fold the caller builds from associative
//! operations is deterministic and thread-count-independent.

use std::cell::Cell;

thread_local! {
    /// Set inside worker threads: nested parallel terminals run inline.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
    /// The worker's span index within its parallel terminal (see
    /// [`current_thread_index`]).
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
    /// Per-thread override installed by [`ThreadPool::install`] (0 = none).
    static NUM_THREADS_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Marks the current thread as a pool worker with the given span index.
fn enter_worker(index: usize) {
    IN_POOL.with(|flag| flag.set(true));
    WORKER_INDEX.with(|i| i.set(Some(index)));
}

/// The calling thread's index within the pool, or `None` when called from
/// outside any parallel terminal — rayon's API for "am I already on a
/// worker?". Fork policies use this to route nested parallel calls (which
/// the shim runs inline anyway) straight down their serial path, skipping
/// the parallel entry's item-list materialization.
pub fn current_thread_index() -> Option<usize> {
    WORKER_INDEX.with(|i| i.get())
}

/// Whether the calling thread has an active [`ThreadPool::install`]
/// thread-count override.
///
/// **Shim-only API** (upstream rayon has no equivalent — deliberately):
/// `fa_tensor::par`'s fork policy uses it in a `debug_assert!` to encode
/// the shim's execution model — `install` runs its closure on the
/// *calling* thread, and pool workers are fresh scoped threads that never
/// carry an override, so "worker with an override" is impossible here.
/// Upstream rayon runs `install` closures ON a pool worker, which is
/// exactly the configuration whose silent-serialization hazard the SWAP
/// NOTE in `fa_tensor::par` documents; swapping upstream in without
/// following that note fails at compile time on this symbol instead of
/// silently serializing every `pool.install(..)` call site.
pub fn install_override_active() -> bool {
    NUM_THREADS_OVERRIDE.with(|n| n.get()) > 0
}

/// The number of worker threads a parallel terminal may use.
pub fn current_num_threads() -> usize {
    let overridden = NUM_THREADS_OVERRIDE.with(|n| n.get());
    if overridden > 0 {
        return overridden;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn effective_threads(len: usize) -> usize {
    if IN_POOL.with(|f| f.get()) {
        1
    } else {
        current_num_threads().min(len).max(1)
    }
}

/// Splits `items` into `parts` contiguous spans of near-equal length.
fn partition<I>(mut items: Vec<I>, parts: usize) -> Vec<Vec<I>> {
    let len = items.len();
    let mut spans = Vec::with_capacity(parts);
    let base = len / parts;
    let extra = len % parts;
    // Split from the back so each split_off is O(span).
    let mut sizes: Vec<usize> = (0..parts).map(|i| base + usize::from(i < extra)).collect();
    while let Some(size) = sizes.pop() {
        let tail = items.split_off(items.len() - size);
        spans.push(tail);
    }
    spans.reverse();
    spans
}

/// Runs `f` over every item, producing outputs in item order.
fn run_ordered<I, O, F>(items: Vec<I>, f: &F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let threads = effective_threads(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let spans = partition(items, threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = spans
            .into_iter()
            .enumerate()
            .map(|(idx, span)| {
                scope.spawn(move || {
                    enter_worker(idx);
                    span.into_iter().map(f).collect::<Vec<O>>()
                })
            })
            .collect();
        let mut out = Vec::new();
        for h in handles {
            out.extend(h.join().expect("rayon-shim worker panicked"));
        }
        out
    })
}

/// Runs `f` for every item, discarding outputs.
fn run_for_each<I, F>(items: Vec<I>, f: &F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    let threads = effective_threads(items.len());
    if threads <= 1 {
        items.into_iter().for_each(f);
        return;
    }
    let spans = partition(items, threads);
    std::thread::scope(|scope| {
        for (idx, span) in spans.into_iter().enumerate() {
            scope.spawn(move || {
                enter_worker(idx);
                span.into_iter().for_each(f);
            });
        }
    });
}

/// An eager parallel iterator: a materialized item list plus a composed
/// per-item mapping applied on worker threads.
pub struct ParIter<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I, O, F> ParIter<I, F>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync + Send,
{
    /// Maps each item through `g` (on the worker, composed with prior maps).
    pub fn map<U, G>(self, g: G) -> ParIter<I, impl Fn(I) -> U + Sync + Send>
    where
        G: Fn(O) -> U + Sync + Send,
    {
        let f = self.f;
        ParIter {
            items: self.items,
            f: move |item| g(f(item)),
        }
    }

    /// Pairs each mapped item with its index.
    #[allow(clippy::type_complexity)]
    pub fn enumerate(self) -> ParIter<(usize, I), impl Fn((usize, I)) -> (usize, O) + Sync + Send> {
        let f = self.f;
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
            f: move |(i, item)| (i, f(item)),
        }
    }

    /// Runs `g` on every mapped item across the pool.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(O) + Sync + Send,
    {
        let f = self.f;
        run_for_each(self.items, &move |item| g(f(item)));
    }

    /// Collects mapped items in order.
    pub fn collect<C: FromParIter<O>>(self) -> C {
        C::from_ordered(run_ordered(self.items, &self.f))
    }

    /// Folds mapped items with `op`, seeding every span with `identity()`
    /// and combining span results in item order — deterministic for
    /// associative `op` regardless of thread count.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> O
    where
        ID: Fn() -> O + Sync + Send,
        OP: Fn(O, O) -> O + Sync + Send,
    {
        let threads = effective_threads(self.items.len());
        let f = self.f;
        if threads <= 1 {
            return self.items.into_iter().map(f).fold(identity(), &op);
        }
        let spans = partition(self.items, threads);
        let partials: Vec<O> = std::thread::scope(|scope| {
            let handles: Vec<_> = spans
                .into_iter()
                .enumerate()
                .map(|(idx, span)| {
                    let f = &f;
                    let identity = &identity;
                    let op = &op;
                    scope.spawn(move || {
                        enter_worker(idx);
                        span.into_iter().map(f).fold(identity(), op)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon-shim worker panicked"))
                .collect()
        });
        partials.into_iter().fold(identity(), &op)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Ordered collection target for [`ParIter::collect`].
pub trait FromParIter<O> {
    /// Builds the collection from in-order items.
    fn from_ordered(items: Vec<O>) -> Self;
}

impl<O> FromParIter<O> for Vec<O> {
    fn from_ordered(items: Vec<O>) -> Self {
        items
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Concrete iterator type.
    type Iter;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

macro_rules! impl_range_into_par {
    ($($ty:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$ty> {
            type Item = $ty;
            type Iter = ParIter<$ty, fn($ty) -> $ty>;
            fn into_par_iter(self) -> Self::Iter {
                ParIter { items: self.collect(), f: |x| x }
            }
        }
    )*};
}

impl_range_into_par!(usize, u32, u64);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T, fn(T) -> T>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter {
            items: self,
            f: |x| x,
        }
    }
}

/// Parallel views of shared slices.
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator over `&T`.
    #[allow(clippy::type_complexity)]
    fn par_iter(&self) -> ParIter<&T, fn(&T) -> &T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T, fn(&T) -> &T> {
        ParIter {
            items: self.iter().collect(),
            f: identity_fn_ref,
        }
    }
}

fn identity_fn_ref<T>(x: &T) -> &T {
    x
}

/// Parallel views of mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// A parallel iterator over non-overlapping mutable chunks of
    /// `chunk_size` elements (last chunk may be shorter).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    #[allow(clippy::type_complexity)]
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T], fn(&mut [T]) -> &mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T], fn(&mut [T]) -> &mut [T]> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
            f: identity_fn_mut,
        }
    }
}

fn identity_fn_mut<T>(x: &mut [T]) -> &mut [T] {
    x
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if IN_POOL.with(|f| f.get()) || current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(|| {
            enter_worker(1);
            b()
        });
        let ra = a();
        (ra, hb.join().expect("rayon-shim join worker panicked"))
    })
}

/// Builder mirroring rayon's `ThreadPoolBuilder`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build`] (infallible in the shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with default (auto) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (0 = auto).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A "pool": in the shim, a scoped thread-count override.
#[derive(Clone, Copy, Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count governing any parallel
    /// terminals it executes. The previous override is restored even if
    /// `f` panics (callers like the proptest runner catch unwinds and
    /// keep using the thread).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                NUM_THREADS_OVERRIDE.with(|n| n.set(self.0));
            }
        }
        let _restore = Restore(NUM_THREADS_OVERRIDE.with(|n| n.replace(self.num_threads)));
        f()
    }

    /// The configured thread count (0 = auto).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// The traits a `use rayon::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_writes_disjoint() {
        let mut data = vec![0u64; 64 * 7];
        data.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = (i * 100 + j) as u64;
            }
        });
        for (i, chunk) in data.chunks(7).enumerate() {
            for (j, &x) in chunk.iter().enumerate() {
                assert_eq!(x, (i * 100 + j) as u64);
            }
        }
    }

    #[test]
    fn reduce_is_thread_count_independent_for_associative_ops() {
        let sum = |n: usize| {
            ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap()
                .install(|| {
                    (0..10_000usize)
                        .into_par_iter()
                        .map(|x| x as u64)
                        .reduce(|| 0, |a, b| a + b)
                })
        };
        let expected: u64 = (0..10_000u64).sum();
        for n in [1, 2, 3, 8] {
            assert_eq!(sum(n), expected);
        }
    }

    #[test]
    fn nested_parallelism_runs_inline() {
        // Outer parallel loop; inner loops must not explode thread counts
        // (smoke test: it finishes and results are correct).
        let out: Vec<u64> = (0..16usize)
            .into_par_iter()
            .map(|i| {
                (0..100usize)
                    .into_par_iter()
                    .map(|j| (i * j) as u64)
                    .reduce(|| 0, |a, b| a + b)
            })
            .collect();
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, (0..100).map(|j| (i * j) as u64).sum::<u64>());
        }
    }

    #[test]
    fn install_overrides_and_restores() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn thread_index_is_some_only_inside_workers() {
        assert_eq!(current_thread_index(), None);
        let seen: Vec<bool> = ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| {
                (0..4usize)
                    .into_par_iter()
                    .map(|_| current_thread_index().is_some())
                    .collect()
            });
        assert!(seen.iter().all(|&inside| inside));
        assert_eq!(current_thread_index(), None);
    }

    #[test]
    fn workers_never_carry_install_overrides() {
        // The invariant `fa_tensor::par`'s SWAP NOTE debug_assert encodes:
        // `install` overrides live on the calling thread only; pool
        // workers are fresh scoped threads with no override.
        assert!(!install_override_active());
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            assert!(install_override_active(), "override active on caller");
            let seen: Vec<(bool, bool)> = (0..2usize)
                .into_par_iter()
                .map(|_| (install_override_active(), current_thread_index().is_some()))
                .collect();
            for (override_active, on_worker) in seen {
                assert!(on_worker, "items run on flagged workers");
                assert!(!override_active, "workers never carry install overrides");
            }
        });
        assert!(!install_override_active());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn empty_and_single_item() {
        let v: Vec<u32> = (0..0u32).into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
        let v: Vec<u32> = (0..1u32).into_par_iter().map(|x| x + 5).collect();
        assert_eq!(v, vec![5]);
    }
}
