//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal serde facade (see `crates/compat/serde`). This proc-macro crate
//! provides `#[derive(Serialize)]` / `#[derive(Deserialize)]` producing
//! *opaque* impls: types satisfy the trait bounds but serialize as an
//! unsupported-marker. Nothing in the workspace serializes data today; the
//! derives exist so configuration types keep their serde annotations and can
//! switch to the real serde unchanged once a registry is reachable.
//!
//! Limitation: derived types must be non-generic `struct`s or `enum`s (every
//! annotated type in this workspace is).

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum` keyword, skipping
/// attributes and visibility qualifiers.
fn type_name(input: &TokenStream) -> String {
    let mut iter = input.clone().into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute group that follows `#`.
                let _ = iter.next();
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" {
                    match iter.next() {
                        Some(TokenTree::Ident(name)) => {
                            if let Some(TokenTree::Punct(p)) = iter.peek() {
                                assert!(
                                    p.as_char() != '<',
                                    "offline serde_derive stub supports only non-generic types; \
                                     `{name}` has generic parameters"
                                );
                            }
                            return name.to_string();
                        }
                        other => panic!("expected type name after `{word}`, found {other:?}"),
                    }
                }
                // `pub`, `pub(crate)`, `union`… keep scanning.
            }
            _ => {}
        }
    }
    panic!("offline serde_derive stub: no `struct` or `enum` found in derive input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 serializer.serialize_opaque(::core::any::type_name::<Self>())\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\n\
                 -> ::core::result::Result<Self, D::Error> {{\n\
                 deserializer.deserialize_opaque(::core::any::type_name::<Self>())\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
