//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access, so this crate implements the
//! subset of criterion's API the workspace's benches use: `Criterion`,
//! `benchmark_group` with `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is auto-calibrated to a per-sample
//! batch of iterations (~`TARGET_SAMPLE_TIME`), warmed up, then timed for
//! `sample_size` samples; the *median* per-iteration time is reported to
//! stdout as `group/id ... time: <t>`. No statistical regression analysis,
//! HTML reports, or outlier classification — numbers land on stdout and in
//! `fa-bench`'s JSON reports instead.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export convenience matching criterion's API).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Time budget per measured sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// Ceiling on total per-benchmark measurement time.
const MAX_BENCH_TIME: Duration = Duration::from_secs(3);

/// The benchmark context handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 30,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_benchmark(&id.to_string(), 30, &mut f);
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with an input value under `group/id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id like `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to the closure under test; `iter` does the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    // Calibrate: how many iterations fit the per-sample budget?
    let mut probe = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut probe);
    let single = probe.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample =
        (TARGET_SAMPLE_TIME.as_nanos() / single.as_nanos()).clamp(1, 1_000_000) as u64;

    // Cap total time for very slow benchmarks.
    let per_sample = single * iters_per_sample as u32;
    let affordable = (MAX_BENCH_TIME.as_nanos() / per_sample.as_nanos().max(1)).max(2) as usize;
    let samples = sample_size.min(affordable);

    // Warmup, then measure.
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    let mut b = Bencher {
        iters: iters_per_sample,
        elapsed: Duration::ZERO,
    };
    f(&mut b); // warmup
    for _ in 0..samples {
        f(&mut b);
        times.push(b.elapsed / iters_per_sample as u32);
    }
    times.sort();
    let median = times[times.len() / 2];
    let best = times[0];
    println!(
        "  {label:<48} time: {:>12} (best {:>12}, {} samples x {} iters)",
        format_duration(median),
        format_duration(best),
        samples,
        iters_per_sample
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a bench group function calling each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given bench groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("scale", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 64).to_string(), "f/64");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
