//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so this crate provides just
//! enough of serde's trait surface for the workspace to compile: the
//! `Serialize` / `Deserialize` traits, minimal `Serializer` / `Deserializer`
//! traits, primitive impls, and re-exported derive macros that generate
//! opaque impls (see `serde_derive`). No data format (JSON, bincode, …) is
//! provided — experiment binaries that need machine-readable output write
//! JSON by hand (see `fa-bench`). Swapping in the real serde is a
//! manifest-only change.

pub use serde_derive::{Deserialize, Serialize};

// The derives emit paths through `::serde`; make that name resolve when
// deriving inside this crate's own tests (what upstream serde does too).
#[cfg(test)]
extern crate self as serde;

use core::fmt::{self, Display};

/// Error trait shared by serializers and deserializers.
pub trait Error: Sized + Display {
    /// Builds an error carrying a custom message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value that can be serialized.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A minimal serializer: primitive sinks plus an opaque escape hatch used by
/// the offline derive.
pub trait Serializer: Sized {
    /// Successful result type.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;

    /// Fallback for derived composite types: the offline stub has no
    /// structured formats, so derived impls report themselves here.
    fn serialize_opaque(self, type_name: &'static str) -> Result<Self::Ok, Self::Error> {
        Err(Self::Error::custom(format_args!(
            "offline serde stub cannot serialize composite type {type_name}"
        )))
    }
}

/// A value that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A minimal deserializer: primitive sources plus an opaque escape hatch
/// used by the offline derive.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Deserializes a `bool`.
    fn deserialize_bool(self) -> Result<bool, Self::Error>;
    /// Deserializes an `i64`.
    fn deserialize_i64(self) -> Result<i64, Self::Error>;
    /// Deserializes a `u64`.
    fn deserialize_u64(self) -> Result<u64, Self::Error>;
    /// Deserializes an `f32`.
    fn deserialize_f32(self) -> Result<f32, Self::Error>;
    /// Deserializes an `f64`.
    fn deserialize_f64(self) -> Result<f64, Self::Error>;

    /// Fallback for derived composite types: always errors in the stub.
    fn deserialize_opaque<T>(self, type_name: &'static str) -> Result<T, Self::Error> {
        Err(Self::Error::custom(format_args!(
            "offline serde stub cannot deserialize composite type {type_name}"
        )))
    }
}

macro_rules! impl_primitive {
    ($($ty:ty, $ser:ident, $de:ident, $cast:ty;)*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$ser(*self as $cast)
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                deserializer.$de().map(|v| v as $ty)
            }
        }
    )*};
}

impl_primitive! {
    bool, serialize_bool, deserialize_bool, bool;
    i8, serialize_i64, deserialize_i64, i64;
    i16, serialize_i64, deserialize_i64, i64;
    i32, serialize_i64, deserialize_i64, i64;
    i64, serialize_i64, deserialize_i64, i64;
    isize, serialize_i64, deserialize_i64, i64;
    u8, serialize_u64, deserialize_u64, u64;
    u16, serialize_u64, deserialize_u64, u64;
    u32, serialize_u64, deserialize_u64, u64;
    u64, serialize_u64, deserialize_u64, u64;
    usize, serialize_u64, deserialize_u64, u64;
    f32, serialize_f32, deserialize_f32, f32;
    f64, serialize_f64, deserialize_f64, f64;
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

/// A ready-made error type for implementing the stub traits in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StubError(pub String);

impl Display for StubError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for StubError {
    fn custom<T: Display>(msg: T) -> Self {
        StubError(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A serializer that renders primitives to strings — exercises the
    /// trait plumbing the BF16 manual impl relies on.
    struct ToString;

    impl Serializer for ToString {
        type Ok = String;
        type Error = StubError;
        fn serialize_bool(self, v: bool) -> Result<String, StubError> {
            Ok(v.to_string())
        }
        fn serialize_i64(self, v: i64) -> Result<String, StubError> {
            Ok(v.to_string())
        }
        fn serialize_u64(self, v: u64) -> Result<String, StubError> {
            Ok(v.to_string())
        }
        fn serialize_f32(self, v: f32) -> Result<String, StubError> {
            Ok(v.to_string())
        }
        fn serialize_f64(self, v: f64) -> Result<String, StubError> {
            Ok(v.to_string())
        }
        fn serialize_str(self, v: &str) -> Result<String, StubError> {
            Ok(v.to_string())
        }
    }

    #[test]
    fn primitives_serialize() {
        assert_eq!(1.5f32.serialize(ToString).unwrap(), "1.5");
        assert_eq!(42u64.serialize(ToString).unwrap(), "42");
        assert_eq!(true.serialize(ToString).unwrap(), "true");
    }

    #[derive(Serialize, Deserialize)]
    struct Derived {
        #[allow(dead_code)]
        x: f64,
    }

    #[test]
    fn derived_composite_is_opaque() {
        let d = Derived { x: 1.0 };
        let err = d.serialize(ToString).unwrap_err();
        assert!(err.0.contains("Derived"), "{}", err.0);
    }
}
