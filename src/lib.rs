//! Umbrella crate: re-exports the Flash-ABFT reproduction workspace crates.
pub use fa_abft as abft;
pub use fa_accel_sim as accel_sim;
pub use fa_attention as attention;
pub use fa_fault as fault;
pub use fa_models as models;
pub use fa_numerics as numerics;
pub use fa_tensor as tensor;
pub use flash_abft as core_abft;
