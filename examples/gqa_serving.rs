//! GQA-native serving: a Llama-3.1-shaped grouped topology (4 query
//! heads per kv head) decoding through the paged per-kv-head cache with
//! the full policy layer on top — mixed-format blocks (f64 burst → BF16
//! steady state) and sliding-window eviction — every token
//! checksum-covered, per-query-head verdicts exact.
//!
//! Run with: `cargo run --release --example gqa_serving`

use fa_attention::batch::{DecodeBatch, EvictionPolicy, KvFormat, KvLayout};
use fa_attention::{AttentionConfig, HeadTopology};
use fa_tensor::{random::ElementDist, Matrix};

fn main() {
    // Llama-3.1's grouping, scaled down: 8 query heads share 2 kv heads
    // (group_size 4) at head_dim 32. The cache stores one K/V stream per
    // *kv* head, so every decode step streams 1/4 of the bytes an
    // equivalent MHA engine would — and the policy layer composes on
    // top: blocks older than the newest full block demote to BF16, and
    // blocks behind a 4-block window are evicted outright.
    let topo = HeadTopology::gqa(8, 2, AttentionConfig::new(32));
    let mut engine = DecodeBatch::<f64>::with_policy(
        topo,
        16,
        KvLayout::HeadMajor,
        KvFormat::Mixed { burst_blocks: 1 },
        EvictionPolicy::SlidingWindow { window_blocks: 4 },
    );
    engine.set_prefill_chunk(24);
    println!(
        "topology: {} query heads / {} kv heads (group {}), q_dim {}, kv_dim {}",
        topo.query_heads,
        topo.kv_heads,
        topo.group_size(),
        topo.q_dim(),
        topo.kv_dim(),
    );

    let prompt = |len: usize, seed: u64| {
        (
            Matrix::<f64>::random_seeded(len, topo.q_dim(), ElementDist::default(), seed),
            Matrix::<f64>::random_seeded(len, topo.kv_dim(), ElementDist::default(), seed + 1),
            Matrix::<f64>::random_seeded(len, topo.kv_dim(), ElementDist::default(), seed + 2),
        )
    };

    // Two prompts admitted synchronously: batched checked GQA prefill —
    // each kv head's stream feeds its whole group of query heads,
    // including the shared sumrow(V) checksum input.
    let opening: Vec<_> = (0..2).map(|i| prompt(40, 10 * (i as u64 + 1))).collect();
    let refs: Vec<_> = opening.iter().map(|(q, k, v)| (q, k, v)).collect();
    let mut live: Vec<usize> = engine.admit_all(&refs).iter().map(|a| a.seq).collect();
    for &s in &live {
        println!(
            "admitted seq {s}: {} prompt tokens (residual {:+.3e})",
            engine.prompt_len(s),
            engine.global_residual(s),
        );
        assert!(engine.global_residual(s).abs() < 1e-8);
    }

    // A long prompt arrives mid-flight and admits chunk by chunk while
    // the batch keeps decoding.
    let (lq, lk, lv) = prompt(72, 99);
    let newcomer = engine.enqueue(&lq, &lk, &lv);
    let mut step = 0u64;
    while engine.is_pending(newcomer) {
        let rows = live.len();
        let q =
            Matrix::<f64>::random_seeded(rows, topo.q_dim(), ElementDist::default(), 200 + step);
        let k =
            Matrix::<f64>::random_seeded(rows, topo.kv_dim(), ElementDist::default(), 300 + step);
        let v =
            Matrix::<f64>::random_seeded(rows, topo.kv_dim(), ElementDist::default(), 400 + step);
        for out in engine.step_all(&live, &q, &k, &v) {
            assert!(out.residual().abs() < 1e-9, "fused per-token check");
        }
        step += 1;
    }
    let admitted = engine.take_admitted(newcomer).expect("prompt completed");
    assert!(
        admitted.residual().abs() < 1e-9,
        "chunk-folded prompt check"
    );
    println!("seq {newcomer} admitted across {step} decode steps");
    live.push(newcomer);

    // Keep decoding: demotion and eviction run per kv head behind the
    // scenes while every query head keeps its exact verdict.
    for t in 0..40u64 {
        let rows = live.len();
        let q = Matrix::<f64>::random_seeded(rows, topo.q_dim(), ElementDist::default(), 500 + t);
        let k = Matrix::<f64>::random_seeded(rows, topo.kv_dim(), ElementDist::default(), 600 + t);
        let v = Matrix::<f64>::random_seeded(rows, topo.kv_dim(), ElementDist::default(), 700 + t);
        for out in engine.step_all(&live, &q, &k, &v) {
            assert!(out.residual().abs() < 1e-9);
        }
    }

    println!("steady state (window = 64 tokens, burst = 1 block, group = 4):");
    for &s in &live {
        println!(
            "  seq {s}: len {} | demoted {} rows | evicted {} rows | {} retained blocks | \
             residual {:+.3e}",
            engine.seq_len(s),
            engine.demoted_len(s),
            engine.evicted_len(s),
            engine.cache().seq_blocks(s).len(),
            engine.global_residual(s),
        );
        assert!(engine.global_residual(s).abs() < 1e-8);
        assert!(engine.evicted_len(s) > 0, "window bounded the cache");
        assert!(
            engine.cache().seq_blocks(s).len() <= 5,
            "retained blocks bounded by window_blocks + 1"
        );
        assert_eq!(engine.unchecked_len(s), 0, "full coverage");
    }
    // The arena bound is kv_heads-proportional: each block row stores
    // kv_dim (not q_dim) elements, 1/group_size of the MHA footprint.
    println!(
        "arena: {} native + {} bf16 blocks of {} rows x {} elements ({} recycled claims) — \
         1/{} the row width an MHA cache would hold",
        engine.cache().allocated_blocks(),
        engine.cache().allocated_blocks16(),
        engine.cache().block_rows(),
        engine.cache().width(),
        engine.cache().recycled_blocks(),
        topo.group_size(),
    );
    assert_eq!(engine.cache().width(), topo.kv_dim());
    println!("all GQA serving checksums verified");
}
