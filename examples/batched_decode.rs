//! Batched checked decode: serving many sequences from one paged KV
//! cache, with the fused per-token ABFT checksum riding every head's
//! pass.
//!
//! Run with: `cargo run --release --example batched_decode`

use fa_attention::batch::DecodeBatch;
use fa_attention::multihead::MultiHeadConfig;
use fa_attention::AttentionConfig;
use fa_tensor::{random::ElementDist, Matrix};

fn main() {
    // Four heads of dimension 32, three concurrent sequences, KV cache
    // allocated in 64-row blocks (the paged-attention layout).
    let cfg = MultiHeadConfig::new(4, AttentionConfig::new(32));
    let dim = cfg.model_dim();
    let mut engine = DecodeBatch::<f64>::new(cfg, 64);
    let ids: Vec<usize> = (0..3).map(|_| engine.add_sequence()).collect();

    // Prefill each sequence with a different-length prompt (the cache is
    // per-sequence, block-allocated — no padding to the longest prompt).
    for (i, &id) in ids.iter().enumerate() {
        let prompt_len = 24 + 16 * i;
        let k =
            Matrix::<f64>::random_seeded(prompt_len, dim, ElementDist::default(), 10 + i as u64);
        let v =
            Matrix::<f64>::random_seeded(prompt_len, dim, ElementDist::default(), 20 + i as u64);
        engine.prefill(id, &k, &v);
        println!("sequence {id}: prefilled {prompt_len} tokens");
    }

    // Decode 8 tokens for all sequences. Each step_all call appends every
    // sequence's new K/V, then schedules all sequences × heads across the
    // shared thread pool in a single fork; the per-token checksum is
    // computed in the same pass as the output.
    for t in 0..8u64 {
        let qs = Matrix::<f64>::random_seeded(3, dim, ElementDist::default(), 100 + t);
        let ks = Matrix::<f64>::random_seeded(3, dim, ElementDist::default(), 200 + t);
        let vs = Matrix::<f64>::random_seeded(3, dim, ElementDist::default(), 300 + t);
        let outs = engine.step_all(&ids, &qs, &ks, &vs);
        if t == 0 || t == 7 {
            println!("step {t}:");
            for (i, out) in outs.iter().enumerate() {
                println!(
                    "  seq {i}: cache {:>2} tokens, output[0] {:+.4}, residual {:+.3e}",
                    engine.seq_len(ids[i]),
                    out.output[0],
                    out.residual()
                );
                assert!(out.residual().abs() < 1e-9, "fused check must hold");
            }
        }
    }

    // The session-level verdict accumulates every decoded token's check
    // (Alg. 3 line 11 carried across steps).
    println!("session residuals:");
    for &id in &ids {
        println!("  seq {id}: {:+.3e}", engine.global_residual(id));
        assert!(engine.global_residual(id).abs() < 1e-8);
    }
    println!("all decode checksums verified");
}
