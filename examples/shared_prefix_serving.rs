//! Prefix-sharing copy-on-write serving: many requests that open with
//! the same system prompt keep **one** physical copy of its KV blocks.
//! The prefix registry prefills the prompt once, every reader adopts
//! the blocks by reference (refcounted, zero bytes copied), and the
//! fused decode pass scores each shared block with one batched K-panel
//! sweep feeding all readers — bit-identical to every reader running
//! its own GEMV, because both drive the same `dot_f64` per
//! (query, row).
//!
//! Three acts:
//!
//! 1. **one prefix, many readers** — register a shared prefix, admit k
//!    readers through it, and verify the whole contract at once: the
//!    arena holds `prefix + k·suffix` blocks (not `k·(prefix+suffix)`),
//!    every block's refcount equals its reader count plus the
//!    registry's pin, and both prompt outputs and decode streams are
//!    bit-identical to an engine that never shared anything;
//! 2. **repair once, everyone healed** — poison the shared prefix: all
//!    readers' audits alarm on the same physical block, one repair
//!    through any single reader restores it from the recovery log, and
//!    every other reader's next audit is clean;
//! 3. **scheduler + load generator** — tenants with shared system
//!    prompts flow through the SLO scheduler: one registry entry per
//!    tenant, reader counts tracked, and the whole run replays
//!    bit-identically from the same seed.
//!
//! Run with: `cargo run --release --example shared_prefix_serving`

use fa_attention::batch::{BlockRef, DecodeBatch, EvictionPolicy, KvFormat, KvLayout};
use fa_attention::serve::{LoadGen, LoadSpec, Scheduler, ServeConfig, SloSpec};
use fa_attention::{AttentionConfig, HeadTopology};
use fa_tensor::{random::ElementDist, Matrix};

const TOL: f64 = 1e-6;
const PREFIX_ROWS: usize = 16; // 4 full blocks, chunk-aligned
const SUFFIX_ROWS: usize = 4;
const READERS: usize = 6;
const DECODE_STEPS: usize = 4;

fn engine() -> DecodeBatch<f64> {
    let mut e = DecodeBatch::<f64>::with_policy(
        HeadTopology::gqa(4, 2, AttentionConfig::new(8)),
        4,
        KvLayout::HeadMajor,
        KvFormat::F64,
        EvictionPolicy::RetainAll,
    );
    e.set_prefill_chunk(4);
    e.enable_recovery_log();
    e
}

fn rand(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
    Matrix::random_seeded(rows, cols, ElementDist::default(), seed)
}

fn vcat(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
    Matrix::from_fn(a.rows() + b.rows(), a.cols(), |r, c| {
        if r < a.rows() {
            a[(r, c)]
        } else {
            b[(r - a.rows(), c)]
        }
    })
}

type Prompt = (Matrix<f64>, Matrix<f64>, Matrix<f64>);

fn prompt(rows: usize, seed: u64) -> Prompt {
    (
        rand(rows, 32, seed),
        rand(rows, 16, seed + 1),
        rand(rows, 16, seed + 2),
    )
}

/// Admits `READERS` suffixes behind a freshly registered prefix and
/// returns `(prefix id, sequence ids, admitted suffix outputs)`.
fn admit_shared(
    e: &mut DecodeBatch<f64>,
    prefix: &Prompt,
    suffixes: &[Prompt],
) -> (usize, Vec<usize>, Vec<Matrix<f64>>) {
    let id = e.register_prefix(&prefix.0, &prefix.1, &prefix.2);
    let seqs: Vec<usize> = suffixes
        .iter()
        .map(|(q, k, v)| e.enqueue_shared(id, q, k, v))
        .collect();
    while e.prefill_step() > 0 {}
    let outs = seqs
        .iter()
        .map(|&s| e.take_admitted(s).expect("reader admitted").output)
        .collect();
    (id, seqs, outs)
}

fn decode_outputs(e: &mut DecodeBatch<f64>, seqs: &[usize], steps: &[Prompt]) -> Vec<Vec<f64>> {
    let mut outs = Vec::new();
    for (q, k, v) in steps {
        for o in e.step_decode(seqs, q, k, v) {
            outs.push(o.output);
        }
    }
    outs
}

fn main() {
    let prefix = prompt(PREFIX_ROWS, 0x10);
    let suffixes: Vec<Prompt> = (0..READERS)
        .map(|i| prompt(SUFFIX_ROWS, 0x100 + 16 * i as u64))
        .collect();
    let steps: Vec<Prompt> = (0..DECODE_STEPS)
        .map(|t| prompt(READERS, 0x900 + 16 * t as u64))
        .collect();

    // ---- Act 1: one prefix, many readers, zero numeric drift --------
    println!("== act 1: {READERS} readers adopt one {PREFIX_ROWS}-token prefix");
    let mut shared = engine();
    let (id, seqs, souts) = admit_shared(&mut shared, &prefix, &suffixes);

    // The O(L + k·suffix) arena claim, exactly.
    let prefix_blocks = shared.prefix_blocks(id).len();
    let arena = shared.cache().live_unique_blocks();
    assert_eq!(prefix_blocks, PREFIX_ROWS / 4);
    assert_eq!(arena, prefix_blocks + READERS * SUFFIX_ROWS.div_ceil(4));
    // Every prefix block: one reference per reader + the registry pin.
    for &b in shared.prefix_blocks(id) {
        let rc = shared.cache().block_ref_count(BlockRef {
            index: b.index,
            bf16: b.bf16,
        });
        assert_eq!(rc, READERS as u32 + 1, "reader refs + registry pin");
    }
    println!(
        "  arena: {arena} blocks = {prefix_blocks} prefix + {READERS} x 1 suffix \
         (independent admission would hold {})",
        READERS * (prefix_blocks + 1)
    );

    // Unshared replay: same tokens as full prompts, no registry.
    let mut plain = engine();
    let pseqs: Vec<usize> = suffixes
        .iter()
        .map(|(q, k, v)| {
            plain.enqueue(
                &vcat(&prefix.0, q),
                &vcat(&prefix.1, k),
                &vcat(&prefix.2, v),
            )
        })
        .collect();
    while plain.prefill_step() > 0 {}
    for (i, &s) in pseqs.iter().enumerate() {
        let full = plain.take_admitted(s).expect("plain admitted").output;
        for r in 0..SUFFIX_ROWS {
            assert_eq!(
                souts[i].row(r),
                full.row(PREFIX_ROWS + r),
                "shared admission is bit-identical to the unshared replay"
            );
        }
    }

    // Decode lockstep: batched shared scoring vs per-reader GEMV on the
    // same shared cache vs the never-shared engine — all one bit stream.
    let mut gemv = engine();
    gemv.set_shared_scoring(false);
    let (_, gseqs, _) = admit_shared(&mut gemv, &prefix, &suffixes);
    let tiles0 = shared.shared_score_tiles();
    let a = decode_outputs(&mut shared, &seqs, &steps);
    let b = decode_outputs(&mut gemv, &gseqs, &steps);
    let c = decode_outputs(&mut plain, &pseqs, &steps);
    assert_eq!(a, b, "batched scoring changes the schedule, not the bits");
    assert_eq!(a, c, "shared decode matches the unshared replay bitwise");
    let tiles = shared.shared_score_tiles() - tiles0;
    assert!(tiles > 0, "equal-length readers must form score tiles");
    assert_eq!(gemv.shared_score_tiles(), 0, "batching was off in the twin");
    println!(
        "  {} decode tokens bit-identical across batched / GEMV / unshared \
         ({tiles} shared-block tiles swept)",
        a.len()
    );

    // ---- Act 2: poison the shared prefix, repair once ---------------
    println!("== act 2: one flip in the shared prefix, one repair heals all readers");
    let hit_bf16 = shared.flip_storage_bit(seqs[0], 2, 0, 3, true, 61);
    assert!(!hit_bf16, "the prefix lives in native f64 blocks");
    let alarmed = seqs
        .iter()
        .filter(|&&s| !shared.audit(s, TOL).is_empty())
        .count();
    assert_eq!(
        alarmed, READERS,
        "a shared-block fault alarms every reader's audit"
    );
    let rep = shared.audit_and_repair(seqs[0], TOL);
    assert!(rep.rows_rewritten >= 1, "the log restores the block");
    assert_eq!(rep.blocks_unrecoverable, 0);
    for &s in &seqs {
        assert!(
            shared.audit(s, TOL).is_empty(),
            "one repair through any reader heals the physical block for all"
        );
    }
    // Post-repair decode still tracks the never-faulted engines bitwise.
    let post: Vec<Prompt> = (0..2).map(|t| prompt(READERS, 0xA00 + 16 * t)).collect();
    assert_eq!(
        decode_outputs(&mut shared, &seqs, &post),
        decode_outputs(&mut plain, &pseqs, &post),
        "repair restores the exact bits, not an approximation"
    );
    println!("  {alarmed}/{READERS} readers alarmed, 1 repair, all audits clean");

    // ---- Act 3: shared system prompts through the scheduler ---------
    println!("== act 3: tenant system prompts through the SLO scheduler");
    let spec = LoadSpec {
        tenants: 2,
        prefix_tokens: 8,
        prefix_share_prob: 1.0,
        prompt_min: 2,
        prompt_max: 12,
        output_min: 2,
        output_max: 8,
        ..LoadSpec::default()
    };
    let serve = |seed: u64| {
        let mut sched = Scheduler::new(engine(), ServeConfig::default());
        let mut gen = LoadGen::new(spec, seed);
        for _ in 0..40 {
            let arrivals = gen.step();
            sched.step(&arrivals);
        }
        for _ in 0..400 {
            let r = sched.step(&[]);
            if sched.queue_len() == 0
                && sched.active_decoding().is_empty()
                && r.prefill_tokens == 0
                && r.decode_tokens == 0
                && r.finished == 0
            {
                break;
            }
        }
        sched
    };
    let run = serve(0x5EED);
    let twin = serve(0x5EED);
    let ids = run.engine().prefix_ids();
    assert!(
        !ids.is_empty() && ids.len() <= spec.tenants,
        "at most one registry entry per tenant system prompt"
    );
    let readers: usize = ids.iter().map(|&i| run.engine().prefix_readers(i)).sum();
    let admitted = run
        .records()
        .iter()
        .filter(|r| r.admitted_step.is_some())
        .count();
    assert!(run.records().iter().all(|r| r.prefix_seed.is_some()));
    assert!(
        readers >= admitted,
        "every admitted request read its prefix"
    );
    let summary = run.summary(&SloSpec {
        ttft_steps: 16,
        per_token_steps: 6,
    });
    assert!(summary.finished > 0, "the run must finish requests");
    for (x, y) in run.records().iter().zip(twin.records()) {
        assert_eq!(x.phase, y.phase);
        assert_eq!(
            x.token_hashes, y.token_hashes,
            "prefix-sharing serving replays bit-identically from the seed"
        );
    }
    println!(
        "  {} requests finished across {} tenants: {} registry entries, {readers} readers, \
         twin replay bit-identical",
        summary.finished,
        spec.tenants,
        ids.len(),
    );

    println!();
    println!("shared_prefix_serving: all invariants held");
}
