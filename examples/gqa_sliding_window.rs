//! Extension features: checked grouped-query attention (what Llama-3.1
//! actually deploys) and sliding-window (local) attention — the checksum
//! identity holds under both.
//!
//! Run with: `cargo run --release --example gqa_sliding_window`

use fa_attention::gqa::GqaConfig;
use fa_attention::AttentionConfig;
use fa_numerics::Tolerance;
use fa_tensor::{random::ElementDist, Matrix};
use flash_abft::api::gqa_checked;
use flash_abft::FlashAbft;

fn main() {
    // --- GQA: 8 query heads sharing 2 KV heads (Llama-style), d=32.
    let gqa = GqaConfig::new(8, 2, AttentionConfig::new(32));
    let n = 64;
    let q = Matrix::<f64>::random_seeded(n, gqa.q_dim(), ElementDist::default(), 1);
    let k = Matrix::<f64>::random_seeded(n, gqa.kv_dim(), ElementDist::default(), 2);
    let v = Matrix::<f64>::random_seeded(n, gqa.kv_dim(), ElementDist::default(), 3);

    let (out, reports) = gqa_checked(&q, &k, &v, &gqa, Tolerance::PAPER);
    println!(
        "GQA: {} query heads / {} KV heads (group size {}), output {}x{}",
        gqa.query_heads,
        gqa.kv_heads,
        gqa.group_size(),
        out.rows(),
        out.cols()
    );
    for (h, r) in reports.iter().enumerate() {
        println!(
            "  head {h} (KV group {}): residual {:.2e}, alarm {}",
            gqa.group_of(h),
            r.residual().abs(),
            r.is_alarm()
        );
    }
    assert!(reports.iter().all(|r| !r.is_alarm()));

    // --- Sliding-window attention (Gemma2-style local layer).
    println!();
    let local = AttentionConfig::new(32)
        .with_causal(true)
        .with_sliding_window(16);
    let q1 = Matrix::<f64>::random_seeded(n, 32, ElementDist::default(), 10);
    let k1 = Matrix::<f64>::random_seeded(n, 32, ElementDist::default(), 11);
    let v1 = Matrix::<f64>::random_seeded(n, 32, ElementDist::default(), 12);
    let engine = FlashAbft::new(local);
    let checked = engine.compute(&q1, &k1, &v1);
    println!(
        "sliding window 16, causal: residual {:.2e}, alarm {}",
        checked.report().residual().abs(),
        checked.report().is_alarm()
    );
    assert!(!checked.report().is_alarm());

    // Detection still works under the mask: corrupt and re-verify.
    let mut corrupted = checked.output().clone();
    corrupted[(40, 7)] -= 0.02;
    let verdict = engine.verify(&q1, &k1, &v1, &corrupted);
    println!(
        "after corrupting one masked-attention output: residual {:.2e}, alarm {}",
        verdict.residual().abs(),
        verdict.is_alarm()
    );
    assert!(verdict.is_alarm());
}
