//! A miniature fault-injection campaign on the cycle-level accelerator —
//! Table I in the small. Injects single bit flips into random storage
//! bits at random cycles and classifies each outcome.
//!
//! Run with: `cargo run --release --example fault_campaign`

use fa_accel_sim::config::AcceleratorConfig;
use fa_fault::{run_campaigns, CampaignSpec, DetectionCriterion};
use fa_models::{LlmModel, Workload, WorkloadSpec};

fn main() {
    let model = LlmModel::Bert.config();
    let workload = Workload::generate(&model, WorkloadSpec::paper(7));
    let accel = AcceleratorConfig::new(16, model.head_dim);

    println!(
        "injecting 1000 single bit flips into a {} attention layer (d={}, N={})",
        model.name,
        model.head_dim,
        workload.seq_len()
    );
    println!();

    for (label, criterion) in [
        (
            "paper criterion (checksum discrepancy)",
            DetectionCriterion::ChecksumDiscrepancy,
        ),
        (
            "strict criterion (runtime comparator)",
            DetectionCriterion::HardwareComparator,
        ),
    ] {
        let spec = CampaignSpec::new(accel, 1000, 2025).with_criterion(criterion);
        let stats = run_campaigns(&spec, &workload);
        println!("{label}:");
        println!("  {stats}");
        println!(
            "  paper-style (consequential only): detected {:.2}% | FP {:.2}% | silent {:.2}%",
            stats.pct_of_consequential(stats.detected),
            stats.pct_of_consequential(stats.false_positive),
            stats.pct_of_consequential(stats.silent),
        );
        let (lo, hi) = stats.wilson95(stats.detected);
        println!("  detected 95% CI over all campaigns: [{lo:.1}%, {hi:.1}%]");
        println!();
    }
}
