//! Quickstart: checked attention in five lines, plus what detection
//! looks like when an output is corrupted.
//!
//! Run with: `cargo run --release --example quickstart`

use fa_attention::AttentionConfig;
use fa_tensor::{random::ElementDist, Matrix};
use flash_abft::FlashAbft;

fn main() {
    // A single attention head: 64 queries/keys of dimension 32.
    let n = 64;
    let d = 32;
    let q = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 1);
    let k = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 2);
    let v = Matrix::<f64>::random_seeded(n, d, ElementDist::default(), 3);

    // Compute attention with the fused online checksum (Alg. 3).
    let engine = FlashAbft::new(AttentionConfig::new(d));
    let checked = engine.compute(&q, &k, &v);

    let report = checked.report();
    println!("fault-free run:");
    println!("  predicted checksum : {:+.12e}", report.predicted);
    println!("  actual checksum    : {:+.12e}", report.actual);
    println!("  residual           : {:+.3e}", report.residual());
    println!("  alarm              : {}", report.is_alarm());
    assert!(!report.is_alarm());

    // Simulate a hardware fault: corrupt one output element, then verify
    // the corrupted matrix against the checksum predicted from the inputs.
    let mut corrupted = checked.output().clone();
    corrupted[(17, 5)] += 0.01;
    let verdict = engine.verify(&q, &k, &v, &corrupted);
    println!();
    println!("after corrupting output[17][5] by +0.01:");
    println!("  residual           : {:+.3e}", verdict.residual());
    println!("  alarm              : {}", verdict.is_alarm());
    assert!(verdict.is_alarm());

    // Per-query checks localize the corrupted row.
    let row_sum: f64 = corrupted.row(17).iter().sum();
    let expected = checked.per_query_checks()[17];
    println!(
        "  row 17 localization: |row sum - check| = {:.3e} (all other rows < 1e-10)",
        (row_sum - expected).abs()
    );
}
