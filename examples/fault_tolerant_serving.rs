//! Live fault tolerance in the continuous-batching engine: a bit flip
//! lands in the KV cache of an actively decoding batch, the fused
//! checksum lane raises the alarm, the per-(sequence, kv head, block)
//! audit pins the poisoned block, and block-granular recovery replays
//! just that block from the retained token log — after which decode
//! resumes **bit-identical** to an uninjured golden twin.
//!
//! Three acts, one per corruption class:
//!
//! 1. a **value-side** storage flip — caught online by the per-step
//!    residual within a step or two;
//! 2. a **key-side** storage flip — residual-coherent (output and
//!    checksum corrupt together), invisible to the online verdict by
//!    construction, caught by the structural audit scrub;
//! 3. a **sumrow** (checker-state) flip — the alarm fires while outputs
//!    are provably clean: a checker-site false positive, repaired
//!    without touching a single cache row.
//!
//! Run with: `cargo run --release --example fault_tolerant_serving`

use fa_attention::batch::guard::LocalizedFault;
use fa_attention::batch::{DecodeBatch, EvictionPolicy, KvFormat, KvLayout};
use fa_attention::{AttentionConfig, HeadTopology};
use fa_tensor::{random::ElementDist, Matrix};

const TOL: f64 = 1e-6;

fn main() {
    // A 4:2 GQA serving configuration, 8-row cache blocks, head-major
    // layout. The recovery log retains each sequence's admitted K/V
    // rows, so any block can be recomputed after corruption.
    let topo = HeadTopology::gqa(4, 2, AttentionConfig::new(16));
    let mk = || {
        DecodeBatch::<f64>::with_policy(
            topo,
            8,
            KvLayout::HeadMajor,
            KvFormat::F64,
            EvictionPolicy::RetainAll,
        )
    };
    let mut engine = mk();
    engine.enable_recovery_log();
    let mut golden = mk();

    let ids: Vec<usize> = (0..4).map(|_| engine.add_sequence()).collect();
    for _ in &ids {
        golden.add_sequence();
    }
    for (i, &id) in ids.iter().enumerate() {
        let k =
            Matrix::<f64>::random_seeded(24, topo.kv_dim(), ElementDist::default(), 10 + i as u64);
        let v =
            Matrix::<f64>::random_seeded(24, topo.kv_dim(), ElementDist::default(), 50 + i as u64);
        engine.prefill(id, &k, &v);
        golden.prefill(id, &k, &v);
    }
    println!(
        "serving {} sequences (4:2 GQA, d=16), {} prompt tokens each, recovery log on",
        ids.len(),
        engine.seq_len(ids[0])
    );

    let mut step = 0u64;
    // One lockstep decode step against the golden twin; returns whether
    // the victim's output diverged bitwise and its online residual.
    let mut decode = |engine: &mut DecodeBatch<f64>,
                      golden: &mut DecodeBatch<f64>,
                      victim: usize|
     -> (bool, f64) {
        let qs = Matrix::<f64>::random_seeded(
            ids.len(),
            topo.q_dim(),
            ElementDist::default(),
            1_000 + step,
        );
        let ks = Matrix::<f64>::random_seeded(
            ids.len(),
            topo.kv_dim(),
            ElementDist::default(),
            2_000 + step,
        );
        let vs = Matrix::<f64>::random_seeded(
            ids.len(),
            topo.kv_dim(),
            ElementDist::default(),
            3_000 + step,
        );
        step += 1;
        let a = engine.step_all(&ids, &qs, &ks, &vs);
        let b = golden.step_all(&ids, &qs, &ks, &vs);
        let diverged = a[victim]
            .output
            .iter()
            .zip(&b[victim].output)
            .any(|(x, y)| x.to_bits() != y.to_bits());
        (diverged, a[victim].residual())
    };

    // Warm-up: a healthy engine tracks its twin bit for bit.
    for _ in 0..4 {
        let (diverged, r) = decode(&mut engine, &mut golden, 0);
        assert!(!diverged && r.abs() < TOL);
    }
    println!("warm-up: 4 clean steps, outputs bit-identical, residuals < {TOL:e}\n");

    // ---- Act 1: value-side storage flip, caught online -------------------
    let victim = ids[0];
    engine.flip_storage_bit(victim, 5, 1, 3, false, 61);
    println!("[act 1] flipped bit 61 of V[pos 5, kv head 1, lane 3] on seq {victim}");
    let mut alarm = None;
    for s in 0..4 {
        let (diverged, r) = decode(&mut engine, &mut golden, 0);
        // NaN-safe alarm form: a poisoned residual must not pass.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(r.abs() <= TOL) {
            println!(
                "  step +{}: output diverged={diverged}, residual {r:+.3e} -> ALARM",
                s + 1
            );
            alarm = Some(r);
            break;
        }
    }
    assert!(alarm.is_some(), "a high-bit value flip must alarm online");
    let faults = engine.audit(victim, TOL);
    println!("  audit verdicts: {faults:?}");
    assert!(faults.iter().any(|f| matches!(
        f,
        LocalizedFault::CorruptBlock { first, rows, kv_head: 1, key_side: false, .. }
            if (*first..first + rows).contains(&5)
    )));
    let report = engine.repair(victim, &faults);
    println!(
        "  repaired: {} block ({} rows rewritten from the log), verdict cleared",
        report.blocks_recovered, report.rows_rewritten
    );
    for _ in 0..6 {
        let (diverged, r) = decode(&mut engine, &mut golden, 0);
        assert!(!diverged, "post-recovery decode must be bit-identical");
        assert!(r.abs() < TOL);
    }
    println!("  resumed 6 steps bit-identical to the golden twin\n");

    // ---- Act 2: key-side flip, the scrub's story -------------------------
    let victim = ids[2];
    engine.flip_storage_bit(victim, 12, 0, 7, true, 61);
    println!("[act 2] flipped bit 61 of K[pos 12, kv head 0, lane 7] on seq {victim}");
    let mut corrupted = false;
    for _ in 0..4 {
        let (diverged, r) = decode(&mut engine, &mut golden, 2);
        corrupted |= diverged;
        assert!(
            r.abs() <= TOL,
            "key flips scale score and checksum coherently: no online alarm"
        );
    }
    assert!(corrupted, "outputs corrupt silently");
    println!("  4 steps: outputs corrupt, online residual blind (coherent corruption)");
    let faults = engine.audit(victim, TOL);
    println!("  structural scrub: {faults:?}");
    assert!(faults
        .iter()
        .any(|f| matches!(f, LocalizedFault::CorruptBlock { key_side: true, .. })));
    let report = engine.repair(victim, &faults);
    println!("  repaired {} rows; resuming", report.rows_rewritten);
    for _ in 0..6 {
        let (diverged, r) = decode(&mut engine, &mut golden, 2);
        assert!(!diverged && r.abs() < TOL);
    }
    println!("  resumed 6 steps bit-identical\n");

    // ---- Act 3: checker-state flip, alarm with clean outputs -------------
    let victim = ids[3];
    engine.flip_sumrow_bit(victim, 8, 1, 61);
    println!("[act 3] flipped bit 61 of sumrow[pos 8, kv head 1] on seq {victim}");
    let (diverged, r) = decode(&mut engine, &mut golden, 3);
    assert!(!diverged, "checker corruption never touches outputs");
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    {
        assert!(!(r.abs() <= TOL), "but the alarm fires");
    }
    println!("  alarm with bit-identical outputs: checker-site false positive");
    let faults = engine.audit(victim, TOL);
    assert_eq!(
        faults,
        vec![LocalizedFault::CorruptSumrow { pos: 8, kv_head: 1 }]
    );
    let report = engine.repair(victim, &faults);
    assert_eq!(report.rows_rewritten, 0, "no cache rows touched");
    assert_eq!(report.sumrows_repaired, 1);
    println!(
        "  sumrow recomputed from storage; {} cache rows rewritten",
        report.rows_rewritten
    );
    for _ in 0..4 {
        let (diverged, r) = decode(&mut engine, &mut golden, 3);
        assert!(!diverged && r.abs() < TOL);
    }

    // Final sweep: every sequence audits clean and matches its twin.
    for &id in &ids {
        assert!(engine.audit(id, TOL).is_empty());
        assert!(engine.global_residual(id).abs() < TOL);
    }
    println!("\nall sequences audit clean; serving continued through 3 live faults");
}
