//! The unified KV-cache policy layer: mixed-format blocks (f64 prefill
//! burst → BF16 steady state), chunked prompt admission interleaved with
//! decode, and sliding-window block eviction — every token still
//! checksum-covered.
//!
//! Run with: `cargo run --release --example mixed_format_serving`

use fa_attention::batch::{DecodeBatch, EvictionPolicy, KvFormat};
use fa_attention::multihead::MultiHeadConfig;
use fa_attention::AttentionConfig;
use fa_tensor::{random::ElementDist, Matrix};

fn main() {
    // Four heads of dimension 32, 16-row cache blocks. The policy layer:
    // the newest full block per sequence stays f64 (the "burst" the
    // prompt chunks and fresh tokens score against), older blocks demote
    // to BF16 in place — quartering their stream bytes — and blocks that
    // fall behind a 4-block sliding window return to the free list, so
    // per-sequence cache memory is bounded no matter how long decoding
    // runs.
    let cfg = MultiHeadConfig::new(4, AttentionConfig::new(32));
    let dim = cfg.model_dim();
    let mut engine = DecodeBatch::<f64>::with_policy(
        cfg,
        16,
        fa_attention::batch::KvLayout::HeadMajor,
        KvFormat::Mixed { burst_blocks: 1 },
        EvictionPolicy::SlidingWindow { window_blocks: 4 },
    );
    engine.set_prefill_chunk(24);

    let prompt = |len: usize, seed: u64| {
        (
            Matrix::<f64>::random_seeded(len, dim, ElementDist::default(), seed),
            Matrix::<f64>::random_seeded(len, dim, ElementDist::default(), seed + 1),
            Matrix::<f64>::random_seeded(len, dim, ElementDist::default(), seed + 2),
        )
    };

    // Two sequences admitted synchronously form the opening batch.
    let opening: Vec<_> = (0..2).map(|i| prompt(40, 10 * (i as u64 + 1))).collect();
    let refs: Vec<_> = opening.iter().map(|(q, k, v)| (q, k, v)).collect();
    let mut live: Vec<usize> = engine.admit_all(&refs).iter().map(|a| a.seq).collect();
    for &s in &live {
        println!(
            "admitted seq {s}: {} prompt tokens, {} rows already demoted to bf16",
            engine.prompt_len(s),
            engine.demoted_len(s),
        );
    }

    // A long prompt arrives mid-flight: enqueue it. Each decode step now
    // advances it by one 24-token chunk — the batch never stalls.
    let (lq, lk, lv) = prompt(96, 99);
    let newcomer = engine.enqueue(&lq, &lk, &lv);
    println!(
        "enqueued seq {newcomer} with {} prompt tokens (chunk {})",
        engine.pending_len(newcomer),
        engine.prefill_chunk()
    );

    let mut step = 0u64;
    while engine.is_pending(newcomer) {
        let qs = Matrix::<f64>::random_seeded(live.len(), dim, ElementDist::default(), 200 + step);
        let ks = Matrix::<f64>::random_seeded(live.len(), dim, ElementDist::default(), 300 + step);
        let vs = Matrix::<f64>::random_seeded(live.len(), dim, ElementDist::default(), 400 + step);
        for out in engine.step_all(&live, &qs, &ks, &vs) {
            assert!(out.residual().abs() < 1e-9, "fused per-token check");
        }
        step += 1;
        println!(
            "decode step {step}: batch of {} decoded while {} prompt tokens remain pending",
            live.len(),
            engine.pending_len(newcomer)
        );
    }
    let admitted = engine.take_admitted(newcomer).expect("prompt completed");
    assert!(
        admitted.residual().abs() < 1e-9,
        "chunk-folded prompt check"
    );
    println!(
        "seq {newcomer} admitted across {step} decode steps (prompt residual {:+.3e})",
        admitted.residual()
    );
    live.push(newcomer);

    // Keep decoding: demotion and eviction run behind the scenes while
    // the checksum lane keeps covering every token.
    for t in 0..40 {
        let qs = Matrix::<f64>::random_seeded(live.len(), dim, ElementDist::default(), 500 + t);
        let ks = Matrix::<f64>::random_seeded(live.len(), dim, ElementDist::default(), 600 + t);
        let vs = Matrix::<f64>::random_seeded(live.len(), dim, ElementDist::default(), 700 + t);
        for out in engine.step_all(&live, &qs, &ks, &vs) {
            assert!(out.residual().abs() < 1e-9);
        }
    }

    println!("steady state (window = 64 tokens, burst = 1 block):");
    for &s in &live {
        println!(
            "  seq {s}: len {} | demoted {} rows | evicted {} rows | {} retained blocks | residual {:+.3e}",
            engine.seq_len(s),
            engine.demoted_len(s),
            engine.evicted_len(s),
            engine.cache().seq_blocks(s).len(),
            engine.global_residual(s),
        );
        assert!(engine.global_residual(s).abs() < 1e-8);
        assert!(engine.evicted_len(s) > 0, "window bounded the cache");
        assert!(
            engine.cache().seq_blocks(s).len() <= 5,
            "retained blocks bounded by window_blocks + 1"
        );
        assert_eq!(engine.unchecked_len(s), 0, "full coverage");
    }
    println!(
        "arena: {} native + {} bf16 blocks, {} recycled claims — memory bounded by the window",
        engine.cache().allocated_blocks(),
        engine.cache().allocated_blocks16(),
        engine.cache().recycled_blocks(),
    );
    println!("all mixed-format serving checksums verified");
}
