//! Proactive scrubbing and graceful degradation in the serving engine:
//! the background scrubber amortizes the structural audit across decode
//! steps and catches residual-coherent corruption within a configured
//! latency bound; clean scrub verdicts let a bounded recovery log drop
//! its verified prefix; and when damage lands where the log no longer
//! reaches, the engine degrades gracefully — quarantine frees the
//! poisoned blocks and the sequence recomputes through chunked-prefill
//! admission while its batch peers keep decoding, bit-identical
//! throughout.
//!
//! Three acts:
//!
//! 1. a **key-side** storage flip — invisible to the online residual by
//!    construction — is caught by the scrubber within
//!    `ceil(live_blocks / blocks_per_step)` steps, repaired from the
//!    log, and decode resumes bit-identical to a golden twin;
//! 2. the **recovery log is bounded**: a checkpoint behind a clean
//!    audit drops every verified row beyond the budget, and the
//!    retained suffix still repairs;
//! 3. a flip lands **behind the truncated log**: repair reports the
//!    block unrecoverable, quarantine retires the sequence, the
//!    frontend resubmits its token history, and re-admission proceeds
//!    chunk by chunk while peers decode — ending bit-identical.
//!
//! Run with: `cargo run --release --example scrubbed_serving`

use fa_attention::batch::{DecodeBatch, EvictionPolicy, KvFormat, KvLayout, ScrubPolicy};
use fa_attention::{AttentionConfig, HeadTopology};
use fa_tensor::{random::ElementDist, Matrix};

const TOL: f64 = 1e-6;

fn rand(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
    Matrix::random_seeded(rows, cols, ElementDist::default(), seed)
}

fn main() {
    // A 4:2 GQA serving configuration, 8-row blocks, recovery log on,
    // prompts admitted 6 tokens at a time. The scrubber audits 2 live
    // blocks per decode step.
    let topo = HeadTopology::gqa(4, 2, AttentionConfig::new(16));
    let mk = || {
        let mut e = DecodeBatch::<f64>::with_policy(
            topo,
            8,
            KvLayout::HeadMajor,
            KvFormat::F64,
            EvictionPolicy::RetainAll,
        );
        e.set_prefill_chunk(6);
        e
    };
    let mut engine = mk();
    engine.enable_recovery_log();
    engine.set_scrub_policy(Some(ScrubPolicy { blocks_per_step: 2 }));
    let mut golden = mk();

    let ids: Vec<usize> = (0..3).map(|_| engine.add_sequence()).collect();
    for _ in &ids {
        golden.add_sequence();
    }
    // The frontend's copy of every admitted K/V row — what a real stack
    // would rebuild from the token history on resubmission.
    let mut hist_k: Vec<Vec<f64>> = vec![Vec::new(); ids.len()];
    let mut hist_v: Vec<Vec<f64>> = vec![Vec::new(); ids.len()];
    for (i, &id) in ids.iter().enumerate() {
        let k = rand(20, topo.kv_dim(), 10 + i as u64);
        let v = rand(20, topo.kv_dim(), 50 + i as u64);
        engine.prefill(id, &k, &v);
        golden.prefill(id, &k, &v);
        hist_k[i].extend_from_slice(k.as_slice());
        hist_v[i].extend_from_slice(v.as_slice());
    }
    println!(
        "serving {} sequences (4:2 GQA, d=16), 20 prompt tokens each; \
         scrub budget 2 blocks/step, recovery log on",
        ids.len()
    );

    // One lockstep serving step over `active` (indices into `ids`):
    // decode on both engines, record the admitted K/V rows, run the
    // engine's scrub quantum, and report (max bitwise divergence flag,
    // max |residual|, scrub findings).
    let mut step = 0u64;
    let mut serve = |engine: &mut DecodeBatch<f64>,
                     golden: &mut DecodeBatch<f64>,
                     hist_k: &mut Vec<Vec<f64>>,
                     hist_v: &mut Vec<Vec<f64>>,
                     active: &[usize]|
     -> (
        bool,
        f64,
        Vec<(usize, fa_attention::batch::guard::CorruptSite)>,
    ) {
        let sub: Vec<usize> = active.iter().map(|&i| ids[i]).collect();
        let qs = rand(sub.len(), topo.q_dim(), 1_000 + step);
        let ks = rand(sub.len(), topo.kv_dim(), 2_000 + step);
        let vs = rand(sub.len(), topo.kv_dim(), 3_000 + step);
        step += 1;
        let a = engine.step_all(&sub, &qs, &ks, &vs);
        let b = golden.step_all(&sub, &qs, &ks, &vs);
        for (j, &i) in active.iter().enumerate() {
            hist_k[i].extend_from_slice(ks.row(j));
            hist_v[i].extend_from_slice(vs.row(j));
        }
        let diverged = a.iter().zip(&b).any(|(x, y)| {
            x.output
                .iter()
                .zip(&y.output)
                .any(|(p, q)| p.to_bits() != q.to_bits())
        });
        let residual = a.iter().map(|o| o.residual().abs()).fold(0.0f64, f64::max);
        (diverged, residual, engine.scrub_step())
    };
    let all: Vec<usize> = (0..ids.len()).collect();

    // Warm-up: healthy lockstep, scrub finds nothing.
    for _ in 0..3 {
        let (diverged, r, findings) =
            serve(&mut engine, &mut golden, &mut hist_k, &mut hist_v, &all);
        assert!(!diverged && r < TOL && findings.is_empty());
    }
    println!("warm-up: 3 clean steps, outputs bit-identical, scrub quiet\n");

    // ---- Act 1: key flip caught by the scrubber within its bound -----------
    let victim = ids[1];
    engine.flip_storage_bit(victim, 10, 0, 3, true, 61);
    let bound = engine.live_blocks().div_ceil(2);
    println!(
        "[act 1] flipped bit 61 of K[pos 10, kv head 0, lane 3] on seq {victim}; \
         latency bound = ceil({} live blocks / 2 per step) = {bound} steps",
        engine.live_blocks()
    );
    let mut caught = None;
    for s in 1..=bound {
        let (diverged, r, findings) =
            serve(&mut engine, &mut golden, &mut hist_k, &mut hist_v, &all);
        assert!(
            r < TOL,
            "key flips never alarm online (coherent corruption)"
        );
        if !findings.is_empty() {
            println!(
                "  step +{s}: outputs diverged={diverged}, online residual {r:.1e} \
                 (blind) -> scrub findings {findings:?}"
            );
            assert!(findings.iter().all(|&(sq, _)| sq == victim));
            caught = Some(s);
            break;
        }
    }
    let caught = caught.expect("the scrubber must catch the flip within its bound");
    assert!(caught <= bound);
    let faults = engine.audit(victim, TOL);
    let report = engine.repair(victim, &faults);
    println!(
        "  caught in {caught} <= {bound} steps; repaired {} block ({} rows from the log)",
        report.blocks_recovered, report.rows_rewritten
    );
    assert_eq!(report.blocks_unrecoverable, 0);
    for _ in 0..4 {
        let (diverged, r, findings) =
            serve(&mut engine, &mut golden, &mut hist_k, &mut hist_v, &all);
        assert!(!diverged && r < TOL && findings.is_empty());
    }
    println!("  resumed 4 steps bit-identical to the golden twin\n");

    // ---- Act 2: the recovery log is bounded --------------------------------
    let width = engine.cache().width();
    let before = (engine.recovery_log_rows(), engine.recovery_log_bytes());
    engine.set_recovery_log_budget(Some(8));
    for &id in &ids {
        assert!(engine.checkpoint_recovery_log(id, TOL), "audits are clean");
        assert_eq!(engine.seq_log_rows(id), 8);
    }
    println!(
        "[act 2] recovery log: {} rows / {} bytes -> budget 8 rows/seq -> {} rows / {} bytes",
        before.0,
        before.1,
        engine.recovery_log_rows(),
        engine.recovery_log_bytes()
    );
    assert_eq!(
        engine.recovery_log_bytes(),
        2 * engine.recovery_log_rows() * width * core::mem::size_of::<f64>()
    );
    // The retained suffix still repairs in place.
    let tip = engine.seq_len(ids[0]) - 1;
    engine.flip_storage_bit(ids[0], tip, 1, 0, false, 61);
    let faults = engine.audit(ids[0], TOL);
    let report = engine.repair(ids[0], &faults);
    assert_eq!(report.blocks_recovered, 1);
    assert_eq!(report.blocks_unrecoverable, 0);
    println!("  suffix flip at pos {tip}: still repaired from the bounded log\n");

    // ---- Act 3: unrecoverable damage -> quarantine and recompute -----------
    let victim = ids[2];
    engine.flip_storage_bit(victim, 2, 0, 1, true, 61);
    println!("[act 3] flipped bit 61 of K[pos 2, ...] on seq {victim} — behind the truncated log");
    let mut findings = Vec::new();
    // Live blocks grow while we wait, so allow two full cursor cycles.
    for _ in 0..2 * engine.live_blocks() {
        let (_, _, f) = serve(&mut engine, &mut golden, &mut hist_k, &mut hist_v, &all);
        if !f.is_empty() {
            findings = f;
            break;
        }
    }
    assert!(!findings.is_empty(), "the scrubber catches this flip too");
    let faults = engine.audit(victim, TOL);
    let report = engine.repair(victim, &faults);
    assert_eq!(report.blocks_recovered, 0);
    assert_eq!(report.blocks_unrecoverable, 1);
    println!(
        "  detected by scrub, but repair reports {} unrecoverable block",
        report.blocks_unrecoverable
    );
    let q = engine.quarantine(victim);
    assert_eq!(q.requeued_rows, 0, "a truncated log cannot self-requeue");
    println!(
        "  quarantined: {} blocks freed, {} log rows dropped; frontend resubmits {} tokens",
        q.blocks_freed,
        q.log_rows_dropped,
        hist_k[2].len() / topo.kv_dim()
    );
    let rows = hist_k[2].len() / topo.kv_dim();
    let k = Matrix::from_vec(rows, topo.kv_dim(), hist_k[2].clone());
    let v = Matrix::from_vec(rows, topo.kv_dim(), hist_v[2].clone());
    engine
        .resubmit(victim, &k, &v)
        .expect("a quarantined sequence accepts its history");
    assert!(engine.is_pending(victim));
    // Peers keep decoding while the victim re-admits chunk by chunk;
    // the golden twin pauses its victim too, so peers see identical
    // steps on both engines.
    let mut waited = 0;
    while engine.is_pending(victim) {
        let (diverged, r, _) = serve(&mut engine, &mut golden, &mut hist_k, &mut hist_v, &[0, 1]);
        assert!(!diverged && r < TOL, "peers bit-identical during requeue");
        waited += 1;
        assert!(waited < 100, "re-admission must terminate");
    }
    assert_eq!(engine.seq_len(victim), golden.seq_len(victim));
    assert!(engine.audit(victim, TOL).is_empty());
    println!(
        "  re-admitted over {waited} steps while peers decoded bit-identical; \
         recomputed cache audits clean"
    );
    for _ in 0..4 {
        let (diverged, r, findings) =
            serve(&mut engine, &mut golden, &mut hist_k, &mut hist_v, &all);
        assert!(!diverged && r < TOL && findings.is_empty());
    }
    println!("  resumed 4 full-batch steps bit-identical to the golden twin");

    // Final sweep: every sequence audits clean and matches its twin.
    for &id in &ids {
        assert!(engine.audit(id, TOL).is_empty());
    }
    println!(
        "\nall sequences audit clean; served through a scrubbed repair, a bounded-log \
         checkpoint, and a quarantine-and-recompute without losing a peer step"
    );
}
