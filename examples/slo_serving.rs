//! SLO-aware serving on top of the fault-tolerant engine: the step-driven
//! scheduler packs chunked-prefill admission and decode under a per-step
//! token budget, serves a deterministic bursty/heavy-tail workload with
//! deficit-fair tenant selection, and degrades gracefully when the KV
//! arena runs out — demote first, evict-and-requeue second — while the
//! same requeue path absorbs live corruption.
//!
//! Three acts:
//!
//! 1. **clean serving** — the seeded load generator drives bursty
//!    arrivals through the scheduler; every finished request delivers its
//!    full output stream, and the run reports TTFT / per-token
//!    percentiles and goodput under an SLO;
//! 2. **fault drill** — injection campaigns against live serving runs,
//!    certified per (request, token) bitwise against undisturbed golden
//!    twins: value-side flips alarm online and recover bit-exact;
//!    key-side flips (invisible to the online residual) are caught by
//!    the autotuned scrubber within its latency bound;
//! 3. **memory pressure** — the same workload under an arena-bytes bound
//!    forces the preemption ladder; undisturbed requests still finish
//!    bit-identical to the unpressured run.
//!
//! Run with: `cargo run --release --example slo_serving`

use fa_attention::batch::{DecodeBatch, EvictionPolicy, KvFormat, KvLayout};
use fa_attention::serve::{
    LoadGen, LoadSpec, Phase, Scheduler, ServeConfig, ServeSummary, SloSpec,
};
use fa_attention::{AttentionConfig, HeadTopology};
use fa_fault::{run_drill, DrillSpec};

const LOAD_SEED: u64 = 0x0510;
const LOAD_STEPS: usize = 60;
const SLO: SloSpec = SloSpec {
    ttft_steps: 16,
    per_token_steps: 6,
};

fn engine() -> DecodeBatch<f64> {
    let mut e = DecodeBatch::<f64>::with_policy(
        HeadTopology::gqa(4, 2, AttentionConfig::new(8)),
        4,
        KvLayout::HeadMajor,
        KvFormat::F64,
        EvictionPolicy::RetainAll,
    );
    e.set_prefill_chunk(4);
    e
}

/// Serves `LOAD_STEPS` of generated arrivals plus a bounded drain,
/// checking the arena-pressure invariant after every step.
fn serve(cfg: ServeConfig) -> Scheduler {
    let mut sched = Scheduler::new(engine(), cfg);
    let mut gen = LoadGen::new(LoadSpec::default(), LOAD_SEED);
    let check = |s: &Scheduler| {
        if let Some(bound) = cfg.max_kv_bytes {
            assert!(
                s.engine().cache().live_kv_bytes() <= bound || s.active_decoding().len() <= 1,
                "the ladder must hold the arena at the bound (or be down to one sequence)"
            );
        }
    };
    for _ in 0..LOAD_STEPS {
        let arrivals = gen.step();
        sched.step(&arrivals);
        check(&sched);
    }
    for _ in 0..4000 {
        let r = sched.step(&[]);
        check(&sched);
        if sched.queue_len() == 0
            && sched.active_decoding().is_empty()
            && r.prefill_tokens == 0
            && r.decode_tokens == 0
            && r.finished == 0
        {
            break;
        }
    }
    sched
}

fn print_summary(name: &str, s: &ServeSummary) {
    println!(
        "  {name:<10} | submitted {:>3} finished {:>3} shed {:>2} | \
         TTFT p50 {:>2} p99 {:>2} steps | tok p99 {:>2} steps | \
         goodput {:>4}/{:<4} tokens ({} of {} met SLO) | \
         demote {:>2} preempt {:>2} quarantine {:>2}",
        s.submitted,
        s.finished,
        s.shed,
        s.ttft_p50_steps,
        s.ttft_p99_steps,
        s.per_token_p99_steps,
        s.goodput_tokens,
        s.total_tokens,
        s.slo_met,
        s.finished,
        s.demotions,
        s.preemptions,
        s.quarantines,
    );
}

fn main() {
    // ---- Act 1: clean bursty serving under the token budget ----------
    println!("== act 1: clean serving (bursty heavy-tail load, deficit-fair admission)");
    let cfg = ServeConfig {
        scrub_slo_steps: Some(4),
        ..ServeConfig::default()
    };
    let clean = serve(cfg);
    let summary = clean.summary(&SLO);
    print_summary("clean", &summary);
    assert!(summary.finished > 0, "the clean run must finish requests");
    assert_eq!(summary.quarantines, 0, "no corruption in a clean run");
    assert_eq!(summary.preemptions, 0, "no pressure without an arena bound");
    for r in clean.records() {
        if r.phase == Phase::Finished {
            assert_eq!(
                r.token_hashes.len(),
                r.output_tokens,
                "every finished request delivers its full output stream"
            );
        }
    }

    // ---- Act 2: fault drill, certified against golden twins ----------
    println!("== act 2: fault drill (live injection vs undisturbed golden twins)");
    let value = run_drill(&DrillSpec::new(4, 21).with_injections(1, false));
    println!(
        "  value flips | {} landed, {} online alarms, {} quarantines, \
         {} tokens compared, {} divergent",
        value.injections_landed,
        value.online_alarms,
        value.quarantines,
        value.tokens_compared,
        value.tokens_divergent,
    );
    assert!(value.injections_landed > 0);
    assert!(value.online_alarms > 0, "value flips alarm online");
    assert_eq!(
        value.tokens_divergent, 0,
        "alarmed tokens are discarded before delivery; recovery is bit-exact"
    );
    let key = run_drill(&DrillSpec::new(4, 23).with_injections(1, true));
    println!(
        "  key flips   | {} landed, {} scrub findings, {} blocks repaired, \
         fidelity {:.2}%",
        key.injections_landed,
        key.scrub_findings,
        key.repaired_blocks,
        key.token_fidelity_pct(),
    );
    assert!(key.injections_landed > 0);
    assert!(
        key.scrub_findings > 0,
        "key flips are online-invisible; the autotuned scrubber catches them"
    );
    assert!(key.token_fidelity_pct() > 90.0);

    // ---- Act 3: memory pressure forces the preemption ladder ---------
    println!("== act 3: memory pressure (demote, then evict-and-requeue)");
    let pressured = serve(ServeConfig {
        max_kv_bytes: Some(8 * 1024),
        ..cfg
    });
    let psum = pressured.summary(&SLO);
    print_summary("pressured", &psum);
    assert!(
        psum.demotions + psum.preemptions > 0,
        "an 8 KiB arena bound must force the ladder under this load"
    );
    assert!(psum.finished > 0, "pressured serving still finishes");
    // Same load seed => records line up 1:1; requests the ladder never
    // touched must finish bit-identical to the unpressured run.
    let mut untouched = 0;
    for (a, b) in clean.records().iter().zip(pressured.records()) {
        assert_eq!(a.seed, b.seed, "same seed => same workload");
        if a.phase == Phase::Finished
            && b.phase == Phase::Finished
            && b.demotions == 0
            && b.preemptions == 0
            && b.quarantines == 0
        {
            assert_eq!(
                a.token_hashes, b.token_hashes,
                "untouched requests are bit-identical under pressure"
            );
            untouched += 1;
        }
    }
    assert!(untouched > 0, "some requests escape the ladder");
    println!(
        "  {untouched} untouched requests bit-identical across runs; \
         {} demotions + {} preemptions absorbed",
        psum.demotions, psum.preemptions
    );

    println!();
    println!(
        "SLO: TTFT <= {} steps, inter-token <= {} steps",
        SLO.ttft_steps, SLO.per_token_steps
    );
    println!("slo_serving: all invariants held");
}
