//! Speculative decoding with exact rollback: a draft proposes γ tokens
//! per sequence, the engine scores all γ positions in **one** batched
//! pass over the paged cache, and the accepted prefix is committed
//! through the ordinary append path while every rejected append —
//! block claims, copy-on-write splits, format demotion, eviction
//! anchors, checksums, recovery-log rows — rewinds **exactly**. The
//! headline contract: any accept/reject schedule replays bit-identical
//! to non-speculative decode of the accepted tokens.
//!
//! Three acts:
//!
//! 1. **draft, verify, deliver** — full-accept windows across the
//!    format sweep (F64 / BF16 / Mixed demotion, retain-all / sliding
//!    window): every scored position's output and fused checksum
//!    verdict is bitwise equal to the sequential twin's step;
//! 2. **rollback storm** — windows resolve with adversarial accept
//!    prefixes (including reject-everything) over the Mixed +
//!    sliding-window corner; after the storm the cache rows, lengths,
//!    arena size, and a probe decode step all match a twin that never
//!    speculated;
//! 3. **corruption inside the window** — a bit flips in a row the next
//!    window scores over: the fused verdict alarms **before** any
//!    token from the window is delivered, the request quarantines and
//!    requeues, and the final delivered stream is bit-identical to an
//!    unperturbed run.
//!
//! Run with: `cargo run --release --example speculative_serving`

use fa_attention::batch::{DecodeBatch, EvictionPolicy, KvFormat, KvLayout};
use fa_attention::serve::{Phase, Priority, Request, Scheduler, ServeConfig};
use fa_attention::{AttentionConfig, HeadTopology};
use fa_tensor::{random::ElementDist, Matrix};

const GAMMA: usize = 4;
const BATCH: usize = 4;
const PREFILL: usize = 10;

fn engine(format: KvFormat, eviction: EvictionPolicy) -> DecodeBatch<f64> {
    DecodeBatch::<f64>::with_policy(
        HeadTopology::gqa(4, 2, AttentionConfig::new(8)),
        4,
        KvLayout::HeadMajor,
        format,
        eviction,
    )
}

fn topo() -> HeadTopology {
    HeadTopology::gqa(4, 2, AttentionConfig::new(8))
}

fn rand(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
    Matrix::random_seeded(rows, cols, ElementDist::default(), seed)
}

/// A (speculative, twin) engine pair with `BATCH` prefilled sequences.
fn pair(
    format: KvFormat,
    eviction: EvictionPolicy,
) -> (DecodeBatch<f64>, DecodeBatch<f64>, Vec<usize>) {
    let mut spec = engine(format, eviction);
    let mut twin = engine(format, eviction);
    let ids: Vec<usize> = (0..BATCH).map(|_| spec.add_sequence()).collect();
    for _ in 0..BATCH {
        twin.add_sequence();
    }
    for (i, &id) in ids.iter().enumerate() {
        let k = rand(PREFILL, topo().kv_dim(), 300 + i as u64);
        let v = rand(PREFILL, topo().kv_dim(), 400 + i as u64);
        spec.prefill(id, &k, &v);
        twin.prefill(id, &k, &v);
    }
    (spec, twin, ids)
}

/// Row `i·γ + t` of a window matrix, re-packed as a one-token-per-live-
/// sequence step input for the twin.
fn token_step(m: &Matrix<f64>, live: &[usize]) -> Matrix<f64> {
    let rows: Vec<&[f64]> = live.iter().map(|&r| m.row(r)).collect();
    Matrix::from_rows(&rows)
}

fn main() {
    // ---- Act 1: full-accept windows across the policy sweep ---------
    println!("== act 1: draft/verify windows vs the sequential twin, bitwise");
    let combos = [
        (KvFormat::F64, EvictionPolicy::RetainAll),
        (
            KvFormat::Bf16,
            EvictionPolicy::SlidingWindow { window_blocks: 3 },
        ),
        (
            KvFormat::Mixed { burst_blocks: 1 },
            EvictionPolicy::RetainAll,
        ),
    ];
    for (format, eviction) in combos {
        let (mut spec, mut twin, ids) = pair(format, eviction);
        let n = ids.len() * GAMMA;
        let qs = rand(n, topo().q_dim(), 77);
        let ks = rand(n, topo().kv_dim(), 78);
        let vs = rand(n, topo().kv_dim(), 79);
        let outs = spec.speculate(&ids, &qs, &ks, &vs, GAMMA);
        assert!(
            spec.speculative_window_open(),
            "the window stays open until resolved"
        );
        let mut lanes = 0usize;
        for t in 0..GAMMA {
            let rows: Vec<usize> = (0..ids.len()).map(|i| i * GAMMA + t).collect();
            let step = twin.step_decode(
                &ids,
                &token_step(&qs, &rows),
                &token_step(&ks, &rows),
                &token_step(&vs, &rows),
            );
            for (o, seq_outs) in step.into_iter().zip(&outs) {
                let s = &seq_outs[t];
                assert_eq!(s.predicted.to_bits(), o.predicted.to_bits());
                assert_eq!(s.actual.to_bits(), o.actual.to_bits());
                assert_eq!(s.output.len(), o.output.len());
                for (x, y) in s.output.iter().zip(&o.output) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{format:?}: window output lane");
                    lanes += 1;
                }
            }
        }
        // One fused verdict per sequence adjudicates the whole prefix.
        let verdicts = spec.resolve_speculation(&vec![GAMMA; ids.len()]);
        assert!(!spec.speculative_window_open());
        assert_eq!(verdicts.len(), ids.len());
        for (v, &id) in verdicts.iter().zip(&ids) {
            assert_eq!(v.seq, id);
            assert_eq!(v.accepted, GAMMA);
            assert!(
                (v.predicted - v.actual).abs() <= 1e-6,
                "a clean window's fused verdict is quiet"
            );
        }
        for &id in &ids {
            assert_eq!(spec.seq_len(id), twin.seq_len(id));
            assert!(spec.rewind_checks_clean(id));
        }
        println!(
            "  {format:?}/{eviction:?}: {BATCH} seqs x gamma={GAMMA}, {lanes} output \
             lanes bitwise, {} fused verdicts",
            verdicts.len()
        );
    }

    // ---- Act 2: rollback storm over the Mixed + sliding corner ------
    println!("== act 2: rollback storm (Mixed demotion + sliding-window eviction)");
    let format = KvFormat::Mixed { burst_blocks: 1 };
    let eviction = EvictionPolicy::SlidingWindow { window_blocks: 3 };
    let (mut spec, mut twin, ids) = pair(format, eviction);
    let windows = 12;
    let mut delivered = [0usize; BATCH];
    let mut spec_stream: Vec<Vec<f64>> = Vec::new();
    let mut twin_stream: Vec<Vec<f64>> = Vec::new();
    let mut rejected = 0usize;
    for w in 0..windows {
        // Adversarial accept prefixes: cycle through reject-everything,
        // accept-everything, and every partial prefix in between.
        let acc: Vec<usize> = (0..BATCH).map(|i| (w + i * 3) % (GAMMA + 1)).collect();
        let n = BATCH * GAMMA;
        let (mut q, mut k, mut v) = (
            Matrix::zeros(n, topo().q_dim()),
            Matrix::zeros(n, topo().kv_dim()),
            Matrix::zeros(n, topo().kv_dim()),
        );
        for i in 0..BATCH {
            for t in 0..GAMMA {
                // Accepted positions carry the true stream row for their
                // global token index; rejected positions draw from a
                // disjoint seed space the twin never sees.
                let seed = if acc[i] > t {
                    0x9000 + 64 * (delivered[i] + t) as u64 + 8 * i as u64
                } else {
                    0xDEAD_0000 + 4096 * w as u64 + 64 * t as u64 + 8 * i as u64
                };
                for (m, cols, lane) in [
                    (&mut q, topo().q_dim(), 0u64),
                    (&mut k, topo().kv_dim(), 1),
                    (&mut v, topo().kv_dim(), 2),
                ] {
                    let row = rand(1, cols, seed + lane);
                    for c in 0..cols {
                        m[(i * GAMMA + t, c)] = row[(0, c)];
                    }
                }
            }
        }
        let outs = spec.speculate(&ids, &q, &k, &v, GAMMA);
        for t in 0..GAMMA {
            for (i, o) in outs.iter().enumerate() {
                if acc[i] > t {
                    spec_stream.push(o[t].output.clone());
                }
            }
        }
        spec.resolve_speculation(&acc);
        // The twin decodes only the accepted tokens, sequentially.
        for t in 0..GAMMA {
            let live: Vec<usize> = (0..BATCH).filter(|&i| acc[i] > t).collect();
            if live.is_empty() {
                continue;
            }
            let rows: Vec<usize> = live.iter().map(|&i| i * GAMMA + t).collect();
            let live_ids: Vec<usize> = live.iter().map(|&i| ids[i]).collect();
            for o in twin.step_decode(
                &live_ids,
                &token_step(&q, &rows),
                &token_step(&k, &rows),
                &token_step(&v, &rows),
            ) {
                twin_stream.push(o.output);
            }
        }
        for i in 0..BATCH {
            delivered[i] += acc[i];
            rejected += GAMMA - acc[i];
        }
    }
    assert_eq!(
        spec_stream, twin_stream,
        "delivered streams are bitwise equal"
    );
    for &id in &ids {
        assert_eq!(
            spec.seq_len(id),
            twin.seq_len(id),
            "lengths agree after the storm"
        );
        assert_eq!(
            spec.demoted_len(id),
            twin.demoted_len(id),
            "demotion fired identically"
        );
        let first = spec.cache().first_retained(id);
        assert_eq!(
            first,
            twin.cache().first_retained(id),
            "eviction anchors agree"
        );
        for p in first..spec.seq_len(id) {
            assert_eq!(spec.cache().key_row(id, p), twin.cache().key_row(id, p));
            assert_eq!(spec.cache().value_row(id, p), twin.cache().value_row(id, p));
        }
        assert!(
            spec.rewind_checks_clean(id),
            "no checksum drift survives rollback"
        );
    }
    assert_eq!(
        spec.cache().live_unique_blocks(),
        twin.cache().live_unique_blocks(),
        "every rejected append returned its blocks"
    );
    // One more probe window, full accept: the storm left no hidden state.
    let pq = rand(BATCH, topo().q_dim(), 0xF0);
    let pk = rand(BATCH, topo().kv_dim(), 0xF1);
    let pv = rand(BATCH, topo().kv_dim(), 0xF2);
    let a: Vec<Vec<f64>> = spec
        .step_decode(&ids, &pq, &pk, &pv)
        .into_iter()
        .map(|o| o.output)
        .collect();
    let b: Vec<Vec<f64>> = twin
        .step_decode(&ids, &pq, &pk, &pv)
        .into_iter()
        .map(|o| o.output)
        .collect();
    assert_eq!(a, b, "post-storm decode is bitwise sequential");
    println!(
        "  {windows} windows, {} tokens delivered / {rejected} rejected and rolled back; \
         cache rows, anchors, demotion, arena ({} blocks), and probe step all bitwise",
        spec_stream.len(),
        spec.cache().live_unique_blocks(),
    );

    // ---- Act 3: corruption inside the speculative window ------------
    println!("== act 3: a flipped bit inside the window alarms before delivery");
    let cfg = ServeConfig {
        speculation_gamma: GAMMA,
        draft_acceptance: 0.9,
        ..ServeConfig::default()
    };
    let mk = |seed| Request {
        tenant: 0,
        priority: Priority::Interactive,
        prompt_tokens: 6,
        output_tokens: 12,
        seed,
        prefix_seed: None,
        prefix_tokens: 0,
    };
    let drive = |inject: bool| -> (Scheduler, usize) {
        let mut e = engine(KvFormat::F64, EvictionPolicy::RetainAll);
        e.set_prefill_chunk(4);
        let mut sched = Scheduler::new(e, cfg);
        sched.step(&[mk(301), mk(302)]);
        let mut alarms = 0;
        let mut injected = false;
        for _ in 0..300 {
            if inject && !injected {
                if let Some(&(_, seq)) = sched.active_decoding().first() {
                    let len = sched.engine().seq_len(seq);
                    if len > sched.engine().cache().first_retained(seq) {
                        // Value-side flip in the newest row — the next
                        // window's fused verdict must see it.
                        sched
                            .engine_mut()
                            .flip_storage_bit(seq, len - 1, 0, 0, false, 61);
                        injected = true;
                    }
                }
            }
            let rep = sched.step(&[]);
            alarms += rep.online_alarms;
            if sched.records().iter().all(|r| r.phase == Phase::Finished) {
                break;
            }
        }
        (sched, alarms)
    };
    let (clean, clean_alarms) = drive(false);
    let (subject, subject_alarms) = drive(true);
    assert_eq!(clean_alarms, 0, "the clean twin never alarms");
    assert!(subject_alarms > 0, "the corrupted window must alarm");
    let quarantined = subject
        .records()
        .iter()
        .filter(|r| r.quarantines > 0)
        .count();
    assert!(
        quarantined > 0,
        "the alarmed request quarantines and requeues"
    );
    for (x, y) in clean.records().iter().zip(subject.records().iter()) {
        assert_eq!(x.phase, Phase::Finished);
        assert_eq!(y.phase, Phase::Finished);
        assert_eq!(
            x.token_hashes, y.token_hashes,
            "no token from the poisoned window was delivered; the requeued \
             request resumes the clean stream bit-for-bit"
        );
    }
    println!(
        "  {subject_alarms} alarms, {quarantined} request(s) quarantined and requeued, \
         delivered streams bitwise equal to the unperturbed run"
    );

    println!();
    println!("speculative_serving: all invariants held");
}
