//! Driving the cycle-level accelerator directly: golden run, one injected
//! fault, the comparator's reaction, and the hardware cost summary —
//! everything the paper's Fig. 2–4 describe, end to end.
//!
//! Run with: `cargo run --release --example accelerator_sim`

use fa_accel_sim::area::AreaReport;
use fa_accel_sim::components::ComponentCosts;
use fa_accel_sim::config::AcceleratorConfig;
use fa_accel_sim::fault::{Fault, RegAddr};
use fa_accel_sim::power::PowerReport;
use fa_accel_sim::Accelerator;
use fa_models::{LlmModel, Workload, WorkloadSpec};

fn main() {
    let model = LlmModel::Llama31.config();
    let workload = Workload::generate(&model, WorkloadSpec::paper(3));
    let cfg = AcceleratorConfig::new(16, model.head_dim);
    let accel = Accelerator::new(cfg);

    // Golden execution.
    let golden = accel.run(&workload.q, &workload.k, &workload.v);
    println!(
        "{} layer on the 16-block accelerator: {} cycles, residual {:.2e}",
        model.name,
        golden.cycles,
        golden.residual().abs()
    );
    let map = accel.storage_map();
    println!(
        "storage: {} bits total, {} in the checker ({:.2}%)",
        map.total_bits(),
        map.checker_bits(),
        100.0 * map.checker_bit_fraction()
    );
    println!();

    // Inject a fault into an output accumulator mid-stream.
    let fault = Fault {
        cycle: 1000,
        target: RegAddr::Output { block: 7, lane: 40 },
        bit: 61,
    };
    let faulty = accel.run_faulted(
        &workload.q,
        &workload.k,
        &workload.v,
        &[fault],
        Some(&golden),
    );
    println!("injected {fault:?}");
    println!(
        "  comparator residual: {:.3e} -> alarm at tau=1e-6: {}",
        faulty.residual().abs(),
        faulty.residual().abs() > 1e-6
    );

    // And one into the checker itself: a false positive.
    let fp_fault = Fault {
        cycle: 2000,
        target: RegAddr::Check { block: 3 },
        bit: 58,
    };
    let fp_run = accel.run_faulted(
        &workload.q,
        &workload.k,
        &workload.v,
        &[fp_fault],
        Some(&golden),
    );
    println!("injected {fp_fault:?}");
    println!(
        "  output unchanged: {} | comparator residual {:.3e} (false positive)",
        fp_run.output == golden.output,
        fp_run.residual().abs()
    );
    println!();

    // Hardware cost summary (Fig. 4).
    let costs = ComponentCosts::default();
    for p in [16, 32] {
        let area = AreaReport::compute(p, model.head_dim as u64, true, &costs);
        let power = PowerReport::compute(p, model.head_dim as u64, 256, &costs);
        println!(
            "{p:>2} blocks: area {:.2} mm^2 (checker {:.2}%) | power {:.0} mW (checker {:.2}%)",
            area.total_um2() / 1e6,
            100.0 * area.checker_share(),
            power.total_mw(),
            100.0 * power.checker_share()
        );
    }
}
