//! Checked multi-head attention for the four LLM layers the paper
//! evaluates (Bert, Phi-3-mini, Llama-3.1, Gemma2), with per-head
//! verification reports — the deployment scenario motivating Flash-ABFT.
//!
//! Run with: `cargo run --release --example llm_layer_check`

use fa_attention::multihead::MultiHeadConfig;
use fa_models::{Workload, WorkloadSpec, PAPER_MODELS};
use fa_numerics::Tolerance;
use fa_tensor::{random::ElementDist, Matrix};
use flash_abft::api::multihead_checked;

fn main() {
    let seq_len = 128;
    for model in PAPER_MODELS {
        let cfg = model.config();
        // Keep the example fast: 4 heads of the layer, full head_dim.
        let heads = cfg.num_heads.min(4);
        let mh = MultiHeadConfig::new(heads, cfg.attention());
        let dim = mh.model_dim();
        let q = Matrix::<f64>::random_seeded(seq_len, dim, ElementDist::default(), 10);
        let k = Matrix::<f64>::random_seeded(seq_len, dim, ElementDist::default(), 11);
        let v = Matrix::<f64>::random_seeded(seq_len, dim, ElementDist::default(), 12);

        let (out, reports) = multihead_checked(&q, &k, &v, &mh, Tolerance::PAPER);
        let alarms = reports.iter().filter(|r| r.is_alarm()).count();
        let worst = reports
            .iter()
            .map(|r| r.residual().abs())
            .fold(0.0f64, f64::max);
        println!(
            "{:<12} d={:<3} heads checked={} | output {}x{} | alarms {} | worst residual {:.2e}",
            cfg.name,
            cfg.head_dim,
            heads,
            out.rows(),
            out.cols(),
            alarms,
            worst
        );
        assert_eq!(alarms, 0, "fault-free layers must verify clean");
    }

    println!();
    println!("BF16 accelerator inputs (the paper's datapath format) with a");
    println!("format-appropriate relative tolerance:");
    let model = PAPER_MODELS[2].config(); // Llama-3.1
    let w = Workload::generate(&model, WorkloadSpec::paper(99));
    let engine =
        flash_abft::FlashAbft::new(model.attention()).with_tolerance(Tolerance::Relative {
            bound: 0.05,
            floor: 1e-3,
        });
    let checked = engine.compute(&w.q, &w.k, &w.v);
    println!(
        "{}: N={} BF16 head | residual {:.2e} | alarm {}",
        model.name,
        w.seq_len(),
        checked.report().residual().abs(),
        checked.report().is_alarm()
    );
    assert!(!checked.report().is_alarm());
}
