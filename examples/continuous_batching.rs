//! Continuous batching: serving sequences that arrive and finish
//! mid-flight, with the fused ABFT checksum covering every prefill and
//! decode token, and retired sequences' cache blocks recycled through
//! the head-major paged KV cache's free list.
//!
//! Run with: `cargo run --release --example continuous_batching`

use fa_attention::batch::DecodeBatch;
use fa_attention::multihead::MultiHeadConfig;
use fa_attention::AttentionConfig;
use fa_tensor::{random::ElementDist, Matrix};

fn main() {
    // Four heads of dimension 32; the head-major paged cache (64-row
    // blocks) gives each (sequence, head) decode pass one pure
    // contiguous K/V stream.
    let cfg = MultiHeadConfig::new(4, AttentionConfig::new(32));
    let dim = cfg.model_dim();
    let mut engine = DecodeBatch::<f64>::new(cfg, 64);

    let prompt = |len: usize, seed: u64| {
        (
            Matrix::<f64>::random_seeded(len, dim, ElementDist::default(), seed),
            Matrix::<f64>::random_seeded(len, dim, ElementDist::default(), seed + 1),
            Matrix::<f64>::random_seeded(len, dim, ElementDist::default(), seed + 2),
        )
    };

    // Admit the opening batch: all prompts × heads are checked through
    // the batched fused-checksum prefill in ONE fork (the batched form of
    // flash2_with_checksum), so admission cost amortizes across the batch.
    let prompts: Vec<_> = (0..3)
        .map(|i| prompt(24 + 16 * i, 10 * (i as u64 + 1)))
        .collect();
    let refs: Vec<_> = prompts.iter().map(|(q, k, v)| (q, k, v)).collect();
    let mut live: Vec<usize> = Vec::new();
    for admitted in engine.admit_all(&refs) {
        println!(
            "admitted seq {} ({} prompt tokens, prompt residual {:+.3e})",
            admitted.seq,
            engine.prompt_len(admitted.seq),
            admitted.residual()
        );
        assert!(admitted.residual().abs() < 1e-9, "prompt check must hold");
        live.push(admitted.seq);
    }

    let decode = |engine: &mut DecodeBatch<f64>, live: &[usize], t: u64| {
        let qs = Matrix::<f64>::random_seeded(live.len(), dim, ElementDist::default(), 100 + t);
        let ks = Matrix::<f64>::random_seeded(live.len(), dim, ElementDist::default(), 200 + t);
        let vs = Matrix::<f64>::random_seeded(live.len(), dim, ElementDist::default(), 300 + t);
        for out in engine.step_all(live, &qs, &ks, &vs) {
            assert!(out.residual().abs() < 1e-9, "fused per-token check");
        }
    };

    // Decode a few tokens, then one sequence finishes: retire it. Its
    // blocks go to the free list; everyone else keeps decoding.
    for t in 0..4 {
        decode(&mut engine, &live, t);
    }
    let finished = live.remove(1);
    let verdict = engine.global_residual(finished);
    engine.retire(finished);
    println!(
        "retired seq {finished} (final residual {verdict:+.3e}); free blocks: {}",
        engine.cache().free_block_list().len()
    );

    // A new request arrives mid-flight: admission reuses the retired
    // slot and its recycled blocks — the arena does not grow.
    let arena_before = engine.cache().allocated_blocks();
    let (q, k, v) = prompt(40, 99);
    let admitted = engine.admit(&q, &k, &v);
    live.push(admitted.seq);
    println!(
        "admitted replacement as seq {} — recycled {} blocks, arena {} -> {} blocks",
        admitted.seq,
        engine.cache().recycled_blocks(),
        arena_before,
        engine.cache().allocated_blocks(),
    );
    assert!(engine.cache().recycled_blocks() > 0, "blocks were reused");

    for t in 4..8 {
        decode(&mut engine, &live, t);
    }

    // Session verdicts: the running checksum covers each sequence's
    // admitted prompt AND every checked decode token.
    println!("session verdicts (prompt + decode coverage):");
    for &id in &live {
        println!(
            "  seq {id}: {} prompt + {} decoded tokens, residual {:+.3e}, unchecked {}",
            engine.prompt_len(id),
            engine.decoded_len(id),
            engine.global_residual(id),
            engine.unchecked_len(id),
        );
        assert!(engine.global_residual(id).abs() < 1e-8);
        assert_eq!(engine.unchecked_len(id), 0, "full coverage");
    }
    println!("all continuous-batching checksums verified");
}
