//! Property-based tests on the workspace's core invariants.

use fa_attention::{flash2, naive, tiled, AttentionConfig};
use fa_numerics::{OnlineSoftmax, BF16};
use fa_tensor::{checksum::predicted_matmul_checksum, Matrix};
use flash_abft::checksum::{predicted_checksum_eq5, predicted_checksum_eq8};
use flash_abft::MergedAccumulator;
use proptest::prelude::*;

/// Strategy: a matrix with elements in a well-conditioned range.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<f64>> {
    proptest::collection::vec(-3.0f64..3.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The paper's foundation: the Eq. 5 checksum equals the actual sum
    /// of the attention output for arbitrary inputs.
    #[test]
    fn checksum_equals_output_sum(
        q in matrix(6, 4),
        k in matrix(6, 4),
        v in matrix(6, 4),
    ) {
        let cfg = AttentionConfig::new(4);
        let predicted = predicted_checksum_eq5(&q, &k, &v, &cfg);
        let actual = naive::attention(&q, &k, &v, &cfg).sum_all();
        prop_assert!((predicted - actual).abs() < 1e-9,
            "predicted {predicted} vs actual {actual}");
    }

    /// The summation-exchange identity (Eq. 6 -> Eq. 7): the per-query
    /// decomposition equals the column-sum form.
    #[test]
    fn eq5_equals_eq8(
        q in matrix(5, 3),
        k in matrix(5, 3),
        v in matrix(5, 3),
    ) {
        let cfg = AttentionConfig::new(3);
        let a = predicted_checksum_eq5(&q, &k, &v, &cfg);
        let b = predicted_checksum_eq8(&q, &k, &v, &cfg);
        prop_assert!((a - b).abs() < 1e-9);
    }

    /// FlashAttention-2 equals naive attention for arbitrary inputs.
    #[test]
    fn flash2_equals_naive(
        q in matrix(5, 4),
        k in matrix(5, 4),
        v in matrix(5, 4),
    ) {
        let cfg = AttentionConfig::new(4);
        let a = flash2::attention(&q, &k, &v, &cfg);
        let b = naive::attention(&q, &k, &v, &cfg);
        prop_assert!(a.max_abs_diff(&b) < 1e-11);
    }

    /// Tiling is block-size invariant.
    #[test]
    fn tiling_is_invariant(
        q in matrix(7, 3),
        k in matrix(7, 3),
        v in matrix(7, 3),
        bs in 1usize..9,
    ) {
        let cfg = AttentionConfig::new(3);
        let whole = flash2::attention(&q, &k, &v, &cfg);
        let tiles = tiled::attention(&q, &k, &v, &cfg, bs);
        prop_assert!(whole.max_abs_diff(&tiles) < 1e-11);
    }

    /// Online softmax merge is associative with sequential processing.
    #[test]
    fn online_softmax_merge_associative(
        scores in proptest::collection::vec(-50.0f64..50.0, 2..20),
        split in 0usize..20,
    ) {
        let split = split.min(scores.len());
        let mut seq = OnlineSoftmax::new();
        for &s in &scores {
            seq.push(s);
        }
        let (l, r) = scores.split_at(split);
        let mut a = OnlineSoftmax::new();
        for &s in l { a.push(s); }
        let mut b = OnlineSoftmax::new();
        for &s in r { b.push(s); }
        a.merge(&b);
        prop_assert_eq!(a.max(), seq.max());
        prop_assert!((a.sum_exp() - seq.sum_exp()).abs() < 1e-9 * seq.sum_exp().max(1.0));
    }

    /// The merged-accumulator invariant: the checksum lane always equals
    /// the sum of the output lanes (exact arithmetic identity of Eq. 9).
    #[test]
    fn merged_accumulator_invariant(
        rows in proptest::collection::vec(
            proptest::collection::vec(-2.0f64..2.0, 4), 1..12),
        scores in proptest::collection::vec(-20.0f64..20.0, 12),
    ) {
        let mut acc = MergedAccumulator::new(4);
        for (row, &s) in rows.iter().zip(&scores) {
            acc.step(s, row);
            let lane_sum: f64 = acc.output().iter().sum();
            let scale = lane_sum.abs().max(1.0);
            prop_assert!((acc.checksum() - lane_sum).abs() < 1e-10 * scale);
        }
    }

    /// Huang–Abraham checksum detects any single corruption larger than
    /// the tolerance.
    #[test]
    fn matmul_checksum_detects_single_corruption(
        a in matrix(4, 5),
        b in matrix(5, 3),
        r in 0usize..4,
        c in 0usize..3,
        delta in 0.01f64..10.0,
    ) {
        let mut product = a.matmul(&b);
        let predicted = predicted_matmul_checksum(&a, &b);
        product[(r, c)] += delta;
        prop_assert!((predicted - product.sum_all()).abs() > delta * 0.5);
    }

    /// BF16 roundtrip: decode(encode(x)) is within half a BF16 ULP.
    #[test]
    fn bf16_roundtrip_error_bounded(x in -1e30f64..1e30) {
        let rounded = BF16::from_f64(x).to_f64();
        // Half-ULP of BF16: 2^-9 relative.
        prop_assert!((rounded - x).abs() <= x.abs() * 3.92e-3 + 1e-40,
            "{x} -> {rounded}");
    }

    /// BF16 bit flips always change the decoded value (no dead bits) for
    /// normal values.
    #[test]
    fn bf16_flips_change_value(x in 0.01f32..100.0, bit in 0u32..16) {
        let v = BF16::from_f32(x);
        let flipped = v.with_flipped_bit(bit);
        prop_assert_ne!(v.to_bits(), flipped.to_bits());
        // Decoded values differ unless the flip makes a NaN compare weird.
        if !flipped.is_nan() {
            prop_assert_ne!(v.to_f64(), flipped.to_f64());
        }
    }

    /// Checksum linearity in V: check(Q,K,aV+bW) = a·check(Q,K,V) + b·check(Q,K,W).
    #[test]
    fn checksum_linear_in_v(
        q in matrix(4, 3),
        k in matrix(4, 3),
        v in matrix(4, 3),
        w in matrix(4, 3),
        a in -2.0f64..2.0,
        b in -2.0f64..2.0,
    ) {
        let cfg = AttentionConfig::new(3);
        let combo = Matrix::from_fn(4, 3, |r, c| a * v[(r, c)] + b * w[(r, c)]);
        let lhs = predicted_checksum_eq5(&q, &k, &combo, &cfg);
        let rhs = a * predicted_checksum_eq5(&q, &k, &v, &cfg)
            + b * predicted_checksum_eq5(&q, &k, &w, &cfg);
        prop_assert!((lhs - rhs).abs() < 1e-8, "{lhs} vs {rhs}");
    }
}
