//! System-level fault-injection tests: the targeted re-simulation
//! machinery, classification soundness, and the false-negative search
//! the paper reports (§IV-B: cancellation "couldn't be identified").

use fa_accel_sim::config::AcceleratorConfig;
use fa_accel_sim::fault::{Fault, RegAddr};
use fa_accel_sim::Accelerator;
use fa_fault::{classify, run_campaigns, CampaignSpec, DetectionCriterion, FaultCategory};
use fa_models::{LlmModel, Workload, WorkloadSpec};
use fa_numerics::Tolerance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn outputs_bit_equal(
    a: &fa_tensor::Matrix<fa_numerics::BF16>,
    b: &fa_tensor::Matrix<fa_numerics::BF16>,
) -> bool {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn setup(n: usize) -> (Accelerator, Workload) {
    let model = LlmModel::Bert.config();
    let w = Workload::generate(
        &model,
        WorkloadSpec {
            seq_len: n,
            ..WorkloadSpec::paper(9)
        },
    );
    let accel = Accelerator::new(AcceleratorConfig::new(4, model.head_dim));
    (accel, w)
}

#[test]
fn targeted_resim_equals_full_sim_over_random_faults() {
    // The optimization that makes 10k-campaign tables cheap must be
    // bit-exact against the slow path, over every register class.
    let (accel, w) = setup(12);
    let golden = accel.run(&w.q, &w.k, &w.v);
    let map = accel.storage_map();
    let total_cycles = accel.config().total_cycles(12, 12);
    let mut rng = StdRng::seed_from_u64(31337);
    for _ in 0..300 {
        let bit_index = rng.gen_range(0..map.total_bits());
        let (target, bit) = map.locate_bit(bit_index);
        let fault = Fault {
            cycle: rng.gen_range(0..total_cycles),
            target,
            bit,
        };
        let full = accel.run_faulted(&w.q, &w.k, &w.v, &[fault], None);
        let fast = accel.run_faulted(&w.q, &w.k, &w.v, &[fault], Some(&golden));
        assert_eq!(
            full.predicted.to_bits(),
            fast.predicted.to_bits(),
            "{fault:?}"
        );
        assert_eq!(full.actual.to_bits(), fast.actual.to_bits(), "{fault:?}");
        assert!(outputs_bit_equal(&full.output, &fast.output), "{fault:?}");
    }
}

#[test]
fn targeted_resim_equals_full_sim_with_multiple_faults() {
    let (accel, w) = setup(10);
    let golden = accel.run(&w.q, &w.k, &w.v);
    let map = accel.storage_map();
    let total_cycles = accel.config().total_cycles(10, 10);
    let mut rng = StdRng::seed_from_u64(777);
    for _ in 0..60 {
        let n_faults = rng.gen_range(2..=5);
        let faults: Vec<Fault> = (0..n_faults)
            .map(|_| {
                let (target, bit) = map.locate_bit(rng.gen_range(0..map.total_bits()));
                Fault {
                    cycle: rng.gen_range(0..total_cycles),
                    target,
                    bit,
                }
            })
            .collect();
        let full = accel.run_faulted(&w.q, &w.k, &w.v, &faults, None);
        let fast = accel.run_faulted(&w.q, &w.k, &w.v, &faults, Some(&golden));
        assert_eq!(
            full.predicted.to_bits(),
            fast.predicted.to_bits(),
            "{faults:?}"
        );
        assert_eq!(full.actual.to_bits(), fast.actual.to_bits(), "{faults:?}");
        assert!(outputs_bit_equal(&full.output, &fast.output), "{faults:?}");
    }
}

#[test]
fn classification_is_internally_consistent() {
    // Detected => corrupted; FalsePositive => clean output; Masked =>
    // clean output and no alarm — over a random fault sample.
    let (accel, w) = setup(16);
    let golden = accel.run(&w.q, &w.k, &w.v);
    let map = accel.storage_map();
    let total_cycles = accel.config().total_cycles(16, 16);
    let mut rng = StdRng::seed_from_u64(4242);
    for _ in 0..300 {
        let (target, bit) = map.locate_bit(rng.gen_range(0..map.total_bits()));
        let fault = Fault {
            cycle: rng.gen_range(0..total_cycles),
            target,
            bit,
        };
        let faulty = accel.run_faulted(&w.q, &w.k, &w.v, &[fault], Some(&golden));
        let c = classify(
            &golden,
            &faulty,
            fault.target.is_checker(),
            DetectionCriterion::ChecksumDiscrepancy,
            Tolerance::PAPER,
            1e-6,
        );
        match c.category {
            FaultCategory::FalsePositive => {
                assert!(
                    fault.target.is_checker(),
                    "false positives must come from checker storage: {fault:?}"
                );
            }
            FaultCategory::Detected => {
                // Detected implies the fault hit kernel state (checker
                // faults cannot corrupt the output).
                assert!(!fault.target.is_checker(), "{fault:?}");
            }
            FaultCategory::Silent | FaultCategory::Masked => {}
        }
    }
}

#[test]
fn no_false_negatives_from_single_faults() {
    // Paper: "False negative faults require a fault injected to matrix
    // multiplication and checksum accumulation to cancel each other...
    // We couldn't identify such cases." A single fault cannot hit both
    // paths, so a directed sweep over output-register faults must always
    // alarm or be sub-threshold — never corrupt-the-output-yet-pass at
    // a magnitude above the bound.
    let (accel, w) = setup(12);
    let golden = accel.run(&w.q, &w.k, &w.v);
    for lane in 0..8 {
        for bit in [40u32, 50, 60, 62] {
            for cycle in [0u64, 5, 11] {
                let fault = Fault {
                    cycle,
                    target: RegAddr::Output { block: 1, lane },
                    bit,
                };
                let faulty = accel.run_faulted(&w.q, &w.k, &w.v, &[fault], Some(&golden));
                let output_moved = (faulty.actual - golden.actual).abs() > 1e-6;
                let alarmed = (faulty.predicted - faulty.actual).abs() > 1e-6
                    || faulty.predicted.is_nan()
                    || faulty.actual.is_nan();
                if output_moved {
                    assert!(
                        alarmed,
                        "false negative: output moved but comparator silent for {fault:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn campaign_percentages_sum_to_100() {
    let (_, w) = setup(16);
    let spec = CampaignSpec::new(AcceleratorConfig::new(4, 64), 200, 55);
    let stats = run_campaigns(&spec, &w);
    let sum = stats.pct_of_total(stats.detected)
        + stats.pct_of_total(stats.false_positive)
        + stats.pct_of_total(stats.silent)
        + stats.pct_of_total(stats.masked);
    assert!((sum - 100.0).abs() < 1e-9);
    let conseq = stats.pct_of_consequential(stats.detected)
        + stats.pct_of_consequential(stats.false_positive)
        + stats.pct_of_consequential(stats.silent);
    assert!((conseq - 100.0).abs() < 1e-9);
}

#[test]
fn detection_rate_rises_with_head_dim() {
    // Table I's central trend, on reduced campaign counts: the
    // consequential detection rate at d=256 exceeds d=64 (the checker is
    // a smaller target), with FP moving the other way.
    let mut rates = Vec::new();
    for model in [LlmModel::Bert, LlmModel::Gemma2] {
        let cfg = model.config();
        let w = Workload::generate(
            &cfg,
            WorkloadSpec {
                seq_len: 64,
                ..WorkloadSpec::paper(3)
            },
        );
        let spec = CampaignSpec::new(AcceleratorConfig::new(8, cfg.head_dim), 1500, 99)
            .with_criterion(DetectionCriterion::ChecksumDiscrepancy);
        let stats = run_campaigns(&spec, &w);
        rates.push((
            stats.pct_of_consequential(stats.detected),
            stats.pct_of_consequential(stats.false_positive),
        ));
    }
    assert!(
        rates[1].0 > rates[0].0 - 1.0,
        "detection d=256 ({:.2}) should not fall below d=64 ({:.2})",
        rates[1].0,
        rates[0].0
    );
    assert!(
        rates[1].1 < rates[0].1 + 0.5,
        "FP d=256 ({:.2}) should not exceed d=64 ({:.2})",
        rates[1].1,
        rates[0].1
    );
}

#[test]
fn composite_checker_closes_the_nan_silent_class() {
    // Sample faults until we find NaN-silent cases (the paper's Silent
    // category 3); the composite Flash-ABFT + extreme-value detector
    // must flag every one of them.
    use fa_abft::composite::{CompositeChecker, CompositeVerdict};
    let (accel, w) = setup(16);
    let golden = accel.run(&w.q, &w.k, &w.v);
    let map = accel.storage_map();
    let total_cycles = accel.config().total_cycles(16, 16);
    let composite = CompositeChecker::default();
    let mut rng = StdRng::seed_from_u64(90210);
    let mut nan_silent_seen = 0;
    for _ in 0..3000 {
        let (target, bit) = map.locate_bit(rng.gen_range(0..map.total_bits()));
        let fault = Fault {
            cycle: rng.gen_range(0..total_cycles),
            target,
            bit,
        };
        let faulty = accel.run_faulted(&w.q, &w.k, &w.v, &[fault], Some(&golden));
        let nan_poisoned = faulty.predicted.is_nan() || faulty.actual.is_nan();
        let output_has_extreme = faulty
            .output
            .as_slice()
            .iter()
            .any(|x| x.is_nan() || x.is_infinite());
        if nan_poisoned && output_has_extreme {
            nan_silent_seen += 1;
            let verdict = composite.verify(faulty.predicted, &faulty.output);
            assert!(
                verdict.is_alarm(),
                "composite must catch NaN poisoning: {fault:?} -> {verdict:?}"
            );
            assert!(matches!(
                verdict,
                CompositeVerdict::ExtremeAlarm | CompositeVerdict::BothAlarms
            ));
        }
    }
    assert!(
        nan_silent_seen > 0,
        "sampling should surface at least one NaN case"
    );
}
