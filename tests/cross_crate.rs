//! Cross-crate integration tests: every layer of the stack must agree —
//! reference kernels, the fused checksum, the baselines, and the
//! cycle-level accelerator.

use fa_abft::two_step::{self, InjectionPoint};
use fa_accel_sim::config::AcceleratorConfig;
use fa_accel_sim::Accelerator;
use fa_attention::{flash2, lazy, naive, tiled, AttentionConfig};
use fa_models::{LlmModel, Workload, WorkloadSpec, PAPER_MODELS};
use fa_numerics::{Tolerance, BF16};
use fa_tensor::{random::ElementDist, Matrix};
use flash_abft::{checksum, FlashAbft};

fn rand_qkv(n: usize, d: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
    (
        Matrix::random_seeded(n, d, ElementDist::default(), seed),
        Matrix::random_seeded(n, d, ElementDist::default(), seed + 1),
        Matrix::random_seeded(n, d, ElementDist::default(), seed + 2),
    )
}

#[test]
fn all_four_kernels_agree() {
    let (q, k, v) = rand_qkv(48, 16, 1000);
    let cfg = AttentionConfig::new(16);
    let reference = naive::attention(&q, &k, &v, &cfg);
    assert!(lazy::attention(&q, &k, &v, &cfg).max_abs_diff(&reference) < 1e-11);
    assert!(flash2::attention(&q, &k, &v, &cfg).max_abs_diff(&reference) < 1e-11);
    for bs in [1, 7, 16, 48] {
        assert!(tiled::attention(&q, &k, &v, &cfg, bs).max_abs_diff(&reference) < 1e-11);
    }
}

#[test]
fn accelerator_matches_software_kernel_on_all_paper_models() {
    for model in PAPER_MODELS {
        let cfg = model.config();
        let w = Workload::generate(
            &cfg,
            WorkloadSpec {
                seq_len: 32,
                ..WorkloadSpec::paper(11)
            },
        );
        let accel = Accelerator::new(AcceleratorConfig::new(8, cfg.head_dim));
        let run = accel.run(&w.q, &w.k, &w.v);
        let reference = flash2::attention(
            &w.q.to_f64(),
            &w.k.to_f64(),
            &w.v.to_f64(),
            &cfg.attention(),
        );
        // Pre-rounding row sums are exact vs the f64 kernel.
        for i in 0..32 {
            let expected: f64 = reference.row(i).iter().sum();
            assert!(
                (run.per_query_row_sums[i] - expected).abs() < 1e-9,
                "{} row {i}",
                cfg.name
            );
        }
        assert!(run.residual().abs() < 1e-6, "{}", cfg.name);
    }
}

#[test]
fn fused_checksum_agrees_with_accelerator_checksum() {
    // The algorithm-level Alg. 3 (flash-abft crate) and the cycle-level
    // accelerator must predict the same checksum for the same inputs.
    let model = LlmModel::Bert.config();
    let w = Workload::generate(
        &model,
        WorkloadSpec {
            seq_len: 24,
            ..WorkloadSpec::paper(5)
        },
    );
    let accel = Accelerator::new(AcceleratorConfig::new(4, model.head_dim));
    let run = accel.run(&w.q, &w.k, &w.v);
    let closed = checksum::predicted_checksum_eq5(&w.q, &w.k, &w.v, &model.attention());
    assert!(
        (run.predicted - closed).abs() < 1e-8,
        "accelerator {} vs closed form {closed}",
        run.predicted
    );
}

#[test]
fn softmax_coverage_gap_two_step_blind_flash_abft_sees() {
    // THE motivating comparison (paper §I): a fault inside the softmax
    // escapes traditional per-matmul ABFT but is caught by the fused
    // attention-level checksum.
    let (q, k, v) = rand_qkv(12, 8, 2000);
    let cfg = AttentionConfig::new(8);

    // Two-step ABFT with a softmax-internal corruption: both checks pass.
    let report = two_step::checked_attention(
        &q,
        &k,
        &v,
        &cfg,
        Tolerance::PAPER,
        Some((InjectionPoint::Softmax, 4, 7, 0.3)),
    );
    assert!(
        !report.any_alarm(),
        "two-step ABFT must miss softmax faults"
    );

    // Flash-ABFT verifying that same corrupted output: alarm.
    let engine = FlashAbft::new(cfg);
    let verdict = engine.verify(&q, &k, &v, &report.output);
    assert!(
        verdict.is_alarm(),
        "Flash-ABFT must catch the softmax-level corruption"
    );
}

#[test]
fn extreme_checker_misses_what_flash_abft_catches() {
    // ATTNChecker-style scanning only sees INF/NaN; a plain numeric
    // corruption sails through but Flash-ABFT flags it.
    let (q, k, v) = rand_qkv(10, 4, 3000);
    let cfg = AttentionConfig::new(4);
    let mut output = naive::attention(&q, &k, &v, &cfg);
    output[(3, 1)] += 0.05;

    let extreme = fa_abft::extreme::ExtremeChecker::default();
    assert!(!extreme.any_extreme(&output), "no INF/NaN present");

    let engine = FlashAbft::new(cfg);
    assert!(engine.verify(&q, &k, &v, &output).is_alarm());
}

#[test]
fn bf16_pipeline_end_to_end() {
    // BF16 inputs through every layer: kernels, checksum, accelerator.
    let (qf, kf, vf) = rand_qkv(16, 8, 4000);
    let q: Matrix<BF16> = qf.cast();
    let k: Matrix<BF16> = kf.cast();
    let v: Matrix<BF16> = vf.cast();
    let cfg = AttentionConfig::new(8);

    let engine = FlashAbft::new(cfg).with_tolerance(Tolerance::Relative {
        bound: 0.05,
        floor: 1e-3,
    });
    let checked = engine.compute(&q, &k, &v);
    assert!(!checked.report().is_alarm());

    let accel = Accelerator::new(AcceleratorConfig::new(4, 8));
    let run = accel.run(&q, &k, &v);
    assert!(run.residual().abs() < 1e-6);
    // Writebacks agree to BF16 precision.
    assert!(run.output.to_f64().max_abs_diff(&checked.output().to_f64()) < 0.05);
}

#[test]
fn checksum_identity_on_paper_scale_problem() {
    // Full paper-scale shape: N=256, d=128, BF16 inputs.
    let model = LlmModel::Llama31.config();
    let w = Workload::generate(&model, WorkloadSpec::paper(77));
    let accel = Accelerator::new(AcceleratorConfig::new(16, model.head_dim));
    let run = accel.run(&w.q, &w.k, &w.v);
    assert!(
        run.residual().abs() < 1e-6,
        "paper-scale fault-free residual {} must stay below tau",
        run.residual()
    );
    assert_eq!(run.cycles, 16 * 258);
}

#[test]
fn locate_and_correct_with_classic_abft() {
    // The Huang–Abraham substrate supports full locate/correct on the
    // S·V product — composable with the fused detector.
    let (q, k, v) = rand_qkv(10, 6, 5000);
    let cfg = AttentionConfig::new(6);
    let s = naive::softmax_scores(&q, &k, &cfg);
    let mut o = s.matmul(&v);
    let clean = o.clone();
    o[(4, 2)] += 1.5;
    let loc = fa_abft::matmul::locate_single_error(&s, &v, &o, 1e-6).expect("locatable");
    assert_eq!((loc.row, loc.col), (4, 2));
    fa_abft::matmul::correct_single_error(&mut o, loc);
    assert!(o.max_abs_diff(&clean) < 1e-9);
}
