//! Integration tests for the extension features: checked decoding,
//! full locate-and-correct, the composite detector, GQA and activity
//! measurement — everything layered on top of the paper's core.

use fa_abft::composite::CompositeChecker;
use fa_accel_sim::activity::measure_activity;
use fa_accel_sim::config::AcceleratorConfig;
use fa_attention::gqa::GqaConfig;
use fa_attention::{naive, AttentionConfig};
use fa_models::{LlmModel, Workload, WorkloadSpec};
use fa_numerics::Tolerance;
use fa_tensor::{random::ElementDist, Matrix};
use flash_abft::decode::CheckedDecodeSession;
use flash_abft::localize::{
    correct_error, localize_single_error, predicted_column_checks, predicted_row_checks,
};
use flash_abft::FlashAbft;

fn rand_qkv(n: usize, d: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
    (
        Matrix::random_seeded(n, d, ElementDist::default(), seed),
        Matrix::random_seeded(n, d, ElementDist::default(), seed + 1),
        Matrix::random_seeded(n, d, ElementDist::default(), seed + 2),
    )
}

#[test]
fn end_to_end_generation_with_per_token_checking() {
    // A realistic decode loop: prefill-free generation of 32 tokens with
    // a sliding window, every token checked, session-level check clean.
    let cfg = AttentionConfig::new(16).with_sliding_window(8);
    let (q, k, v) = rand_qkv(32, 16, 1);
    let mut session = CheckedDecodeSession::new(cfg);
    for i in 0..32 {
        let step = session.step(q.row(i), k.row(i), v.row(i));
        assert!(!step.report.is_alarm(), "token {i}");
        assert_eq!(step.output.len(), 16);
    }
    assert!(!session.global_report().is_alarm());
}

#[test]
fn detect_localize_correct_pipeline() {
    // The full recovery story: the fused check detects, row+column
    // checks localize, correction restores — without recomputation.
    let (q, k, v) = rand_qkv(12, 8, 10);
    let cfg = AttentionConfig::new(8);
    let engine = FlashAbft::new(cfg);
    let clean = engine.compute(&q, &k, &v).into_output();

    let mut corrupted = clean.clone();
    corrupted[(9, 2)] -= 0.75;

    // 1. Detect.
    assert!(engine.verify(&q, &k, &v, &corrupted).is_alarm());
    // 2. Localize.
    let row_checks = predicted_row_checks(&q, &k, &v, &cfg);
    let col_checks = predicted_column_checks(&q, &k, &v, &cfg);
    let err = localize_single_error(&corrupted, &row_checks, &col_checks, 1e-6)
        .expect("single error must localize");
    assert_eq!((err.row, err.col), (9, 2));
    // 3. Correct.
    correct_error(&mut corrupted, err);
    assert!(corrupted.max_abs_diff(&clean) < 1e-9);
    // 4. Re-verify.
    assert!(!engine.verify(&q, &k, &v, &corrupted).is_alarm());
}

#[test]
fn composite_detector_on_accelerator_outputs() {
    // Composite checking applied to real accelerator writebacks.
    let model = LlmModel::Bert.config();
    let w = Workload::generate(
        &model,
        WorkloadSpec {
            seq_len: 32,
            ..WorkloadSpec::paper(4)
        },
    );
    let accel = fa_accel_sim::Accelerator::new(AcceleratorConfig::new(8, model.head_dim));
    let run = accel.run(&w.q, &w.k, &w.v);
    let composite = CompositeChecker::new(
        Tolerance::Relative {
            bound: 0.05,
            floor: 1e-3,
        },
        fa_abft::extreme::ExtremeChecker::default(),
    );
    // Note: the accelerator's actual checksum taps pre-rounding values;
    // verifying the BF16 writeback needs the relative tolerance.
    let verdict = composite.verify(run.predicted, &run.output);
    assert!(!verdict.is_alarm(), "{verdict:?}");
}

#[test]
fn gqa_with_sliding_window_checked() {
    // Llama-3.1-flavoured geometry: GQA heads with a local window.
    let head = AttentionConfig::new(8)
        .with_causal(true)
        .with_sliding_window(6);
    let gqa = GqaConfig::new(4, 2, head);
    let n = 16;
    let q = Matrix::<f64>::random_seeded(n, gqa.q_dim(), ElementDist::default(), 20);
    let k = Matrix::<f64>::random_seeded(n, gqa.kv_dim(), ElementDist::default(), 21);
    let v = Matrix::<f64>::random_seeded(n, gqa.kv_dim(), ElementDist::default(), 22);
    let (out, reports) = flash_abft::api::gqa_checked(&q, &k, &v, &gqa, Tolerance::PAPER);
    assert!(reports.iter().all(|r| !r.is_alarm()));
    assert_eq!(out.cols(), gqa.q_dim());
    // Cross-check one head against the reference kernel.
    let reference = fa_attention::gqa::attention(&q, &k, &v, &gqa);
    assert!(out.max_abs_diff(&reference) < 1e-12);
}

#[test]
fn activity_profile_reflects_workload_structure() {
    // Adversarially sorted keys vs random keys: the rescale path must be
    // busier on the sorted workload — the effect the activity-aware
    // power model captures.
    let d = 8;
    let cfg = AcceleratorConfig::new(2, d);
    let q: Matrix<fa_numerics::BF16> = Matrix::random_seeded(4, d, ElementDist::default(), 30);
    let v: Matrix<fa_numerics::BF16> = Matrix::random_seeded(24, d, ElementDist::default(), 31);

    let random_k: Matrix<fa_numerics::BF16> =
        Matrix::random_seeded(24, d, ElementDist::default(), 32);
    let sorted_k: Matrix<fa_numerics::BF16> = Matrix::from_fn(24, d, |r, _| {
        fa_numerics::BF16::from_f32(0.05 * (r as f32 + 1.0))
    });

    let random_profile = measure_activity(&cfg, &q, &random_k, &v);
    let sorted_profile = measure_activity(&cfg, &q, &sorted_k, &v);
    assert!(
        sorted_profile.rescale_active >= random_profile.rescale_active,
        "sorted {} vs random {}",
        sorted_profile.rescale_active,
        random_profile.rescale_active
    );
}

#[test]
fn localization_composes_with_naive_reference() {
    // The column checks derive from Eq. 3 column sums: verify against a
    // brute-force recomputation for a masked configuration too.
    let (q, k, v) = rand_qkv(10, 4, 40);
    let cfg = AttentionConfig::new(4).with_causal(true);
    let out = naive::attention(&q, &k, &v, &cfg);
    let col_checks = predicted_column_checks(&q, &k, &v, &cfg);
    for (p, a) in col_checks.iter().zip(out.col_sums()) {
        assert!((p - a).abs() < 1e-10);
    }
}

#[test]
fn flash_abft_protects_attention_inside_a_full_encoder_layer() {
    // The paper's Fig. 1 context: a BERT-style encoder layer. Flash-ABFT
    // guards the attention block per head; a fault injected into the
    // attention output is caught before it propagates into the FFN.
    use fa_attention::encoder::EncoderLayer;
    use fa_attention::multihead::MultiHeadConfig;

    let mh = MultiHeadConfig::new(4, AttentionConfig::new(8));
    let layer = EncoderLayer::new(mh, 77);
    let emb = Matrix::<f64>::random_seeded(24, 32, ElementDist::default(), 78);
    let out = layer.forward(&emb);

    let engine = FlashAbft::new(mh.head);
    // Every head of the genuine attention verifies clean.
    for h in 0..4 {
        let report = engine.verify(
            &mh.slice_head(&out.q, h),
            &mh.slice_head(&out.k, h),
            &mh.slice_head(&out.v, h),
            &mh.slice_head(&out.attention, h),
        );
        assert!(!report.is_alarm(), "head {h}");
    }
    // Corrupt one element of head 2's attention output: caught.
    let mut bad = out.attention.clone();
    bad[(10, 2 * 8 + 3)] += 0.03;
    let report = engine.verify(
        &mh.slice_head(&out.q, 2),
        &mh.slice_head(&out.k, 2),
        &mh.slice_head(&out.v, 2),
        &mh.slice_head(&bad, 2),
    );
    assert!(
        report.is_alarm(),
        "corruption inside the encoder must be caught"
    );
}
